//===- examples/diffcode_cli.cpp - Command-line driver ---------------------===//
//
// Part of the DiffCode project, a reproduction of "Inferring Crypto API
// Rules from Code Changes" (PLDI'18).
//
//===----------------------------------------------------------------------===//
//
// A small CLI over the public API:
//
//   diffcode_cli diff <old.java> <new.java> [--json]
//       derive and print the usage changes between two file versions
//       (all six target classes), with the filter verdict per change;
//
//   diffcode_cli check <file.java ...> [--json]
//       run CryptoChecker (R1-R13) over the files as one project;
//
//   diffcode_cli suggest <old.java> <new.java>
//       auto-suggest a rule from the change (Section 6.3).
//
//   diffcode_cli pipeline <corpus-dir> [--json] [--cluster] [--shard <n>]
//                [--metrics] [--trace-out=<file>] [--workers <n>]
//                [--unit-deadline-ms <n>] [--max-retries <n>]
//                [--fail-on-degraded <pct>]
//       load a corpus from disk (see corpus/CorpusIO.h for the layout,
//       exportable from git) and run the full mining -> abstraction ->
//       filter -> cluster pipeline, printing the Figure-6-style table.
//       --cluster builds per-class dendrograms and prints the flat
//       clusters at the default cut; --shard <n> additionally arms the
//       sharded clustering engine with MaxShardSize n (implies
//       --cluster) and reports the shard statistics. --metrics runs the
//       pipeline observed: the text report gains per-stage timing and
//       counter tables, the JSON report a "metrics" block.
//       --trace-out=<file> (implies --metrics) additionally writes the
//       span trace as Chrome trace_event JSON — load it in
//       chrome://tracing or https://ui.perfetto.dev.
//       --workers <n> runs the per-change analysis stage under the
//       supervised multi-process engine (exec/Supervisor): n worker
//       subprocesses (0 = one per hardware thread) with crash/hang/OOM
//       containment; the report is byte-identical to the in-process
//       engine. --unit-deadline-ms <n> and --max-retries <n> tune the
//       watchdog and the terminal-failure bar (only meaningful with
//       --workers). --fail-on-degraded <pct> exits with status 3 when
//       more than pct percent of the mined changes did not process
//       cleanly (any non-ok status) — the CI tripwire for corpora that
//       silently rot.
//
//   diffcode_cli scan (<file.java ...> | --corpus <dir>) [--json]
//                [--rules <id,id,...>] [--refine] [--threads <n>]
//                [--no-unit-cache] [--metrics] [--trace-out=<file>]
//                [--fail-on-violation]
//       run the streaming rule scanner (scan/Scanner.h). Plain files are
//       scanned as one project; --corpus scans every project of an
//       on-disk corpus (HEAD files). --rules restricts evaluation to a
//       comma-separated rule-id subset (unknown ids warn and select
//       nothing); --refine arms the demand-driven refinement pass that
//       re-checks matched rules against per-execution abstract state
//       (suppressed witness counts appear in the report; off by default,
//       and off is byte-identical to the batch CryptoChecker).
//       --threads fans projects out over a thread pool (0 = one per
//       hardware thread; report bytes never depend on it);
//       --no-unit-cache disables the content-hash unit cache. --json
//       streams the report as projects complete; --metrics adds per-rule
//       counters and latency histograms; --trace-out=<file> (implies
//       --metrics) writes the span trace as Chrome trace_event JSON.
//       --fail-on-violation exits 1 when any project violates any
//       evaluated rule (the CI tripwire).
//
//   diffcode_cli serve <socket-path> [--threads <n>] [--max-cached <n>]
//                [--metrics] [--trace-out=<file>]
//       run the incremental analysis service in the foreground on a UNIX
//       socket (same server loop as the diffcoded binary); stops at the
//       first client shutdown request. --metrics runs the daemon
//       observed so `connect --query metrics` can introspect it live;
//       --trace-out=<file> (implies --metrics) flushes the stitched span
//       trace as Chrome trace_event JSON at shutdown. Also spelled
//       --serve.
//
//   diffcode_cli connect <socket-path> [--ingest <corpus-dir>]
//                [--query <what>] [--snapshot] [--rules <id,...>]
//                [--refine] [--scan <corpus-dir>] [--shutdown]
//       talk to a running service; operations execute in flag order.
//       --ingest mines a corpus directory client-side and ships the
//       changes, printing the session's cache/repair stats; --query asks
//       "health", "stats", "class:<Name>", or "metrics" (the daemon's
//       live observability summary — counters plus stage table — which
//       needs the daemon started with --metrics); --snapshot prints the full
//       report JSON (byte-identical to a cold `pipeline --json --cluster`
//       run over everything ingested so far); --scan ships a corpus
//       directory's projects to the server's warm rule scanner and
//       prints the scan report JSON (--rules/--refine, given earlier on
//       the command line, shape the request). Also spelled --connect.
//
//===----------------------------------------------------------------------===//

#include "core/DiffCode.h"
#include "core/ReportWriter.h"
#include "exec/Supervisor.h"
#include "corpus/CorpusIO.h"
#include "corpus/Miner.h"
#include "rules/BuiltinRules.h"
#include "rules/CryptoChecker.h"
#include "rules/RuleSuggestion.h"
#include "scan/ScanReportWriter.h"
#include "scan/Scanner.h"
#include "service/Server.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

using namespace diffcode;

namespace {

int printUsage() {
  std::fprintf(stderr,
               "usage: diffcode_cli diff <old.java> <new.java> [--json]\n"
               "       diffcode_cli check <file.java ...> [--json]\n"
               "       diffcode_cli suggest <old.java> <new.java>\n"
               "       diffcode_cli pipeline <corpus-dir> [--json] "
               "[--cluster] [--shard <n>]\n"
               "                    [--metrics] [--trace-out=<file>] "
               "[--workers <n>]\n"
               "                    [--unit-deadline-ms <n>] "
               "[--max-retries <n>]\n"
               "                    [--fail-on-degraded <pct>]\n"
               "       diffcode_cli scan (<file.java ...> | --corpus <dir>) "
               "[--json]\n"
               "                    [--rules <id,id,...>] [--refine] "
               "[--threads <n>]\n"
               "                    [--no-unit-cache] [--metrics] "
               "[--trace-out=<file>]\n"
               "                    [--fail-on-violation]\n"
               "       diffcode_cli serve <socket-path> [--threads <n>] "
               "[--max-cached <n>]\n"
               "                    [--metrics] [--trace-out=<file>]\n"
               "       diffcode_cli connect <socket-path> "
               "[--ingest <corpus-dir>]\n"
               "                    [--query <what>] [--snapshot] "
               "[--rules <id,...>]\n"
               "                    [--refine] [--scan <corpus-dir>] "
               "[--shutdown]\n");
  return 2;
}

bool readFile(const char *Path, std::string &Out) {
  std::ifstream In(Path);
  if (!In) {
    std::fprintf(stderr, "error: cannot open %s\n", Path);
    return false;
  }
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  Out = Buffer.str();
  return true;
}

int runDiff(int argc, char **argv, bool Json) {
  if (argc < 4)
    return printUsage();
  corpus::CodeChange Change;
  if (!readFile(argv[2], Change.OldCode) ||
      !readFile(argv[3], Change.NewCode))
    return 1;

  const apimodel::CryptoApiModel &Api =
      apimodel::CryptoApiModel::javaCryptoApi();
  core::DiffCode System(Api);
  bool AnySemantic = false;
  for (const std::string &Target : Api.targetClasses()) {
    for (const usage::UsageChange &UC :
         System.usageChangesFor(Change, Target)) {
      core::FilterStage Verdict = core::classifySolo(UC);
      if (Json) {
        std::printf("%s\n", core::usageChangeToJson(UC).c_str());
      } else {
        std::printf("[%s] %s\n%s", Target.c_str(),
                    core::filterStageName(Verdict), UC.str().c_str());
      }
      AnySemantic = AnySemantic || Verdict == core::FilterStage::Kept;
    }
  }
  if (!Json)
    std::printf("%s\n", AnySemantic
                            ? "=> semantic API usage change detected"
                            : "=> no semantic API usage change");
  return 0;
}

int runCheck(int argc, char **argv, bool Json) {
  std::vector<std::string> Names;
  std::vector<std::string> Codes;
  for (int I = 2; I < argc; ++I) {
    if (std::strcmp(argv[I], "--json") == 0)
      continue;
    std::string Code;
    if (!readFile(argv[I], Code))
      return 1;
    Names.push_back(argv[I]);
    Codes.push_back(std::move(Code));
  }
  if (Names.empty())
    return printUsage();

  core::DiffCode System(apimodel::CryptoApiModel::javaCryptoApi());
  std::vector<analysis::AnalysisResult> Results;
  for (const std::string &Code : Codes)
    Results.push_back(System.analyzeSourceChecked(Code).Result);
  std::vector<rules::UnitFacts> Units;
  for (const analysis::AnalysisResult &Result : Results)
    Units.push_back(rules::UnitFacts::from(Result));

  rules::CryptoChecker Checker;
  rules::ProjectReport Report = Checker.checkProject(Units);
  if (Json) {
    std::printf("%s\n", core::projectReportToJson(Report).c_str());
  } else {
    for (const rules::RuleVerdict &V : Report.verdicts()) {
      if (!V.Matched)
        continue;
      const std::string &RuleId = Report.text(V.Rule);
      const rules::Rule *R = rules::findRule(RuleId);
      std::printf("%s: %s\n", RuleId.c_str(),
                  R ? R->Description.c_str() : "");
      for (const rules::Violation &Site : V.Violations)
        std::printf("  %s at %s:%s\n", Report.text(Site.Type).c_str(),
                    Names[Site.UnitIndex].c_str(),
                    Report.text(Site.Site).c_str() + 1); // drop the 'l'
    }
    if (!Report.anyMatch())
      std::printf("no violations\n");
  }
  return Report.anyMatch() ? 1 : 0;
}

int runSuggest(int argc, char **argv) {
  if (argc < 4)
    return printUsage();
  corpus::CodeChange Change;
  if (!readFile(argv[2], Change.OldCode) ||
      !readFile(argv[3], Change.NewCode))
    return 1;
  const apimodel::CryptoApiModel &Api =
      apimodel::CryptoApiModel::javaCryptoApi();
  core::DiffCode System(Api);
  bool Suggested = false;
  for (const std::string &Target : Api.targetClasses())
    for (const usage::UsageChange &UC :
         System.usageChangesFor(Change, Target)) {
      if (core::classifySolo(UC) != core::FilterStage::Kept)
        continue;
      if (auto Rule = rules::suggestRule(UC, "suggested")) {
        std::printf("%s\n", rules::describeRule(*Rule).c_str());
        Suggested = true;
      }
    }
  if (!Suggested)
    std::printf("no rule could be suggested from this change\n");
  return Suggested ? 0 : 1;
}

int runPipeline(int argc, char **argv, bool Json) {
  if (argc < 3)
    return printUsage();
  bool Cluster = false;
  bool Shard = false;
  bool Metrics = false;
  std::size_t ShardSize = 0;
  std::string TraceOut;
  core::ExecutionPolicy Exec;
  double FailOnDegradedPct = -1.0; // negative: tripwire disabled
  for (int I = 3; I < argc; ++I) {
    if (std::strcmp(argv[I], "--cluster") == 0) {
      Cluster = true;
    } else if (std::strcmp(argv[I], "--shard") == 0) {
      if (I + 1 >= argc)
        return printUsage();
      Shard = Cluster = true;
      ShardSize = std::strtoull(argv[++I], nullptr, 10);
    } else if (std::strcmp(argv[I], "--metrics") == 0) {
      Metrics = true;
    } else if (std::strncmp(argv[I], "--trace-out=", 12) == 0) {
      TraceOut = argv[I] + 12;
      if (TraceOut.empty())
        return printUsage();
      Metrics = true;
    } else if (std::strcmp(argv[I], "--workers") == 0) {
      if (I + 1 >= argc)
        return printUsage();
      Exec.Mode = core::ExecutionMode::Supervised;
      Exec.Workers =
          static_cast<unsigned>(std::strtoul(argv[++I], nullptr, 10));
    } else if (std::strcmp(argv[I], "--unit-deadline-ms") == 0) {
      if (I + 1 >= argc)
        return printUsage();
      Exec.UnitDeadlineMs = std::strtoull(argv[++I], nullptr, 10);
    } else if (std::strcmp(argv[I], "--max-retries") == 0) {
      if (I + 1 >= argc)
        return printUsage();
      Exec.MaxRetries =
          static_cast<unsigned>(std::strtoul(argv[++I], nullptr, 10));
    } else if (std::strcmp(argv[I], "--fail-on-degraded") == 0) {
      if (I + 1 >= argc)
        return printUsage();
      FailOnDegradedPct = std::strtod(argv[++I], nullptr);
    } else if (std::strcmp(argv[I], "--json") != 0) {
      return printUsage();
    }
  }
  std::string Error;
  std::optional<corpus::Corpus> C = corpus::readCorpus(argv[2], &Error);
  if (!C) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 1;
  }

  const apimodel::CryptoApiModel &Api =
      apimodel::CryptoApiModel::javaCryptoApi();
  corpus::MinerOptions MinerOpts;
  MinerOpts.MinCommitsPerProject = 1; // user-supplied corpora may be tiny
  corpus::Miner M(Api, MinerOpts);
  std::vector<const corpus::CodeChange *> Mined = M.mine(*C);
  if (!Json)
    std::printf("loaded %zu projects, mined %zu crypto-touching changes\n\n",
                C->Projects.size(), Mined.size());

  core::PipelineConfig Opts;
  Opts.Threads = 0;
  if (Shard) {
    Opts.Sharding.Enabled = true;
    Opts.Sharding.MaxShardSize = ShardSize;
    Opts.Sharding.Threads = 0; // all cores
  }
  core::DiffCode System(Api, Opts);
  obs::Observer Obs;
  // run() dispatches on Exec.Mode, so --workers swaps in the
  // supervised engine without a separate entry point.
  core::CorpusReport Report = System.run({.Changes = Mined,
                                          .TargetClasses = Api.targetClasses(),
                                          .BuildDendrograms = Cluster,
                                          .Metrics = Metrics ? &Obs : nullptr,
                                          .Exec = Exec});

  // The --fail-on-degraded tripwire: share of changes that did not
  // process cleanly (any non-ok status), in percent of the mined corpus.
  int ExitCode = 0;
  if (FailOnDegradedPct >= 0.0 && !Report.Changes.empty()) {
    double Share =
        100.0 * double(Report.Health.troubled()) / double(Report.Changes.size());
    if (Share > FailOnDegradedPct) {
      std::fprintf(stderr,
                   "error: %.2f%% of changes degraded or failed "
                   "(threshold %.2f%%)\n",
                   Share, FailOnDegradedPct);
      ExitCode = 3;
    }
  }

  if (!TraceOut.empty()) {
    std::ofstream Out(TraceOut);
    if (!Out) {
      std::fprintf(stderr, "error: cannot write %s\n", TraceOut.c_str());
      return 1;
    }
    Out << Obs.Trace.traceJson() << '\n';
    if (!Json)
      std::printf("trace written to %s (%zu events)\n\n", TraceOut.c_str(),
                  Obs.Trace.eventCount());
  }

  if (Json) {
    std::printf("%s\n", core::corpusReportToJson(Report).c_str());
    return ExitCode;
  }
  std::printf("%-16s %8s %7s %6s %6s %6s\n", "target class", "usages",
              "fsame", "fadd", "frem", "fdup");
  for (const core::ClassReport &Class : Report.PerClass)
    std::printf("%-16s %8zu %7zu %6zu %6zu %6zu\n",
                Class.TargetClass.c_str(), Class.Filtered.Total,
                Class.Filtered.AfterSame, Class.Filtered.AfterAdd,
                Class.Filtered.AfterRem, Class.Filtered.AfterDup);
  for (const core::ClassReport &Class : Report.PerClass)
    for (const usage::UsageChange &UC : Class.Filtered.Kept)
      std::printf("\n[%s] %s\n%s", Class.TargetClass.c_str(),
                  UC.Origin.c_str(), UC.str().c_str());

  if (Cluster) {
    std::printf("\n");
    for (const core::ClassReport &Class : Report.PerClass) {
      if (Class.Filtered.Kept.empty())
        continue;
      std::size_t Clusters =
          Class.Tree.cut(System.config().Clustering.Cut).size();
      std::printf("%s: %zu flat clusters at cut %.2f",
                  Class.TargetClass.c_str(), Clusters,
                  System.config().Clustering.Cut);
      if (Class.Sharding.NumShards > 0)
        std::printf(" (sharded: %zu shards, largest %zu, %zu "
                    "representatives)",
                    Class.Sharding.NumShards, Class.Sharding.LargestShard,
                    Class.Sharding.Representatives);
      std::printf("\n");
    }
  }

  // Corpus health: containment means broken changes never abort the run;
  // this is where they become visible instead.
  const core::CorpusHealth &Health = Report.Health;
  std::printf("\ncorpus health: %zu changes", Report.Changes.size());
  for (std::size_t I = 0; I < core::NumChangeStatuses; ++I) {
    core::ChangeStatus S = static_cast<core::ChangeStatus>(I);
    std::printf(", %zu %s", Health.count(S), core::changeStatusName(S));
  }
  std::printf("\n");
  if (Health.ClusteringFailures > 0)
    std::printf("clustering failures: %zu\n", Health.ClusteringFailures);
  for (const core::ChangeRecord &Record : Report.Changes)
    if (Record.Status != core::ChangeStatus::Ok)
      std::printf("  [%s] %s: %s\n", core::changeStatusName(Record.Status),
                  Record.Origin.c_str(), Record.StatusDetail.c_str());
  if (!Health.WorstOffenders.empty()) {
    // Wall time is only measured on observed runs (--metrics).
    std::printf("heaviest changes (interpreter steps):\n");
    std::printf("  %10s  %9s  %-15s %s\n", "steps", "wall-ms", "status",
                "origin");
    for (const core::WorstOffender &O : Health.WorstOffenders)
      std::printf("  %10llu  %9.3f  %-15s %s\n",
                  static_cast<unsigned long long>(O.Steps),
                  double(O.WallNanos) / 1e6, core::changeStatusName(O.Status),
                  O.Origin.c_str());
  }

  if (Metrics) {
    std::printf("\nstage timings:\n");
    std::printf("  %-22s %8s %12s\n", "stage", "spans", "total-ms");
    for (const obs::Tracer::StageTotal &S : Report.Metrics.Stages)
      std::printf("  %-22s %8llu %12.3f\n", S.Name.c_str(),
                  static_cast<unsigned long long>(S.Spans),
                  double(S.TotalNs) / 1e6);
    std::printf("\nmetrics:\n");
    for (const obs::MetricValue &V : Report.Metrics.Metrics.Values) {
      switch (V.Kind) {
      case obs::MetricKind::Counter:
        std::printf("  %-32s %12llu\n", V.Name.c_str(),
                    static_cast<unsigned long long>(V.Count));
        break;
      case obs::MetricKind::Gauge:
        std::printf("  %-32s %12lld\n", V.Name.c_str(),
                    static_cast<long long>(V.Value));
        break;
      case obs::MetricKind::Histogram:
        std::printf("  %-32s %12llu samples, sum %llu, min %llu, max %llu\n",
                    V.Name.c_str(), static_cast<unsigned long long>(V.Count),
                    static_cast<unsigned long long>(V.Sum),
                    static_cast<unsigned long long>(V.Min),
                    static_cast<unsigned long long>(V.Max));
        break;
      }
    }
  }
  return ExitCode;
}

std::vector<std::string> splitCommaList(const char *Arg) {
  std::vector<std::string> Out;
  std::string Current;
  for (const char *P = Arg; *P; ++P) {
    if (*P == ',') {
      if (!Current.empty())
        Out.push_back(std::move(Current));
      Current.clear();
    } else {
      Current.push_back(*P);
    }
  }
  if (!Current.empty())
    Out.push_back(std::move(Current));
  return Out;
}

int runScan(int argc, char **argv) {
  bool Json = false, Refine = false, Metrics = false;
  bool FailOnViolation = false, CacheUnits = true;
  unsigned Threads = 0;
  std::string CorpusDir;
  std::string TraceOut;
  std::vector<std::string> RuleFilter;
  std::vector<const char *> FileArgs;
  for (int I = 2; I < argc; ++I) {
    if (std::strcmp(argv[I], "--json") == 0)
      Json = true;
    else if (std::strcmp(argv[I], "--refine") == 0)
      Refine = true;
    else if (std::strcmp(argv[I], "--metrics") == 0)
      Metrics = true;
    else if (std::strncmp(argv[I], "--trace-out=", 12) == 0) {
      TraceOut = argv[I] + 12;
      if (TraceOut.empty())
        return printUsage();
      Metrics = true;
    } else if (std::strcmp(argv[I], "--fail-on-violation") == 0)
      FailOnViolation = true;
    else if (std::strcmp(argv[I], "--no-unit-cache") == 0)
      CacheUnits = false;
    else if (std::strcmp(argv[I], "--threads") == 0 && I + 1 < argc)
      Threads = static_cast<unsigned>(std::strtoul(argv[++I], nullptr, 10));
    else if (std::strcmp(argv[I], "--corpus") == 0 && I + 1 < argc)
      CorpusDir = argv[++I];
    else if (std::strcmp(argv[I], "--rules") == 0 && I + 1 < argc)
      RuleFilter = splitCommaList(argv[++I]);
    else if (argv[I][0] == '-')
      return printUsage();
    else
      FileArgs.push_back(argv[I]);
  }

  std::optional<corpus::Corpus> C;
  corpus::Project AdHoc;
  std::vector<const corpus::Project *> Projects;
  if (!CorpusDir.empty()) {
    std::string Error;
    C = corpus::readCorpus(CorpusDir.c_str(), &Error);
    if (!C) {
      std::fprintf(stderr, "error: %s\n", Error.c_str());
      return 1;
    }
    for (const corpus::Project &P : C->Projects)
      Projects.push_back(&P);
  } else if (!FileArgs.empty()) {
    AdHoc.Name = "project";
    for (const char *Path : FileArgs) {
      corpus::ProjectFile File;
      File.Name = Path;
      if (!readFile(Path, File.Code))
        return 1;
      AdHoc.Files.push_back(std::move(File));
    }
    Projects.push_back(&AdHoc);
  } else {
    return printUsage();
  }

  obs::Observer Obs;
  scan::ScanConfig Config;
  Config.Threads = Threads;
  Config.CacheUnits = CacheUnits;
  Config.Metrics = Metrics ? &Obs : nullptr;
  scan::Scanner Scanner(apimodel::CryptoApiModel::javaCryptoApi(), Config);

  for (const std::string &Id : RuleFilter) {
    bool Known = false;
    for (const rules::Rule &R : Scanner.rules().rules())
      Known = Known || R.Id == Id;
    if (!Known)
      std::fprintf(stderr, "warning: unknown rule id %s\n", Id.c_str());
  }

  scan::ScanRequest Request;
  Request.Projects = std::move(Projects);
  Request.RuleFilter = std::move(RuleFilter);
  Request.Refine = Refine;

  scan::ScanReport Report;
  if (Json) {
    // Stream each project record as it completes; finish() appends the
    // summary, so the bytes match scanReportToJson exactly.
    scan::ScanReportWriter Writer(std::cout);
    Report = Scanner.scan(Request, &Writer);
    Writer.finish(Report);
    std::cout << '\n';
  } else {
    Report = Scanner.scan(Request);
    std::printf("scanned %zu projects, %u with violations\n\n",
                Report.Projects.size(), Report.ProjectsWithViolation);
    std::printf("%-6s %10s %8s %10s %10s\n", "rule", "applicable", "matched",
                "violations", "suppressed");
    for (const scan::RuleTotal &T : Report.Rules)
      std::printf("%-6s %10llu %8llu %10llu %10llu\n",
                  Report.text(T.Rule).c_str(),
                  static_cast<unsigned long long>(T.Applicable),
                  static_cast<unsigned long long>(T.Matched),
                  static_cast<unsigned long long>(T.Violations),
                  static_cast<unsigned long long>(T.Suppressed));
    bool AnySite = false;
    for (const scan::ProjectScanRecord &Rec : Report.Projects)
      for (const rules::RuleVerdict &V : Rec.Report.verdicts())
        for (const rules::Violation &Site : V.Violations) {
          if (!AnySite)
            std::printf("\n");
          AnySite = true;
          std::printf("%s: %s violated by %s at %s (unit %u)\n",
                      Rec.Project.c_str(), Rec.Report.text(V.Rule).c_str(),
                      Rec.Report.text(Site.Type).c_str(),
                      Rec.Report.text(Site.Site).c_str(), Site.UnitIndex);
        }
    bool AnyTrouble = false;
    for (const scan::ProjectScanRecord &Rec : Report.Projects)
      if (Rec.Status != core::ChangeStatus::Ok) {
        if (!AnyTrouble)
          std::printf("\n");
        AnyTrouble = true;
        std::printf("  [%s] %s: %s\n", core::changeStatusName(Rec.Status),
                    Rec.Project.c_str(), Rec.Detail.c_str());
      }
    if (Metrics) {
      std::printf("\nmetrics:\n");
      for (const obs::MetricValue &V : Report.Metrics.Metrics.Values) {
        switch (V.Kind) {
        case obs::MetricKind::Counter:
          std::printf("  %-32s %12llu\n", V.Name.c_str(),
                      static_cast<unsigned long long>(V.Count));
          break;
        case obs::MetricKind::Gauge:
          std::printf("  %-32s %12lld\n", V.Name.c_str(),
                      static_cast<long long>(V.Value));
          break;
        case obs::MetricKind::Histogram:
          std::printf("  %-32s %12llu samples, sum %llu, min %llu, max %llu\n",
                      V.Name.c_str(), static_cast<unsigned long long>(V.Count),
                      static_cast<unsigned long long>(V.Sum),
                      static_cast<unsigned long long>(V.Min),
                      static_cast<unsigned long long>(V.Max));
          break;
        }
      }
    }
  }
  if (!TraceOut.empty()) {
    std::ofstream Out(TraceOut);
    if (!Out) {
      std::fprintf(stderr, "error: cannot write %s\n", TraceOut.c_str());
      return 1;
    }
    Out << Obs.Trace.traceJson() << '\n';
    if (!Json)
      std::printf("\ntrace written to %s (%zu events)\n", TraceOut.c_str(),
                  Obs.Trace.eventCount());
  }
  return FailOnViolation && Report.ProjectsWithViolation > 0 ? 1 : 0;
}

int runServe(int argc, char **argv) {
  if (argc < 3)
    return printUsage();
  service::SessionOptions Opts;
  Opts.Config.Threads = 0; // one analysis worker per hardware thread
  bool Metrics = false;
  std::string TraceOut;
  for (int I = 3; I < argc; ++I) {
    if (std::strcmp(argv[I], "--threads") == 0 && I + 1 < argc)
      Opts.Config.Threads =
          static_cast<unsigned>(std::strtoul(argv[++I], nullptr, 10));
    else if (std::strcmp(argv[I], "--max-cached") == 0 && I + 1 < argc)
      Opts.MaxCachedChanges = std::strtoull(argv[++I], nullptr, 10);
    else if (std::strcmp(argv[I], "--metrics") == 0)
      Metrics = true;
    else if (std::strncmp(argv[I], "--trace-out=", 12) == 0) {
      TraceOut = argv[I] + 12;
      if (TraceOut.empty())
        return printUsage();
      Metrics = true;
    } else
      return printUsage();
  }
  // The observer must outlive the Server: the session records into it on
  // every ingest and StatsReq summarizes it live.
  obs::Observer Obs;
  if (Metrics)
    Opts.Metrics = &Obs;
  std::string Error;
  int ListenFd = service::listenUnix(argv[2], &Error);
  if (ListenFd < 0) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 1;
  }
  service::Server S(apimodel::CryptoApiModel::javaCryptoApi(),
                    std::move(Opts));
  std::fprintf(stderr, "serving on %s\n", argv[2]);
  int Code = service::serveUnix(S, ListenFd);
  std::remove(argv[2]);
  if (!TraceOut.empty()) {
    std::ofstream Out(TraceOut);
    if (!Out) {
      std::fprintf(stderr, "error: cannot write %s\n", TraceOut.c_str());
      return 1;
    }
    Out << Obs.Trace.traceJson() << '\n';
    std::fprintf(stderr, "trace written to %s (%zu events)\n",
                 TraceOut.c_str(), Obs.Trace.eventCount());
  }
  return Code;
}

int runConnect(int argc, char **argv) {
  if (argc < 3)
    return printUsage();
  std::string Error;
  int Fd = service::connectUnix(argv[2], &Error);
  if (Fd < 0) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 1;
  }
  service::Client C(Fd);
  int Code = 0;
  bool ScanRefine = false;
  std::vector<std::string> ScanRules;
  for (int I = 3; I < argc && Code == 0; ++I) {
    if (std::strcmp(argv[I], "--ingest") == 0 && I + 1 < argc) {
      std::optional<corpus::Corpus> Corpus =
          corpus::readCorpus(argv[++I], &Error);
      if (!Corpus) {
        std::fprintf(stderr, "error: %s\n", Error.c_str());
        Code = 1;
        break;
      }
      // Mine client-side so the wire carries only crypto-touching
      // changes; the server sees the same change stream `pipeline` would.
      corpus::MinerOptions MinerOpts;
      MinerOpts.MinCommitsPerProject = 1;
      corpus::Miner M(apimodel::CryptoApiModel::javaCryptoApi(), MinerOpts);
      std::vector<corpus::CodeChange> Changes;
      for (const corpus::CodeChange *Change : M.mine(*Corpus))
        Changes.push_back(*Change);
      service::IngestReply Reply;
      if (!C.ingest(Changes, Reply, &Error)) {
        std::fprintf(stderr, "error: %s\n", Error.c_str());
        Code = 1;
        break;
      }
      std::printf("ingested %zu changes (session total %llu): "
                  "%zu cache hits, %zu misses, %zu classes repaired, "
                  "%llu pair distances reused\n",
                  Reply.Stats.Ingested,
                  static_cast<unsigned long long>(Reply.TotalChanges),
                  Reply.Stats.CacheHits, Reply.Stats.CacheMisses,
                  Reply.Stats.ClassesRepaired,
                  static_cast<unsigned long long>(Reply.Stats.PairsReused));
    } else if (std::strcmp(argv[I], "--query") == 0 && I + 1 < argc) {
      std::string Answer;
      // "metrics" is answered by the daemon's observer (StatsReq), not
      // the session's query handler — it needs a daemon started with
      // --metrics or --trace-out.
      bool Ok = std::strcmp(argv[I + 1], "metrics") == 0
                    ? C.stats(Answer, &Error)
                    : C.query(argv[I + 1], Answer, &Error);
      ++I;
      if (!Ok) {
        std::fprintf(stderr, "error: %s\n", Error.c_str());
        Code = 1;
        break;
      }
      std::printf("%s\n", Answer.c_str());
    } else if (std::strcmp(argv[I], "--snapshot") == 0) {
      std::string Json;
      if (!C.snapshot(Json, &Error)) {
        std::fprintf(stderr, "error: %s\n", Error.c_str());
        Code = 1;
        break;
      }
      std::printf("%s\n", Json.c_str());
    } else if (std::strcmp(argv[I], "--refine") == 0) {
      ScanRefine = true;
    } else if (std::strcmp(argv[I], "--rules") == 0 && I + 1 < argc) {
      ScanRules = splitCommaList(argv[++I]);
    } else if (std::strcmp(argv[I], "--scan") == 0 && I + 1 < argc) {
      std::optional<corpus::Corpus> Corpus =
          corpus::readCorpus(argv[++I], &Error);
      if (!Corpus) {
        std::fprintf(stderr, "error: %s\n", Error.c_str());
        Code = 1;
        break;
      }
      service::ScanRequestWire Wire;
      Wire.Refine = ScanRefine;
      Wire.RuleFilter = ScanRules;
      Wire.Projects = std::move(Corpus->Projects);
      std::string Json;
      if (!C.scan(Wire, Json, &Error)) {
        std::fprintf(stderr, "error: %s\n", Error.c_str());
        Code = 1;
        break;
      }
      std::printf("%s\n", Json.c_str());
    } else if (std::strcmp(argv[I], "--shutdown") == 0) {
      if (!C.shutdown(&Error)) {
        std::fprintf(stderr, "error: %s\n", Error.c_str());
        Code = 1;
      }
    } else {
      Code = printUsage();
    }
  }
  ::close(Fd);
  return Code;
}

} // namespace

int main(int argc, char **argv) {
  if (argc < 2)
    return printUsage();
  bool Json = false;
  for (int I = 2; I < argc; ++I)
    Json = Json || std::strcmp(argv[I], "--json") == 0;

  if (std::strcmp(argv[1], "diff") == 0)
    return runDiff(argc, argv, Json);
  if (std::strcmp(argv[1], "check") == 0)
    return runCheck(argc, argv, Json);
  if (std::strcmp(argv[1], "suggest") == 0)
    return runSuggest(argc, argv);
  if (std::strcmp(argv[1], "pipeline") == 0)
    return runPipeline(argc, argv, Json);
  if (std::strcmp(argv[1], "scan") == 0)
    return runScan(argc, argv);
  if (std::strcmp(argv[1], "serve") == 0 ||
      std::strcmp(argv[1], "--serve") == 0)
    return runServe(argc, argv);
  if (std::strcmp(argv[1], "connect") == 0 ||
      std::strcmp(argv[1], "--connect") == 0)
    return runConnect(argc, argv);
  return printUsage();
}
