//===- rules/RuleSuggestion.cpp --------------------------------------------===//

#include "rules/RuleSuggestion.h"

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <map>
#include <set>

using namespace diffcode;
using namespace diffcode::rules;
using namespace diffcode::usage;

namespace {

bool isInteger(const std::string &Text) {
  if (Text.empty())
    return false;
  std::size_t Start = Text[0] == '-' ? 1 : 0;
  if (Start == Text.size())
    return false;
  for (std::size_t I = Start; I < Text.size(); ++I)
    if (!std::isdigit(static_cast<unsigned char>(Text[I])))
      return false;
  return true;
}

/// Converts the argument label of a feature path into a constraint; Any
/// when the value is a type name we cannot test directly.
ArgConstraint constraintFromLabel(const NodeLabel &Label) {
  ArgConstraint C;
  C.Index = Label.ArgIndex;
  if (Label.ValueIsString) {
    C.K = ArgConstraint::Kind::StrEquals;
    C.Values = {Label.Text};
    return C;
  }
  if (Label.Text == "constbyte[]" || Label.Text == "constbyte" ||
      Label.Text == "const" || Label.Text == "null" ||
      (!Label.Text.empty() && Label.Text.front() == '[')) {
    C.K = ArgConstraint::Kind::IsConstant;
    return C;
  }
  if (Label.Text.rfind("⊤", 0) == 0) {
    C.K = ArgConstraint::Kind::IsTop;
    return C;
  }
  if (isInteger(Label.Text)) {
    C.K = ArgConstraint::Kind::IntEquals;
    C.IntBound = std::stoll(Label.Text);
    return C;
  }
  // Type names and symbolic constants: presence of the argument position
  // is the testable part.
  C.K = ArgConstraint::Kind::Any;
  return C;
}

/// Extracts (method signature, optional arg constraint) from a feature
/// path [root, method, arg?, ...]; nullopt for paths without a method.
std::optional<CallPattern> patternFromPath(const FeaturePath &Path) {
  if (Path.size() < 2 || Path[1].K != NodeLabel::Kind::Method)
    return std::nullopt;
  CallPattern P;
  // DAG method labels are "Class.name" (no arity).
  const std::string &Sig = Path[1].Text;
  std::size_t Dot = Sig.rfind('.');
  if (Dot == std::string::npos)
    return std::nullopt;
  P.ClassName = Sig.substr(0, Dot);
  P.MethodName = Sig.substr(Dot + 1);
  P.Arity = -1;
  if (Path.size() >= 3 && Path[2].K == NodeLabel::Kind::Arg) {
    ArgConstraint C = constraintFromLabel(Path[2]);
    if (C.K != ArgConstraint::Kind::Any)
      P.Args.push_back(std::move(C));
    else
      P.Args.push_back(C); // keep index to require the argument exists
  }
  return P;
}

/// A pattern anchored at an object type — paths deeper than
/// root-method-arg describe usages of *nested* objects (e.g. the
/// IvParameterSpec passed to Cipher.init), which the rule language
/// expresses as a separate clause on that type.
struct TypedPattern {
  std::string TypeName;
  CallPattern Pattern;
};

/// Extracts the testable patterns of a feature path: the primary
/// (root-level) one, plus a nested-object pattern when the path descends
/// through an object-typed argument.
std::vector<TypedPattern> typedPatternsFromPath(const FeaturePath &Path,
                                                const std::string &RootType) {
  std::vector<TypedPattern> Out;
  if (auto Primary = patternFromPath(Path))
    Out.push_back({RootType, std::move(*Primary)});
  // Nested: [root, m1, arg:Type, m2, arg:v, ...].
  if (Path.size() >= 4 && Path[2].K == NodeLabel::Kind::Arg &&
      !Path[2].ValueIsString && !Path[2].Text.empty() &&
      std::isupper(static_cast<unsigned char>(Path[2].Text[0])) &&
      Path[3].K == NodeLabel::Kind::Method) {
    FeaturePath Nested(Path.begin() + 2, Path.end());
    Nested[0] = NodeLabel::root(Path[2].Text);
    if (auto Secondary = patternFromPath(Nested))
      Out.push_back({Path[2].Text, std::move(*Secondary)});
  }
  return Out;
}

/// True when the pattern carries a discriminating constraint (anything
/// beyond "the argument exists").
bool isDiscriminating(const CallPattern &P) {
  for (const ArgConstraint &C : P.Args)
    if (C.K != ArgConstraint::Kind::Any)
      return true;
  return false;
}

std::string patternKey(const std::string &TypeName, const CallPattern &P) {
  std::string Key = TypeName + "|" + P.ClassName + "." + P.MethodName;
  for (const ArgConstraint &C : P.Args) {
    Key += "|" + std::to_string(C.Index) + ":" +
           std::to_string(static_cast<int>(C.K)) + ":" +
           std::to_string(C.IntBound);
    for (const std::string &V : C.Values)
      Key += "," + V;
  }
  return Key;
}

} // namespace

std::optional<Rule> diffcode::rules::suggestRule(const UsageChange &Change,
                                                 const std::string &Id) {
  // Collect Exists atoms (removed features) and NotExists atoms (added
  // features), grouped by the object type they constrain.
  std::map<std::string, std::vector<ObjectFormula>> ConjunctsByType;
  std::map<std::string, int> ExistsKeys; // contradiction pruning

  for (const FeaturePath &Path : Change.removedPaths())
    for (TypedPattern &TP : typedPatternsFromPath(Path, Change.TypeName)) {
      ExistsKeys[patternKey(TP.TypeName, TP.Pattern)] = 1;
      ConjunctsByType[TP.TypeName].push_back(
          ObjectFormula::exists(std::move(TP.Pattern)));
    }
  for (const FeaturePath &Path : Change.addedPaths())
    for (TypedPattern &TP : typedPatternsFromPath(Path, Change.TypeName)) {
      // Skip a NotExists that contradicts an Exists with the same
      // pattern — the diff was not discriminating at this level.
      if (ExistsKeys.count(patternKey(TP.TypeName, TP.Pattern)))
        continue;
      ConjunctsByType[TP.TypeName].push_back(
          ObjectFormula::notExists(std::move(TP.Pattern)));
    }

  // Vacuous suggestion: no atom constrains anything.
  bool AnyDiscriminating = false;
  for (const auto &[Type, Conjuncts] : ConjunctsByType)
    for (const ObjectFormula &F : Conjuncts)
      AnyDiscriminating = AnyDiscriminating || isDiscriminating(F.pattern());
  if (ConjunctsByType.empty() || !AnyDiscriminating)
    return std::nullopt;

  Rule R;
  R.Id = Id;
  R.Description =
      "auto-suggested from usage change of " + Change.TypeName;
  // The root-type clause comes first (it defines applicability).
  auto RootIt = ConjunctsByType.find(Change.TypeName);
  if (RootIt != ConjunctsByType.end()) {
    R.Clauses.push_back({Change.TypeName,
                         ObjectFormula::all(std::move(RootIt->second)),
                         false});
    ConjunctsByType.erase(RootIt);
  }
  for (auto &[Type, Conjuncts] : ConjunctsByType)
    R.Clauses.push_back({Type, ObjectFormula::all(std::move(Conjuncts)),
                         false});
  return R;
}

namespace {

/// Longest common prefix of a set of strings.
std::string commonPrefix(const std::vector<std::string> &Values) {
  if (Values.empty())
    return std::string();
  std::string Prefix = Values.front();
  for (const std::string &Value : Values) {
    std::size_t I = 0;
    while (I < Prefix.size() && I < Value.size() && Prefix[I] == Value[I])
      ++I;
    Prefix.resize(I);
  }
  return Prefix;
}

/// A (method, constraint) observation from one member's feature path.
struct Observation {
  std::string Key; ///< "Class.method".
  CallPattern Pattern;
};

std::vector<Observation> observations(const std::vector<usage::FeaturePath> &Paths) {
  std::vector<Observation> Out;
  for (const usage::FeaturePath &Path : Paths)
    if (auto Pattern = patternFromPath(Path))
      Out.push_back({Pattern->ClassName + "." + Pattern->MethodName,
                     std::move(*Pattern)});
  return Out;
}

} // namespace

std::optional<Rule> diffcode::rules::suggestRuleForCluster(
    const std::vector<usage::UsageChange> &Members, const std::string &Id) {
  if (Members.empty())
    return std::nullopt;
  if (Members.size() == 1)
    return suggestRule(Members.front(), Id);

  const std::string &TypeName = Members.front().TypeName;

  // Methods removed by every member, with their per-member constraints.
  std::map<std::string, std::vector<CallPattern>> RemovedByKey;
  std::map<std::string, std::vector<CallPattern>> AddedByKey;
  for (const usage::UsageChange &Member : Members) {
    if (Member.TypeName != TypeName)
      return std::nullopt; // clusters are per-class; bail on mixtures
    std::map<std::string, CallPattern> MemberRemoved;
    for (Observation &Obs : observations(Member.removedPaths()))
      MemberRemoved.emplace(Obs.Key, std::move(Obs.Pattern));
    for (auto &[Key, Pattern] : MemberRemoved)
      RemovedByKey[Key].push_back(Pattern);
    for (Observation &Obs : observations(Member.addedPaths()))
      AddedByKey[Obs.Key].push_back(std::move(Obs.Pattern));
  }

  std::vector<ObjectFormula> Conjuncts;
  for (auto &[Key, Patterns] : RemovedByKey) {
    if (Patterns.size() != Members.size())
      continue; // not shared by every member

    CallPattern Merged = Patterns.front();
    // Merge the first argument constraint across members (the
    // path-derived patterns carry at most one).
    bool AllHaveArg = true;
    for (const CallPattern &P : Patterns)
      AllHaveArg = AllHaveArg && !P.Args.empty();
    if (AllHaveArg) {
      const ArgConstraint &First = Patterns.front().Args.front();
      bool SameKind = true, SameIndex = true;
      for (const CallPattern &P : Patterns) {
        SameKind = SameKind && P.Args.front().K == First.K;
        SameIndex = SameIndex && P.Args.front().Index == First.Index;
      }
      if (!SameKind || !SameIndex) {
        Merged.Args.clear();
      } else if (First.K == ArgConstraint::Kind::StrEquals) {
        std::vector<std::string> AllValues;
        for (const CallPattern &P : Patterns)
          for (const std::string &V : P.Args.front().Values)
            if (std::find(AllValues.begin(), AllValues.end(), V) ==
                AllValues.end())
              AllValues.push_back(V);
        ArgConstraint C;
        C.Index = First.Index;
        std::string Prefix = commonPrefix(AllValues);
        // A prefix generalization is only sound if it does not cover any
        // of the cluster's *added* (secure) values — otherwise the rule
        // would flag the fixed code too.
        bool PrefixCoversAdded = false;
        auto AddedIt = AddedByKey.find(Key);
        if (AddedIt != AddedByKey.end())
          for (const CallPattern &P : AddedIt->second)
            for (const std::string &V :
                 P.Args.empty() ? std::vector<std::string>()
                                : P.Args.front().Values)
              PrefixCoversAdded =
                  PrefixCoversAdded || V.rfind(Prefix, 0) == 0;
        if (AllValues.size() > 1 && Prefix.size() >= 3 &&
            !PrefixCoversAdded) {
          C.K = ArgConstraint::Kind::StrStartsWith;
          C.Values = {Prefix};
        } else {
          C.K = ArgConstraint::Kind::StrEquals;
          C.Values = std::move(AllValues);
        }
        Merged.Args = {std::move(C)};
      } else if (First.K == ArgConstraint::Kind::IntEquals) {
        // The R2 shape: removed small constants, added large ones.
        std::int64_t MinAdded = INT64_MAX;
        auto AddedIt = AddedByKey.find(Key);
        if (AddedIt != AddedByKey.end())
          for (const CallPattern &P : AddedIt->second)
            if (!P.Args.empty() &&
                P.Args.front().K == ArgConstraint::Kind::IntEquals)
              MinAdded = std::min(MinAdded, P.Args.front().IntBound);
        ArgConstraint C;
        C.Index = First.Index;
        if (MinAdded != INT64_MAX) {
          C.K = ArgConstraint::Kind::IntLess;
          C.IntBound = MinAdded;
        } else {
          C.K = ArgConstraint::Kind::IsConstant;
        }
        Merged.Args = {std::move(C)};
      }
      // IsConstant/IsTop/Any: identical across members, keep as is.
    } else {
      Merged.Args.clear();
    }
    Conjuncts.push_back(ObjectFormula::exists(std::move(Merged)));
  }

  // NotExists only for additions shared verbatim by every member, and
  // never contradicting one of the Exists atoms.
  std::set<std::string> ExistsKeys;
  for (const ObjectFormula &F : Conjuncts)
    ExistsKeys.insert(patternKey(TypeName, F.pattern()));
  for (auto &[Key, Patterns] : AddedByKey) {
    if (Patterns.size() != Members.size())
      continue;
    bool AllIdentical = true;
    for (const CallPattern &P : Patterns) {
      AllIdentical =
          AllIdentical && P.Args.size() == Patterns.front().Args.size();
      if (!P.Args.empty() && !Patterns.front().Args.empty())
        AllIdentical = AllIdentical &&
                       P.Args.front().K == Patterns.front().Args.front().K &&
                       P.Args.front().Values ==
                           Patterns.front().Args.front().Values &&
                       P.Args.front().IntBound ==
                           Patterns.front().Args.front().IntBound;
    }
    if (AllIdentical &&
        !ExistsKeys.count(patternKey(TypeName, Patterns.front())))
      Conjuncts.push_back(ObjectFormula::notExists(Patterns.front()));
  }

  bool AnyDiscriminating = false;
  for (const ObjectFormula &F : Conjuncts)
    AnyDiscriminating = AnyDiscriminating || isDiscriminating(F.pattern());
  if (Conjuncts.empty() || !AnyDiscriminating)
    return std::nullopt;
  Rule R;
  R.Id = Id;
  R.Description = "generalized from a cluster of " +
                  std::to_string(Members.size()) + " usage changes of " +
                  TypeName;
  R.Clauses.push_back(
      {TypeName, ObjectFormula::all(std::move(Conjuncts)), false});
  return R;
}

namespace {

std::string describeConstraint(const ArgConstraint &C) {
  std::string Arg = "arg" + std::to_string(C.Index);
  switch (C.K) {
  case ArgConstraint::Kind::Any:
    return Arg + " present";
  case ArgConstraint::Kind::StrEquals:
    return Arg + " = \"" + (C.Values.empty() ? "" : C.Values.front()) + "\"" +
           (C.Values.size() > 1 ? " (or variants)" : "");
  case ArgConstraint::Kind::StrNotEquals:
    return Arg + " != \"" + (C.Values.empty() ? "" : C.Values.front()) + "\"";
  case ArgConstraint::Kind::StrStartsWith:
    return "startsWith(" + Arg + ", \"" +
           (C.Values.empty() ? "" : C.Values.front()) + "\")";
  case ArgConstraint::Kind::IntLess:
    return Arg + " < " + std::to_string(C.IntBound);
  case ArgConstraint::Kind::IntAtLeast:
    return Arg + " >= " + std::to_string(C.IntBound);
  case ArgConstraint::Kind::IntEquals:
    return Arg + " = " + std::to_string(C.IntBound);
  case ArgConstraint::Kind::IsConstant:
    return Arg + " != ⊤ (program constant)";
  case ArgConstraint::Kind::IsTop:
    return Arg + " = ⊤";
  }
  return Arg;
}

std::string describeFormula(const ObjectFormula &F) {
  switch (F.kind()) {
  case ObjectFormula::Kind::Exists:
  case ObjectFormula::Kind::NotExists: {
    std::string Out =
        F.kind() == ObjectFormula::Kind::NotExists ? "¬" : "";
    Out += F.pattern().MethodName;
    Out += "(";
    for (std::size_t I = 0; I < F.pattern().Args.size(); ++I) {
      if (I != 0)
        Out += " ∧ ";
      Out += describeConstraint(F.pattern().Args[I]);
    }
    Out += ")";
    return Out;
  }
  case ObjectFormula::Kind::And:
  case ObjectFormula::Kind::Or: {
    const char *Sep = F.kind() == ObjectFormula::Kind::And ? " ∧ " : " ∨ ";
    std::string Out = "(";
    for (std::size_t I = 0; I < F.children().size(); ++I) {
      if (I != 0)
        Out += Sep;
      Out += describeFormula(F.children()[I]);
    }
    return Out + ")";
  }
  }
  return "";
}

} // namespace

std::string diffcode::rules::describeRule(const Rule &R) {
  std::string Out = R.Id + ": ";
  for (std::size_t I = 0; I < R.Clauses.size(); ++I) {
    if (I != 0)
      Out += " ∧ ";
    if (R.Clauses[I].Negated)
      Out += "¬";
    Out += R.Clauses[I].TypeName + " : " +
           describeFormula(R.Clauses[I].Formula);
  }
  return Out;
}
