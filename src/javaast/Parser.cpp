//===- javaast/Parser.cpp --------------------------------------------------===//

#include "javaast/Parser.h"

#include "javaast/Lexer.h"
#include "support/FaultInjection.h"

#include <cassert>
#include <cstdlib>

using namespace diffcode::java;

namespace {
/// Internal signal for a blown parse budget; never escapes parseJava /
/// parseCompilationUnit (converted into a Diags.budget report there).
struct ParseBudgetError {
  SourceLocation Loc;
  std::string Message;
};
} // namespace

/// Bounds the combined statement/expression recursion. Guarding
/// parseStatement and parseUnary covers every recursive cycle in the
/// grammar: statements nest only through parseStatement, and every
/// expression cycle passes through parseUnary.
class Parser::DepthGuard {
public:
  explicit DepthGuard(Parser &P) : P(P) {
    if (P.Limits.MaxNestingDepth != 0 && ++P.Depth > P.Limits.MaxNestingDepth)
      throw ParseBudgetError{
          P.cur().Loc, "nesting depth exceeds budget (" +
                           std::to_string(P.Limits.MaxNestingDepth) + ")"};
  }
  ~DepthGuard() { --P.Depth; }

private:
  Parser &P;
};

Parser::Parser(TokenStream Stream, AstContext &Ctx, DiagnosticsEngine &Diags,
               ParseLimits Limits)
    : Stream(std::move(Stream)), Tokens(this->Stream.Tokens), Ctx(Ctx),
      Diags(Diags), Limits(Limits) {
  assert(!this->Tokens.empty() &&
         this->Tokens.back().is(TokenKind::EndOfFile) &&
         "token stream must end with EOF");
}

const Token &Parser::peek(std::size_t Ahead) const {
  std::size_t At = Index + Ahead;
  if (At >= Tokens.size())
    At = Tokens.size() - 1; // EOF
  return Tokens[At];
}

Token Parser::advance() {
  Token T = cur();
  if (!atEnd())
    ++Index;
  return T;
}

bool Parser::accept(TokenKind K) {
  if (!at(K))
    return false;
  advance();
  return true;
}

bool Parser::expect(TokenKind K, std::string_view Context) {
  if (accept(K))
    return true;
  Diags.error(cur().Loc, std::string("expected ") +
                             std::string(tokenKindName(K)) + " " +
                             std::string(Context) + ", found " +
                             std::string(tokenKindName(cur().Kind)));
  return false;
}

void Parser::skipTo(std::initializer_list<TokenKind> Kinds) {
  while (!atEnd()) {
    for (TokenKind K : Kinds)
      if (at(K))
        return;
    // Do not run past a closing brace that likely ends our scope.
    if (at(TokenKind::RBrace))
      return;
    if (at(TokenKind::LBrace)) {
      skipBalanced(TokenKind::LBrace, TokenKind::RBrace);
      continue;
    }
    advance();
  }
}

void Parser::skipBalanced(TokenKind Open, TokenKind Close) {
  assert(at(Open) && "skipBalanced must start at the opening token");
  int Depth = 0;
  while (!atEnd()) {
    if (at(Open))
      ++Depth;
    else if (at(Close))
      --Depth;
    advance();
    if (Depth == 0)
      return;
  }
}

//===----------------------------------------------------------------------===//
// Declarations
//===----------------------------------------------------------------------===//

CompilationUnit *Parser::parseCompilationUnit() {
  if (Limits.MaxTokens != 0 && Tokens.size() > Limits.MaxTokens) {
    Diags.budget(Tokens.front().Loc,
                 "token count " + std::to_string(Tokens.size()) +
                     " exceeds budget (" + std::to_string(Limits.MaxTokens) +
                     ")");
    return nullptr;
  }
  try {
    auto *Unit = Ctx.create<CompilationUnit>(cur().Loc);
    if (at(TokenKind::KwPackage))
      parsePackageDecl(Unit);
    while (at(TokenKind::KwImport))
      parseImportDecl(Unit);

    while (!atEnd()) {
      skipAnnotations();
      if (atEnd())
        break;
      unsigned Modifiers = parseModifiers();
      if (at(TokenKind::KwClass) || at(TokenKind::KwInterface)) {
        if (ClassDecl *Class = parseClassDecl(Modifiers))
          Unit->Types.push_back(Class);
        continue;
      }
      if (at(TokenKind::Semi)) {
        advance();
        continue;
      }
      Diags.error(cur().Loc,
                  "expected class or interface declaration, found " +
                      std::string(tokenKindName(cur().Kind)));
      advance();
    }
    return Unit;
  } catch (const ParseBudgetError &E) {
    // Oversized input: drop everything parsed so far so the outcome is an
    // empty-but-flagged result, identical no matter where the cap hit.
    Diags.budget(E.Loc, E.Message);
    return nullptr;
  }
}

void Parser::parsePackageDecl(CompilationUnit *Unit) {
  advance(); // 'package'
  Unit->PackageName = parseQualifiedName();
  expect(TokenKind::Semi, "after package declaration");
}

void Parser::parseImportDecl(CompilationUnit *Unit) {
  advance(); // 'import'
  accept(TokenKind::KwStatic);
  std::string Name = parseQualifiedName();
  if (accept(TokenKind::Dot)) {
    // `import a.b.*;`
    if (accept(TokenKind::Star))
      Name += ".*";
  }
  Unit->Imports.push_back(std::move(Name));
  expect(TokenKind::Semi, "after import declaration");
}

std::string Parser::parseQualifiedName() {
  std::string Name;
  if (!at(TokenKind::Identifier)) {
    Diags.error(cur().Loc, "expected identifier in qualified name");
    return Name;
  }
  Name = advance().Text;
  while (at(TokenKind::Dot) && peek().is(TokenKind::Identifier)) {
    advance();
    Name += '.';
    Name += advance().Text;
  }
  return Name;
}

unsigned Parser::parseModifiers() {
  unsigned Modifiers = ModNone;
  while (true) {
    switch (cur().Kind) {
    case TokenKind::KwPublic:
      Modifiers |= ModPublic;
      break;
    case TokenKind::KwPrivate:
      Modifiers |= ModPrivate;
      break;
    case TokenKind::KwProtected:
      Modifiers |= ModProtected;
      break;
    case TokenKind::KwStatic:
      Modifiers |= ModStatic;
      break;
    case TokenKind::KwFinal:
      Modifiers |= ModFinal;
      break;
    case TokenKind::KwAbstract:
      Modifiers |= ModAbstract;
      break;
    case TokenKind::KwSynchronized:
      // `synchronized` is a statement keyword too; only a modifier when a
      // member declaration follows (heuristic: not followed by '(').
      if (peek().is(TokenKind::LParen))
        return Modifiers;
      Modifiers |= ModSynchronized;
      break;
    case TokenKind::At:
      skipAnnotations();
      continue;
    default:
      return Modifiers;
    }
    advance();
  }
}

void Parser::skipAnnotations() {
  while (at(TokenKind::At)) {
    advance();
    if (at(TokenKind::KwInterface)) { // @interface declaration — skip whole.
      advance();
      if (at(TokenKind::Identifier))
        advance();
      if (at(TokenKind::LBrace))
        skipBalanced(TokenKind::LBrace, TokenKind::RBrace);
      continue;
    }
    if (at(TokenKind::Identifier))
      parseQualifiedName();
    if (at(TokenKind::LParen))
      skipBalanced(TokenKind::LParen, TokenKind::RParen);
  }
}

ClassDecl *Parser::parseClassDecl(unsigned Modifiers) {
  bool IsInterface = at(TokenKind::KwInterface);
  SourceLocation Loc = advance().Loc; // 'class'/'interface'
  if (!at(TokenKind::Identifier)) {
    Diags.error(cur().Loc, "expected class name");
    skipTo({TokenKind::LBrace});
    if (at(TokenKind::LBrace))
      skipBalanced(TokenKind::LBrace, TokenKind::RBrace);
    return nullptr;
  }
  auto *Class =
      Ctx.create<ClassDecl>(Loc, Modifiers, std::string(advance().Text));
  Class->IsInterface = IsInterface;
  if (at(TokenKind::Less))
    skipGenericArgs();
  if (accept(TokenKind::KwExtends)) {
    Class->SuperClass = parseQualifiedName();
    if (at(TokenKind::Less))
      skipGenericArgs();
    // Interfaces may extend several interfaces.
    while (accept(TokenKind::Comma)) {
      Class->Interfaces.push_back(parseQualifiedName());
      if (at(TokenKind::Less))
        skipGenericArgs();
    }
  }
  if (accept(TokenKind::KwImplements)) {
    do {
      Class->Interfaces.push_back(parseQualifiedName());
      if (at(TokenKind::Less))
        skipGenericArgs();
    } while (accept(TokenKind::Comma));
  }
  if (!expect(TokenKind::LBrace, "to open class body"))
    return Class;
  parseClassBody(Class);
  return Class;
}

void Parser::parseClassBody(ClassDecl *Class) {
  while (!atEnd() && !at(TokenKind::RBrace))
    parseMember(Class);
  expect(TokenKind::RBrace, "to close class body");
}

void Parser::parseMember(ClassDecl *Class) {
  if (accept(TokenKind::Semi))
    return;
  skipAnnotations();
  unsigned Modifiers = parseModifiers();

  // Nested class / interface.
  if (at(TokenKind::KwClass) || at(TokenKind::KwInterface)) {
    if (ClassDecl *Nested = parseClassDecl(Modifiers))
      Class->NestedClasses.push_back(Nested);
    return;
  }

  // Static / instance initializer block: lower to a synthetic method so
  // the analyzer treats it as ordinary code.
  if (at(TokenKind::LBrace)) {
    Block *Body = parseBlock();
    auto *Init = Ctx.create<MethodDecl>(
        Body->getLoc(), Modifiers, TypeRef{"void", 0, Body->getLoc()},
        "$init" + std::to_string(Class->Methods.size()),
        std::vector<ParamDecl>(), Body, /*IsConstructor=*/false);
    Class->Methods.push_back(Init);
    return;
  }

  // Constructor: `Name (` where Name is the class name.
  if (at(TokenKind::Identifier) && cur().Text == Class->Name &&
      peek().is(TokenKind::LParen)) {
    SourceLocation Loc = cur().Loc;
    std::string Name(advance().Text);
    advance(); // '('
    std::vector<ParamDecl> Params;
    if (!at(TokenKind::RParen)) {
      do {
        skipAnnotations();
        accept(TokenKind::KwFinal);
        TypeRef PType = parseType();
        accept(TokenKind::Ellipsis);
        std::string PName =
            at(TokenKind::Identifier) ? std::string(advance().Text)
                                      : std::string();
        Params.push_back({std::move(PType), std::move(PName)});
      } while (accept(TokenKind::Comma));
    }
    expect(TokenKind::RParen, "to close parameter list");
    auto *Method = Ctx.create<MethodDecl>(
        Loc, Modifiers, TypeRef{"void", 0, Loc}, std::move(Name),
        std::move(Params), nullptr, /*IsConstructor=*/true);
    if (accept(TokenKind::KwThrows)) {
      do {
        Method->Throws.push_back(TypeRef{parseQualifiedName(), 0, cur().Loc});
      } while (accept(TokenKind::Comma));
    }
    if (at(TokenKind::LBrace))
      Method->Body = parseBlock();
    else
      expect(TokenKind::Semi, "after constructor declaration");
    Class->Methods.push_back(Method);
    return;
  }

  // Method or field: parse type, then name.
  if (at(TokenKind::Less))
    skipGenericArgs(); // method type parameters `<T> T foo(...)`
  if (!atTypeStart() && !at(TokenKind::KwVoid)) {
    Diags.error(cur().Loc, "expected member declaration, found " +
                               std::string(tokenKindName(cur().Kind)));
    skipTo({TokenKind::Semi, TokenKind::RBrace});
    accept(TokenKind::Semi);
    return;
  }

  TypeRef Type;
  if (at(TokenKind::KwVoid)) {
    Type = TypeRef{"void", 0, cur().Loc};
    advance();
  } else {
    Type = parseType();
  }

  if (!at(TokenKind::Identifier)) {
    Diags.error(cur().Loc, "expected member name");
    skipTo({TokenKind::Semi, TokenKind::RBrace});
    accept(TokenKind::Semi);
    return;
  }
  SourceLocation NameLoc = cur().Loc;
  std::string Name(advance().Text);

  if (at(TokenKind::LParen)) {
    // Method declaration.
    advance();
    std::vector<ParamDecl> Params;
    if (!at(TokenKind::RParen)) {
      do {
        skipAnnotations();
        accept(TokenKind::KwFinal);
        TypeRef PType = parseType();
        accept(TokenKind::Ellipsis);
        std::string PName =
            at(TokenKind::Identifier) ? std::string(advance().Text)
                                      : std::string();
        // C-style trailing array dims on the parameter name.
        while (at(TokenKind::LBracket) && peek().is(TokenKind::RBracket)) {
          advance();
          advance();
          ++PType.ArrayDims;
        }
        Params.push_back({std::move(PType), std::move(PName)});
      } while (accept(TokenKind::Comma));
    }
    expect(TokenKind::RParen, "to close parameter list");
    auto *Method = Ctx.create<MethodDecl>(NameLoc, Modifiers, std::move(Type),
                                          std::move(Name), std::move(Params),
                                          nullptr, /*IsConstructor=*/false);
    if (accept(TokenKind::KwThrows)) {
      do {
        Method->Throws.push_back(TypeRef{parseQualifiedName(), 0, cur().Loc});
      } while (accept(TokenKind::Comma));
    }
    if (at(TokenKind::LBrace))
      Method->Body = parseBlock();
    else
      expect(TokenKind::Semi, "after abstract method declaration");
    Class->Methods.push_back(Method);
    return;
  }

  // Field declaration(s): `T a = init, b;`
  while (true) {
    TypeRef FieldType = Type;
    while (at(TokenKind::LBracket) && peek().is(TokenKind::RBracket)) {
      advance();
      advance();
      ++FieldType.ArrayDims;
    }
    Expr *Init = nullptr;
    if (accept(TokenKind::Assign))
      Init = at(TokenKind::LBrace) ? parseArrayInit() : parseExpr();
    Class->Fields.push_back(Ctx.create<FieldDecl>(
        NameLoc, Modifiers, std::move(FieldType), std::move(Name), Init));
    if (!accept(TokenKind::Comma))
      break;
    if (!at(TokenKind::Identifier)) {
      Diags.error(cur().Loc, "expected field name after ','");
      break;
    }
    NameLoc = cur().Loc;
    Name = advance().Text;
  }
  expect(TokenKind::Semi, "after field declaration");
}

//===----------------------------------------------------------------------===//
// Types
//===----------------------------------------------------------------------===//

static bool isPrimitiveTypeKeyword(TokenKind Kind) {
  switch (Kind) {
  case TokenKind::KwBoolean:
  case TokenKind::KwByte:
  case TokenKind::KwChar:
  case TokenKind::KwDouble:
  case TokenKind::KwFloat:
  case TokenKind::KwInt:
  case TokenKind::KwLong:
  case TokenKind::KwShort:
    return true;
  default:
    return false;
  }
}

bool Parser::atTypeStart() const {
  return at(TokenKind::Identifier) || isPrimitiveTypeKeyword(cur().Kind);
}

TypeRef Parser::parseType() {
  SourceLocation Loc = cur().Loc;
  std::string Name;
  if (isPrimitiveTypeKeyword(cur().Kind)) {
    Name = advance().Text;
  } else if (at(TokenKind::Identifier)) {
    Name = parseQualifiedName();
    if (at(TokenKind::Less))
      skipGenericArgs();
    // Nested access after generics, e.g. `Map<K,V>.Entry` (rare) — fold
    // into the name.
    while (at(TokenKind::Dot) && peek().is(TokenKind::Identifier)) {
      advance();
      Name += '.';
      Name += advance().Text;
      if (at(TokenKind::Less))
        skipGenericArgs();
    }
  } else {
    Diags.error(Loc, "expected type, found " +
                         std::string(tokenKindName(cur().Kind)));
    return TypeRef{"<error>", 0, Loc};
  }
  TypeRef Type{std::move(Name), 0, Loc};
  while (at(TokenKind::LBracket) && peek().is(TokenKind::RBracket)) {
    advance();
    advance();
    ++Type.ArrayDims;
  }
  return Type;
}

void Parser::skipGenericArgs() {
  assert(at(TokenKind::Less) && "must start at '<'");
  int Depth = 0;
  while (!atEnd()) {
    switch (cur().Kind) {
    case TokenKind::Less:
      ++Depth;
      break;
    case TokenKind::Greater:
      --Depth;
      break;
    case TokenKind::Shr:
      Depth -= 2;
      break;
    case TokenKind::Semi:
    case TokenKind::LBrace:
      // A generic argument list never contains these; bail out so a stray
      // '<' comparison does not eat the rest of the file.
      return;
    default:
      break;
    }
    advance();
    if (Depth <= 0)
      return;
  }
}

std::size_t Parser::scanType(std::size_t From) const {
  std::size_t I = From;
  auto TokAt = [&](std::size_t Idx) -> const Token & {
    return Tokens[Idx < Tokens.size() ? Idx : Tokens.size() - 1];
  };
  if (isPrimitiveTypeKeyword(TokAt(I).Kind)) {
    ++I;
  } else if (TokAt(I).is(TokenKind::Identifier)) {
    ++I;
    while (TokAt(I).is(TokenKind::Dot) &&
           TokAt(I + 1).is(TokenKind::Identifier))
      I += 2;
    if (TokAt(I).is(TokenKind::Less)) {
      // Balanced scan of generic args; reject if it does not close sanely.
      int Depth = 0;
      while (I < Tokens.size()) {
        TokenKind K = TokAt(I).Kind;
        if (K == TokenKind::Less)
          ++Depth;
        else if (K == TokenKind::Greater)
          --Depth;
        else if (K == TokenKind::Shr)
          Depth -= 2;
        else if (K == TokenKind::Semi || K == TokenKind::LBrace ||
                 K == TokenKind::EndOfFile)
          return 0;
        ++I;
        if (Depth <= 0)
          break;
      }
    }
  } else {
    return 0;
  }
  while (TokAt(I).is(TokenKind::LBracket) &&
         TokAt(I + 1).is(TokenKind::RBracket))
    I += 2;
  return I;
}

bool Parser::isLocalVarDeclStart() const {
  if (at(TokenKind::KwFinal))
    return true;
  if (isPrimitiveTypeKeyword(cur().Kind))
    return true;
  if (!at(TokenKind::Identifier))
    return false;
  std::size_t After = scanType(Index);
  if (After == 0)
    return false;
  // A declaration continues with `name ;`, `name =`, `name ,` or `name :`
  // (enhanced for).
  if (!Tokens[std::min(After, Tokens.size() - 1)].is(TokenKind::Identifier))
    return false;
  TokenKind Next = Tokens[std::min(After + 1, Tokens.size() - 1)].Kind;
  return Next == TokenKind::Semi || Next == TokenKind::Assign ||
         Next == TokenKind::Comma || Next == TokenKind::Colon ||
         Next == TokenKind::LBracket;
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

Block *Parser::parseBlock() {
  SourceLocation Loc = cur().Loc;
  expect(TokenKind::LBrace, "to open block");
  std::vector<Stmt *> Stmts;
  while (!atEnd() && !at(TokenKind::RBrace)) {
    std::size_t Before = Index;
    if (Stmt *S = parseStatement())
      Stmts.push_back(S);
    if (Index == Before) {
      // No progress — force it to avoid an infinite loop on broken input.
      Diags.error(cur().Loc, "cannot parse statement, skipping token");
      advance();
    }
  }
  expect(TokenKind::RBrace, "to close block");
  return Ctx.create<Block>(Loc, std::move(Stmts));
}

Stmt *Parser::parseStatement() {
  DepthGuard Guard(*this);
  switch (cur().Kind) {
  case TokenKind::LBrace:
    return parseBlock();
  case TokenKind::Semi:
    return Ctx.create<EmptyStmt>(advance().Loc);
  case TokenKind::KwIf:
    return parseIf();
  case TokenKind::KwWhile:
    return parseWhile();
  case TokenKind::KwDo:
    return parseDo();
  case TokenKind::KwFor:
    return parseFor();
  case TokenKind::KwTry:
    return parseTry();
  case TokenKind::KwSwitch:
    return parseSwitch();
  case TokenKind::KwSynchronized:
    return parseSynchronized();
  case TokenKind::KwAssert: {
    // `assert cond : message;` — evaluate both operands for their
    // side effects; the assertion itself has no abstract meaning.
    SourceLocation Loc = advance().Loc;
    Expr *Cond = parseExpr();
    std::vector<Stmt *> Lowered;
    Lowered.push_back(Ctx.create<ExprStmt>(Loc, Cond));
    if (accept(TokenKind::Colon)) {
      Expr *Message = parseExpr();
      Lowered.push_back(Ctx.create<ExprStmt>(Message->getLoc(), Message));
    }
    expect(TokenKind::Semi, "after assert statement");
    return Ctx.create<Block>(Loc, std::move(Lowered));
  }
  case TokenKind::KwReturn: {
    SourceLocation Loc = advance().Loc;
    Expr *Value = at(TokenKind::Semi) ? nullptr : parseExpr();
    expect(TokenKind::Semi, "after return statement");
    return Ctx.create<ReturnStmt>(Loc, Value);
  }
  case TokenKind::KwThrow: {
    SourceLocation Loc = advance().Loc;
    Expr *Value = parseExpr();
    expect(TokenKind::Semi, "after throw statement");
    return Ctx.create<ThrowStmt>(Loc, Value);
  }
  case TokenKind::KwBreak: {
    SourceLocation Loc = advance().Loc;
    accept(TokenKind::Identifier); // label
    expect(TokenKind::Semi, "after break");
    return Ctx.create<BreakStmt>(Loc);
  }
  case TokenKind::KwContinue: {
    SourceLocation Loc = advance().Loc;
    accept(TokenKind::Identifier); // label
    expect(TokenKind::Semi, "after continue");
    return Ctx.create<ContinueStmt>(Loc);
  }
  default:
    break;
  }

  // Labeled statement: `label: while (...) ...` — the label itself has no
  // semantic weight for the analysis; skip it.
  if (at(TokenKind::Identifier) && peek().is(TokenKind::Colon)) {
    advance();
    advance();
    return parseStatement();
  }

  if (isLocalVarDeclStart())
    return parseLocalVarDecl();

  SourceLocation Loc = cur().Loc;
  Expr *E = parseExpr();
  expect(TokenKind::Semi, "after expression statement");
  return Ctx.create<ExprStmt>(Loc, E);
}

Stmt *Parser::parseLocalVarDecl() {
  SourceLocation Loc = cur().Loc;
  accept(TokenKind::KwFinal);
  skipAnnotations();
  TypeRef Type = parseType();

  std::vector<Stmt *> Decls;
  while (true) {
    if (!at(TokenKind::Identifier)) {
      Diags.error(cur().Loc, "expected variable name");
      skipTo({TokenKind::Semi});
      break;
    }
    SourceLocation NameLoc = cur().Loc;
    std::string Name(advance().Text);
    TypeRef VarType = Type;
    while (at(TokenKind::LBracket) && peek().is(TokenKind::RBracket)) {
      advance();
      advance();
      ++VarType.ArrayDims;
    }
    Expr *Init = nullptr;
    if (accept(TokenKind::Assign))
      Init = at(TokenKind::LBrace) ? parseArrayInit() : parseExpr();
    Decls.push_back(Ctx.create<LocalVarDeclStmt>(NameLoc, std::move(VarType),
                                                 std::move(Name), Init));
    if (!accept(TokenKind::Comma))
      break;
  }
  expect(TokenKind::Semi, "after variable declaration");
  if (Decls.size() == 1)
    return Decls.front();
  return Ctx.create<Block>(Loc, std::move(Decls));
}

Stmt *Parser::parseIf() {
  SourceLocation Loc = advance().Loc; // 'if'
  expect(TokenKind::LParen, "after 'if'");
  Expr *Cond = parseExpr();
  expect(TokenKind::RParen, "after if condition");
  Stmt *Then = parseStatement();
  Stmt *Else = nullptr;
  if (accept(TokenKind::KwElse))
    Else = parseStatement();
  return Ctx.create<IfStmt>(Loc, Cond, Then, Else);
}

Stmt *Parser::parseWhile() {
  SourceLocation Loc = advance().Loc; // 'while'
  expect(TokenKind::LParen, "after 'while'");
  Expr *Cond = parseExpr();
  expect(TokenKind::RParen, "after while condition");
  Stmt *Body = parseStatement();
  return Ctx.create<WhileStmt>(Loc, Cond, Body);
}

Stmt *Parser::parseDo() {
  SourceLocation Loc = advance().Loc; // 'do'
  Stmt *Body = parseStatement();
  expect(TokenKind::KwWhile, "after do body");
  expect(TokenKind::LParen, "after 'while'");
  Expr *Cond = parseExpr();
  expect(TokenKind::RParen, "after do-while condition");
  expect(TokenKind::Semi, "after do-while statement");
  return Ctx.create<DoStmt>(Loc, Body, Cond);
}

Stmt *Parser::parseFor() {
  SourceLocation Loc = advance().Loc; // 'for'
  expect(TokenKind::LParen, "after 'for'");

  // Enhanced for: `for (T x : e) body` lowers to
  //   { T x = e.$element(); while (true) body }
  // The analyzer forks 0/1 iterations at `while` and treats the unknown
  // call result as top, which matches the paper's abstraction of loop
  // values.
  if (isLocalVarDeclStart()) {
    std::size_t Save = Index;
    accept(TokenKind::KwFinal);
    TypeRef Type = parseType();
    if (at(TokenKind::Identifier) && peek().is(TokenKind::Colon)) {
      SourceLocation NameLoc = cur().Loc;
      std::string Name(advance().Text);
      advance(); // ':'
      Expr *Range = parseExpr();
      expect(TokenKind::RParen, "after for-each header");
      Stmt *Body = parseStatement();
      auto *Element = Ctx.create<MethodCallExpr>(
          NameLoc, Range, "$element", std::vector<Expr *>());
      auto *Decl = Ctx.create<LocalVarDeclStmt>(NameLoc, std::move(Type),
                                                std::move(Name), Element);
      auto *Loop = Ctx.create<WhileStmt>(
          Loc, Ctx.create<BoolLiteralExpr>(Loc, true), Body);
      return Ctx.create<Block>(Loc, std::vector<Stmt *>{Decl, Loop});
    }
    Index = Save; // plain for with a declaration initializer
  }

  Stmt *Init = nullptr;
  if (!at(TokenKind::Semi)) {
    if (isLocalVarDeclStart()) {
      Init = parseLocalVarDecl(); // consumes ';'
    } else {
      Expr *E = parseExpr();
      Init = Ctx.create<ExprStmt>(E->getLoc(), E);
      expect(TokenKind::Semi, "after for initializer");
    }
  } else {
    advance();
  }

  Expr *Cond = at(TokenKind::Semi) ? nullptr : parseExpr();
  expect(TokenKind::Semi, "after for condition");
  Expr *Update = at(TokenKind::RParen) ? nullptr : parseExpr();
  // Extra update expressions `i++, j++` — keep the first, parse the rest.
  while (accept(TokenKind::Comma))
    parseExpr();
  expect(TokenKind::RParen, "after for header");
  Stmt *Body = parseStatement();
  return Ctx.create<ForStmt>(Loc, Init, Cond, Update, Body);
}

Stmt *Parser::parseTry() {
  SourceLocation Loc = advance().Loc; // 'try'
  // try-with-resources: lower resource declarations to leading locals.
  std::vector<Stmt *> Resources;
  if (at(TokenKind::LParen)) {
    advance();
    while (!atEnd() && !at(TokenKind::RParen)) {
      if (isLocalVarDeclStart()) {
        accept(TokenKind::KwFinal);
        TypeRef Type = parseType();
        if (at(TokenKind::Identifier)) {
          SourceLocation NameLoc = cur().Loc;
          std::string Name(advance().Text);
          Expr *Init = nullptr;
          if (accept(TokenKind::Assign))
            Init = parseExpr();
          Resources.push_back(Ctx.create<LocalVarDeclStmt>(
              NameLoc, std::move(Type), std::move(Name), Init));
        }
      } else {
        parseExpr();
      }
      if (!accept(TokenKind::Semi))
        break;
    }
    expect(TokenKind::RParen, "after try resources");
  }

  Block *Body = parseBlock();
  if (!Resources.empty()) {
    Resources.push_back(Body);
    Body = Ctx.create<Block>(Loc, std::move(Resources));
  }

  std::vector<CatchClause> Catches;
  while (at(TokenKind::KwCatch)) {
    advance();
    expect(TokenKind::LParen, "after 'catch'");
    CatchClause Clause;
    accept(TokenKind::KwFinal);
    Clause.Types.push_back(parseType());
    while (accept(TokenKind::Pipe))
      Clause.Types.push_back(parseType());
    if (at(TokenKind::Identifier))
      Clause.Name = advance().Text;
    expect(TokenKind::RParen, "after catch parameter");
    Clause.Body = parseBlock();
    Catches.push_back(std::move(Clause));
  }

  Block *Finally = nullptr;
  if (accept(TokenKind::KwFinally))
    Finally = parseBlock();

  if (Catches.empty() && !Finally && Resources.empty())
    Diags.warning(Loc, "try statement without catch or finally");
  return Ctx.create<TryStmt>(Loc, Body, std::move(Catches), Finally);
}

Stmt *Parser::parseSwitch() {
  // `switch (e) { case c1: S1... case c2: S2... default: Sd }` lowers to
  //   { e; if ($case) {S1} else if ($case) {S2} else {Sd} }
  // with `$case` an opaque name (abstractly unknown), preserving the
  // per-case fork semantics of the analyzer — a *constant* condition
  // would be pruned by the interpreter's constant-branch elimination.
  SourceLocation Loc = advance().Loc; // 'switch'
  expect(TokenKind::LParen, "after 'switch'");
  Expr *Scrutinee = parseExpr();
  expect(TokenKind::RParen, "after switch expression");
  expect(TokenKind::LBrace, "to open switch body");

  std::vector<Block *> Arms;
  std::vector<Stmt *> CurrentArm;
  SourceLocation ArmLoc = Loc;
  bool HaveArm = false;
  auto FlushArm = [&]() {
    if (HaveArm)
      Arms.push_back(Ctx.create<Block>(ArmLoc, std::move(CurrentArm)));
    CurrentArm.clear();
  };

  while (!atEnd() && !at(TokenKind::RBrace)) {
    if (at(TokenKind::KwCase)) {
      FlushArm();
      HaveArm = true;
      ArmLoc = advance().Loc;
      parseExpr(); // case label value
      expect(TokenKind::Colon, "after case label");
      continue;
    }
    if (at(TokenKind::KwDefault)) {
      FlushArm();
      HaveArm = true;
      ArmLoc = advance().Loc;
      expect(TokenKind::Colon, "after 'default'");
      continue;
    }
    std::size_t Before = Index;
    if (Stmt *S = parseStatement())
      CurrentArm.push_back(S);
    if (Index == Before)
      advance();
  }
  FlushArm();
  expect(TokenKind::RBrace, "to close switch body");

  Stmt *Chain = nullptr;
  for (auto It = Arms.rbegin(); It != Arms.rend(); ++It) {
    Expr *Cond = Ctx.create<NameExpr>((*It)->getLoc(), "$case");
    Chain = Ctx.create<IfStmt>((*It)->getLoc(), Cond, *It, Chain);
  }
  std::vector<Stmt *> Lowered;
  Lowered.push_back(Ctx.create<ExprStmt>(Loc, Scrutinee));
  if (Chain)
    Lowered.push_back(Chain);
  return Ctx.create<Block>(Loc, std::move(Lowered));
}

Stmt *Parser::parseSynchronized() {
  SourceLocation Loc = advance().Loc; // 'synchronized'
  expect(TokenKind::LParen, "after 'synchronized'");
  Expr *Monitor = parseExpr();
  expect(TokenKind::RParen, "after synchronized monitor");
  Block *Body = parseBlock();
  return Ctx.create<Block>(
      Loc, std::vector<Stmt *>{Ctx.create<ExprStmt>(Loc, Monitor), Body});
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

Expr *Parser::makeErrorExpr(SourceLocation Loc) {
  return Ctx.create<NullLiteralExpr>(Loc);
}

Expr *Parser::parseExpr() { return parseAssignment(); }

Expr *Parser::parseAssignment() {
  // Lambdas are opaque to the analysis (deferred execution): parse the
  // whole construct, discard the body, and yield an unknown value.
  if (at(TokenKind::Identifier) && peek().is(TokenKind::Arrow)) {
    SourceLocation Loc = advance().Loc; // parameter
    advance();                          // '->'
    if (at(TokenKind::LBrace))
      skipBalanced(TokenKind::LBrace, TokenKind::RBrace);
    else
      parseAssignment();
    return Ctx.create<NameExpr>(Loc, "$lambda");
  }
  if (at(TokenKind::LParen)) {
    // `(params) -> ...`: scan the balanced parens and peek for '->'.
    std::size_t Depth = 0, I = Index;
    while (I < Tokens.size()) {
      if (Tokens[I].is(TokenKind::LParen))
        ++Depth;
      else if (Tokens[I].is(TokenKind::RParen) && --Depth == 0)
        break;
      ++I;
    }
    if (I + 1 < Tokens.size() && Tokens[I + 1].is(TokenKind::Arrow)) {
      SourceLocation Loc = cur().Loc;
      skipBalanced(TokenKind::LParen, TokenKind::RParen);
      advance(); // '->'
      if (at(TokenKind::LBrace))
        skipBalanced(TokenKind::LBrace, TokenKind::RBrace);
      else
        parseAssignment();
      return Ctx.create<NameExpr>(Loc, "$lambda");
    }
  }

  Expr *Lhs = parseConditional();
  AssignOp Op;
  switch (cur().Kind) {
  case TokenKind::Assign:
    Op = AssignOp::Assign;
    break;
  case TokenKind::PlusAssign:
    Op = AssignOp::AddAssign;
    break;
  case TokenKind::MinusAssign:
    Op = AssignOp::SubAssign;
    break;
  case TokenKind::StarAssign:
  case TokenKind::SlashAssign:
    Op = AssignOp::Assign; // value becomes non-constant either way
    break;
  default:
    return Lhs;
  }
  SourceLocation Loc = advance().Loc;
  Expr *Rhs = at(TokenKind::LBrace) ? parseArrayInit() : parseAssignment();
  return Ctx.create<AssignExpr>(Loc, Op, Lhs, Rhs);
}

Expr *Parser::parseConditional() {
  Expr *Cond = parseBinary(0);
  if (!at(TokenKind::Question))
    return Cond;
  SourceLocation Loc = advance().Loc;
  Expr *TrueExpr = parseAssignment();
  expect(TokenKind::Colon, "in conditional expression");
  Expr *FalseExpr = parseAssignment();
  return Ctx.create<ConditionalExpr>(Loc, Cond, TrueExpr, FalseExpr);
}

namespace {
/// Binary operator precedence; higher binds tighter. Returns -1 for
/// non-binary tokens.
int binaryPrec(TokenKind Kind) {
  switch (Kind) {
  case TokenKind::PipePipe:
    return 1;
  case TokenKind::AmpAmp:
    return 2;
  case TokenKind::Pipe:
    return 3;
  case TokenKind::Caret:
    return 4;
  case TokenKind::Amp:
    return 5;
  case TokenKind::EqualEqual:
  case TokenKind::NotEqual:
    return 6;
  case TokenKind::Less:
  case TokenKind::Greater:
  case TokenKind::LessEqual:
  case TokenKind::GreaterEqual:
  case TokenKind::KwInstanceof:
    return 7;
  case TokenKind::Shl:
  case TokenKind::Shr:
    return 8;
  case TokenKind::Plus:
  case TokenKind::Minus:
    return 9;
  case TokenKind::Star:
  case TokenKind::Slash:
  case TokenKind::Percent:
    return 10;
  default:
    return -1;
  }
}

BinaryOp binaryOpFor(TokenKind Kind) {
  switch (Kind) {
  case TokenKind::PipePipe:
    return BinaryOp::Or;
  case TokenKind::AmpAmp:
    return BinaryOp::And;
  case TokenKind::Pipe:
    return BinaryOp::BitOr;
  case TokenKind::Caret:
    return BinaryOp::BitXor;
  case TokenKind::Amp:
    return BinaryOp::BitAnd;
  case TokenKind::EqualEqual:
    return BinaryOp::Eq;
  case TokenKind::NotEqual:
    return BinaryOp::Ne;
  case TokenKind::Less:
    return BinaryOp::Lt;
  case TokenKind::Greater:
    return BinaryOp::Gt;
  case TokenKind::LessEqual:
    return BinaryOp::Le;
  case TokenKind::GreaterEqual:
    return BinaryOp::Ge;
  case TokenKind::Shl:
    return BinaryOp::Shl;
  case TokenKind::Shr:
    return BinaryOp::Shr;
  case TokenKind::Plus:
    return BinaryOp::Add;
  case TokenKind::Minus:
    return BinaryOp::Sub;
  case TokenKind::Star:
    return BinaryOp::Mul;
  case TokenKind::Slash:
    return BinaryOp::Div;
  case TokenKind::Percent:
    return BinaryOp::Rem;
  default:
    assert(false && "not a binary operator token");
    return BinaryOp::Add;
  }
}
} // namespace

Expr *Parser::parseBinary(int MinPrec) {
  Expr *Lhs = parseUnary();
  while (true) {
    int Prec = binaryPrec(cur().Kind);
    if (Prec < MinPrec || Prec == -1)
      return Lhs;
    if (at(TokenKind::KwInstanceof)) {
      SourceLocation Loc = advance().Loc;
      TypeRef Type = parseType();
      Lhs = Ctx.create<InstanceofExpr>(Loc, Lhs, std::move(Type));
      continue;
    }
    TokenKind OpTok = cur().Kind;
    SourceLocation Loc = advance().Loc;
    Expr *Rhs = parseBinary(Prec + 1);
    Lhs = Ctx.create<BinaryExpr>(Loc, binaryOpFor(OpTok), Lhs, Rhs);
  }
}

bool Parser::isCastStart() const {
  if (!at(TokenKind::LParen))
    return false;
  std::size_t After = scanType(Index + 1);
  if (After == 0 || After >= Tokens.size())
    return false;
  if (!Tokens[After].is(TokenKind::RParen))
    return false;
  // Primitive and array casts are unambiguous. For `(Name) x` require the
  // next token to plausibly begin an operand, ruling out `(a) + b`.
  const Token &TypeTok = Tokens[Index + 1];
  bool Primitive = isPrimitiveTypeKeyword(TypeTok.Kind);
  bool Array = Tokens[After - 1].is(TokenKind::RBracket);
  if (Primitive || Array)
    return true;
  const Token &Next = Tokens[std::min(After + 1, Tokens.size() - 1)];
  switch (Next.Kind) {
  case TokenKind::Identifier:
  case TokenKind::IntLiteral:
  case TokenKind::LongLiteral:
  case TokenKind::StringLiteral:
  case TokenKind::CharLiteral:
  case TokenKind::LParen:
  case TokenKind::Not:
  case TokenKind::Tilde:
  case TokenKind::KwNew:
  case TokenKind::KwThis:
    return true;
  default:
    return false;
  }
}

Expr *Parser::parseUnary() {
  DepthGuard Guard(*this);
  support::throwIfFault(support::FaultSite::Parser, Index);
  SourceLocation Loc = cur().Loc;
  switch (cur().Kind) {
  case TokenKind::Minus:
    advance();
    return Ctx.create<UnaryExpr>(Loc, UnaryOp::Neg, parseUnary());
  case TokenKind::Plus:
    advance();
    return parseUnary();
  case TokenKind::Not:
    advance();
    return Ctx.create<UnaryExpr>(Loc, UnaryOp::Not, parseUnary());
  case TokenKind::Tilde:
    advance();
    return Ctx.create<UnaryExpr>(Loc, UnaryOp::BitNot, parseUnary());
  case TokenKind::PlusPlus:
    advance();
    return Ctx.create<UnaryExpr>(Loc, UnaryOp::PreInc, parseUnary());
  case TokenKind::MinusMinus:
    advance();
    return Ctx.create<UnaryExpr>(Loc, UnaryOp::PreDec, parseUnary());
  case TokenKind::LParen:
    if (isCastStart()) {
      advance(); // '('
      TypeRef Type = parseType();
      expect(TokenKind::RParen, "after cast type");
      Expr *Operand = parseUnary();
      return Ctx.create<CastExpr>(Loc, std::move(Type), Operand);
    }
    break;
  default:
    break;
  }
  return parsePostfix(parsePrimary());
}

Expr *Parser::parsePostfix(Expr *Base) {
  while (true) {
    SourceLocation Loc = cur().Loc;
    if (at(TokenKind::Dot)) {
      advance();
      if (!at(TokenKind::Identifier) && !at(TokenKind::KwClass) &&
          !at(TokenKind::KwThis)) {
        Diags.error(cur().Loc, "expected member name after '.'");
        return Base;
      }
      std::string Name(advance().Text);
      if (at(TokenKind::Less) && scanType(Index) != 0) {
        // Explicit generic method call `obj.<T>method(...)` — unusual;
        // just drop the type arguments.
        skipGenericArgs();
      }
      if (at(TokenKind::LParen)) {
        std::vector<Expr *> Args = parseArgList();
        Base = Ctx.create<MethodCallExpr>(Loc, Base, std::move(Name),
                                          std::move(Args));
      } else {
        Base = Ctx.create<FieldAccessExpr>(Loc, Base, std::move(Name));
      }
      continue;
    }
    if (at(TokenKind::LBracket)) {
      advance();
      Expr *Idx = parseExpr();
      expect(TokenKind::RBracket, "after array index");
      Base = Ctx.create<ArrayAccessExpr>(Loc, Base, Idx);
      continue;
    }
    if (at(TokenKind::ColonColon)) {
      // Method reference `Type::method` / `obj::method` / `Type::new` —
      // opaque to the analysis, like lambdas.
      advance();
      if (at(TokenKind::Identifier) || at(TokenKind::KwNew))
        advance();
      Base = Ctx.create<NameExpr>(Loc, "$methodref");
      continue;
    }
    if (at(TokenKind::PlusPlus)) {
      advance();
      Base = Ctx.create<UnaryExpr>(Loc, UnaryOp::PreInc, Base);
      continue;
    }
    if (at(TokenKind::MinusMinus)) {
      advance();
      Base = Ctx.create<UnaryExpr>(Loc, UnaryOp::PreDec, Base);
      continue;
    }
    return Base;
  }
}

std::vector<Expr *> Parser::parseArgList() {
  expect(TokenKind::LParen, "to open argument list");
  std::vector<Expr *> Args;
  if (!at(TokenKind::RParen)) {
    do {
      Args.push_back(parseExpr());
    } while (accept(TokenKind::Comma));
  }
  expect(TokenKind::RParen, "to close argument list");
  return Args;
}

Expr *Parser::parseNew() {
  SourceLocation Loc = advance().Loc; // 'new'
  TypeRef Type;
  Type.Loc = cur().Loc;
  if (isPrimitiveTypeKeyword(cur().Kind)) {
    Type.Name = advance().Text;
  } else if (at(TokenKind::Identifier)) {
    Type.Name = parseQualifiedName();
    if (at(TokenKind::Less))
      skipGenericArgs();
  } else {
    Diags.error(cur().Loc, "expected type after 'new'");
    return makeErrorExpr(Loc);
  }

  if (at(TokenKind::LBracket)) {
    // Array creation.
    std::vector<Expr *> Dims;
    unsigned EmptyDims = 0;
    while (at(TokenKind::LBracket)) {
      advance();
      if (at(TokenKind::RBracket)) {
        ++EmptyDims;
        advance();
      } else {
        Dims.push_back(parseExpr());
        expect(TokenKind::RBracket, "after array dimension");
      }
    }
    Type.ArrayDims = static_cast<unsigned>(Dims.size()) + EmptyDims;
    Expr *Init = nullptr;
    if (at(TokenKind::LBrace))
      Init = parseArrayInit();
    return Ctx.create<NewArrayExpr>(Loc, std::move(Type), std::move(Dims),
                                    Init);
  }

  std::vector<Expr *> Args = parseArgList();
  auto *New = Ctx.create<NewObjectExpr>(Loc, std::move(Type), std::move(Args));
  // Anonymous class body — parse and discard its members; the allocation
  // site itself is what the analysis tracks.
  if (at(TokenKind::LBrace))
    skipBalanced(TokenKind::LBrace, TokenKind::RBrace);
  return New;
}

Expr *Parser::parseArrayInit() {
  SourceLocation Loc = cur().Loc;
  expect(TokenKind::LBrace, "to open array initializer");
  std::vector<Expr *> Elements;
  if (!at(TokenKind::RBrace)) {
    do {
      if (at(TokenKind::RBrace))
        break; // trailing comma
      Elements.push_back(at(TokenKind::LBrace) ? parseArrayInit()
                                               : parseExpr());
    } while (accept(TokenKind::Comma));
  }
  expect(TokenKind::RBrace, "to close array initializer");
  return Ctx.create<ArrayInitExpr>(Loc, std::move(Elements));
}

Expr *Parser::parsePrimary() {
  SourceLocation Loc = cur().Loc;
  switch (cur().Kind) {
  case TokenKind::IntLiteral: {
    // strtoll needs NUL termination, so copy the spelling first (the AST
    // keeps the copy anyway).
    std::string Spelling(advance().Text);
    return Ctx.create<IntLiteralExpr>(
        Loc, std::strtoll(Spelling.c_str(), nullptr, 0), std::move(Spelling));
  }
  case TokenKind::LongLiteral: {
    std::string Spelling(advance().Text);
    return Ctx.create<LongLiteralExpr>(
        Loc, std::strtoll(Spelling.c_str(), nullptr, 0), std::move(Spelling));
  }
  case TokenKind::StringLiteral:
    return Ctx.create<StringLiteralExpr>(Loc, std::string(advance().Text));
  case TokenKind::CharLiteral: {
    Token T = advance();
    return Ctx.create<CharLiteralExpr>(Loc, T.Text.empty() ? '\0' : T.Text[0]);
  }
  case TokenKind::KwTrue:
    advance();
    return Ctx.create<BoolLiteralExpr>(Loc, true);
  case TokenKind::KwFalse:
    advance();
    return Ctx.create<BoolLiteralExpr>(Loc, false);
  case TokenKind::KwNull:
    advance();
    return Ctx.create<NullLiteralExpr>(Loc);
  case TokenKind::KwThis: {
    advance();
    if (at(TokenKind::LParen)) {
      // `this(...)` constructor delegation — model as a call.
      std::vector<Expr *> Args = parseArgList();
      return Ctx.create<MethodCallExpr>(Loc, nullptr, "this",
                                        std::move(Args));
    }
    return Ctx.create<ThisExpr>(Loc);
  }
  case TokenKind::KwSuper: {
    advance();
    if (at(TokenKind::LParen)) {
      std::vector<Expr *> Args = parseArgList();
      return Ctx.create<MethodCallExpr>(Loc, nullptr, "super",
                                        std::move(Args));
    }
    // `super.method(...)` / `super.field` — treat `super` as `this`.
    return Ctx.create<ThisExpr>(Loc);
  }
  case TokenKind::KwNew:
    return parseNew();
  case TokenKind::Identifier: {
    std::string Name(advance().Text);
    if (at(TokenKind::LParen)) {
      std::vector<Expr *> Args = parseArgList();
      return Ctx.create<MethodCallExpr>(Loc, nullptr, std::move(Name),
                                        std::move(Args));
    }
    return Ctx.create<NameExpr>(Loc, std::move(Name));
  }
  case TokenKind::LParen: {
    advance();
    Expr *Inner = parseExpr();
    expect(TokenKind::RParen, "to close parenthesized expression");
    return Inner;
  }
  case TokenKind::KwVoid:
  case TokenKind::KwInt:
  case TokenKind::KwByte:
  case TokenKind::KwChar:
  case TokenKind::KwLong:
  case TokenKind::KwBoolean:
  case TokenKind::KwShort:
  case TokenKind::KwFloat:
  case TokenKind::KwDouble: {
    // `int.class`, `byte[].class` etc.
    TypeRef Type = parseType();
    if (at(TokenKind::Dot) && peek().is(TokenKind::KwClass)) {
      advance();
      advance();
    }
    return Ctx.create<NameExpr>(Loc, Type.str());
  }
  default:
    Diags.error(Loc, "expected expression, found " +
                         std::string(tokenKindName(cur().Kind)));
    advance();
    return makeErrorExpr(Loc);
  }
}

CompilationUnit *diffcode::java::parseJava(std::string_view Source,
                                           AstContext &Ctx,
                                           DiagnosticsEngine &Diags) {
  return parseJava(Source, Ctx, Diags, ParseLimits());
}

CompilationUnit *diffcode::java::parseJava(std::string_view Source,
                                           AstContext &Ctx,
                                           DiagnosticsEngine &Diags,
                                           const ParseLimits &Limits) {
  Lexer Lex(Source, Diags);
  Parser P(Lex.lexAll(), Ctx, Diags, Limits);
  return P.parseCompilationUnit();
}
