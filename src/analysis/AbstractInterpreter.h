//===- analysis/AbstractInterpreter.h - Forward AST abstract interpreter ---===//
//
// Part of the DiffCode project, a reproduction of "Inferring Crypto API
// Rules from Code Changes" (PLDI'18).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The lightweight AST-based program analyzer of Section 5.1. Given a
/// (partial) compilation unit it:
///
///   1. finds all allocation sites of API classes,
///   2. discovers entry methods (methods with no in-unit callers),
///   3. performs a forward abstract execution of each entry, forking at
///      every branch point, tracking abstract values of locals and fields,
///   4. records, per execution, the abstract usages AUses(o) of every
///      abstract object: its creating constructor/factory call and every
///      API call that receives it.
///
/// Design choices the paper leaves open (documented in DESIGN.md): loops
/// run 0 or 1 abstract iterations; calls inlined into an expression do not
/// fork — their internal branches join; fork counts and inline depth are
/// capped so adversarial inputs stay near-linear.
///
//===----------------------------------------------------------------------===//

#ifndef DIFFCODE_ANALYSIS_ABSTRACTINTERPRETER_H
#define DIFFCODE_ANALYSIS_ABSTRACTINTERPRETER_H

#include "analysis/AbstractObject.h"
#include "analysis/UsageEvent.h"
#include "apimodel/CryptoApiModel.h"
#include "javaast/Ast.h"

#include <cstdint>
#include <vector>

namespace diffcode {
namespace analysis {

/// Knobs for the interpreter; the ablation benchmarks sweep Abstraction.
struct AnalysisOptions {
  /// Granularity of the base-type abstraction (Figure 3 is Paper).
  enum class BaseAbstraction {
    Paper,            ///< Figure 3: ints/strings kept, bytes collapsed.
    KeepAllConstants, ///< Finer: byte arrays also keep their elements.
    AllTop,           ///< Coarser: every base value abstracts to top.
  };
  BaseAbstraction Abstraction = BaseAbstraction::Paper;

  /// Cap on forked executions per entry method.
  unsigned MaxStatesPerEntry = 24;
  /// Inlining depth for program-defined methods.
  unsigned MaxInlineDepth = 4;
  /// Statement-evaluation budget per entry (guards pathological inputs).
  unsigned Fuel = 50000;
  /// Abstract-object budget per unit (0 = unlimited). Past the cap, new
  /// allocation sites degrade to untracked top objects — the analysis
  /// still terminates deterministically, and AnalysisStats flags the hit.
  unsigned MaxObjects = 32768;
};

/// Resource consumption of one analyze() call. Lets the pipeline tell a
/// genuinely crypto-free file from one whose analysis was truncated by a
/// budget, and feeds the corpus-health "worst offenders" table.
struct AnalysisStats {
  /// Statement/expression evaluation steps consumed across all entries.
  std::uint64_t StepsUsed = 0;
  /// Entry methods discovered and executed.
  std::uint64_t Entries = 0;
  /// Allocation-site objects tracked at the end of the run.
  std::uint64_t ObjectsTracked = 0;
  /// Some entry ran out of Fuel (its exploration was truncated).
  bool FuelExhausted = false;
  /// The MaxObjects cap degraded at least one allocation site.
  bool ObjectBudgetHit = false;

  bool anyBudgetHit() const { return FuelExhausted || ObjectBudgetHit; }
};

/// Output of analyzing one program version.
struct AnalysisResult {
  ObjectTable Objects;
  /// One usage log per abstract execution (across all entry methods).
  std::vector<UsageLog> Executions;
  /// Resource consumption and budget flags for this analysis.
  AnalysisStats Stats;

  /// Union of all logs — convenient for whole-program rule checking
  /// (CryptoChecker matches against any execution).
  UsageLog mergedLog() const;
};

/// The analyzer. Stateless across analyze() calls except for options.
class AbstractInterpreter {
public:
  explicit AbstractInterpreter(const apimodel::CryptoApiModel &Api,
                               AnalysisOptions Opts = AnalysisOptions());

  /// Analyzes one compilation unit.
  AnalysisResult analyze(const java::CompilationUnit *Unit);

private:
  const apimodel::CryptoApiModel &Api;
  AnalysisOptions Opts;
};

} // namespace analysis
} // namespace diffcode

#endif // DIFFCODE_ANALYSIS_ABSTRACTINTERPRETER_H
