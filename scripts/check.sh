#!/usr/bin/env bash
# Tier-1 verification: configure, build, and run the test suite.
# Extra arguments pass through to ctest, e.g.
#   scripts/check.sh -L tier1
#   scripts/check.sh -L differential
#
# --asan (opt-in): build into build-asan/ with AddressSanitizer +
# UndefinedBehaviorSanitizer, aborting on the first report. The regular
# build/ directory is untouched, so a sanitizer sweep never invalidates
# the incremental tier-1 build.
#   scripts/check.sh --asan -L tier1
#
# --bench-sharding (opt-in): after the test suite, run the sharded
# clustering sweep at paper scale (bench/micro_sharding). Self-verifying
# — non-zero exit on a determinism or memory-budget violation — and
# leaves BENCH_sharding.json in the build directory.
#   scripts/check.sh --bench-sharding -L tier1
#
# --bench-interning (opt-in): after the test suite, run the interned
# data-model sweep (bench/micro_interning) at n in {1k, 5k, 10k}.
# Self-verifying — non-zero exit if the interned model saves less than
# 2x resident bytes per change or the warmed cache is slower than the
# string-space metric — and leaves BENCH_interning.json in the build
# directory.
#   scripts/check.sh --bench-interning -L tier1
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR=build
CMAKE_ARGS=()
CTEST_ARGS=()
BENCH_SHARDING=0
BENCH_INTERNING=0
for arg in "$@"; do
  if [[ "$arg" == "--asan" ]]; then
    BUILD_DIR=build-asan
    CMAKE_ARGS+=(
      -DCMAKE_BUILD_TYPE=RelWithDebInfo
      "-DCMAKE_CXX_FLAGS=-fsanitize=address,undefined -fno-sanitize-recover=all"
    )
  elif [[ "$arg" == "--bench-sharding" ]]; then
    BENCH_SHARDING=1
  elif [[ "$arg" == "--bench-interning" ]]; then
    BENCH_INTERNING=1
  else
    CTEST_ARGS+=("$arg")
  fi
done

cmake -B "$BUILD_DIR" -S . ${CMAKE_ARGS[@]+"${CMAKE_ARGS[@]}"}
cmake --build "$BUILD_DIR" -j"$(nproc)"
cd "$BUILD_DIR"
ctest --output-on-failure -j"$(nproc)" ${CTEST_ARGS[@]+"${CTEST_ARGS[@]}"}

if [[ "$BENCH_SHARDING" == "1" ]]; then
  echo "== sharded clustering sweep (bench/micro_sharding) =="
  ./bench/micro_sharding 10000 42 BENCH_sharding.json
fi

if [[ "$BENCH_INTERNING" == "1" ]]; then
  echo "== interned data model sweep (bench/micro_interning) =="
  ./bench/micro_interning 10000 42 BENCH_interning.json
fi
