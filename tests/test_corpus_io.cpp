//===- tests/test_corpus_io.cpp - Corpus persistence tests -----------------===//

#include "corpus/CorpusIO.h"

#include "corpus/CorpusGenerator.h"
#include "corpus/Miner.h"

#include <gtest/gtest.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sys/stat.h>
#include <thread>

namespace fs = std::filesystem;

using namespace diffcode;
using namespace diffcode::corpus;

namespace {

class CorpusIOTest : public ::testing::Test {
protected:
  void SetUp() override {
    Root = fs::temp_directory_path() /
           ("diffcode-corpusio-" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "-" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    fs::remove_all(Root);
  }
  void TearDown() override { fs::remove_all(Root); }

  fs::path Root;
};

Corpus smallCorpus(std::uint64_t Seed = 13) {
  CorpusOptions Opts;
  Opts.Seed = Seed;
  Opts.NumProjects = 4;
  Opts.MinCommits = 3;
  Opts.MaxCommits = 6;
  return CorpusGenerator(Opts).generate();
}

} // namespace

TEST_F(CorpusIOTest, RoundTripPreservesEverything) {
  Corpus Original = smallCorpus();
  std::string Error;
  ASSERT_TRUE(writeCorpus(Original, Root.string(), &Error)) << Error;

  std::optional<Corpus> Loaded = readCorpus(Root.string(), &Error);
  ASSERT_TRUE(Loaded.has_value()) << Error;
  ASSERT_EQ(Loaded->Projects.size(), Original.Projects.size());

  // readCorpus orders projects lexicographically; compare by name.
  for (const Project &Want : Original.Projects) {
    const Project *Got = nullptr;
    for (const Project &P : Loaded->Projects)
      if (P.Name == Want.Name)
        Got = &P;
    ASSERT_NE(Got, nullptr) << Want.Name;
    EXPECT_EQ(Got->Meta.IsAndroid, Want.Meta.IsAndroid);
    EXPECT_EQ(Got->Meta.MinSdkVersion, Want.Meta.MinSdkVersion);
    EXPECT_EQ(Got->Meta.HasLinuxPrngFix, Want.Meta.HasLinuxPrngFix);
    ASSERT_EQ(Got->Files.size(), Want.Files.size());
    ASSERT_EQ(Got->History.size(), Want.History.size());
    for (std::size_t I = 0; I < Want.History.size(); ++I) {
      EXPECT_EQ(Got->History[I].Kind, Want.History[I].Kind);
      EXPECT_EQ(Got->History[I].FileName, Want.History[I].FileName);
      EXPECT_EQ(Got->History[I].OldCode, Want.History[I].OldCode);
      EXPECT_EQ(Got->History[I].NewCode, Want.History[I].NewCode);
      EXPECT_EQ(Got->History[I].CommitIndex, Want.History[I].CommitIndex);
    }
    for (const ProjectFile &File : Want.Files) {
      bool Found = false;
      for (const ProjectFile &Candidate : Got->Files)
        Found = Found || (Candidate.Name == File.Name &&
                          Candidate.Code == File.Code);
      EXPECT_TRUE(Found) << File.Name;
    }
  }
}

TEST_F(CorpusIOTest, ReadMissingDirectoryFails) {
  std::string Error;
  EXPECT_FALSE(readCorpus((Root / "nope").string(), &Error).has_value());
  EXPECT_FALSE(Error.empty());
}

TEST_F(CorpusIOTest, EmptyCorpusRoundTrips) {
  Corpus Empty;
  std::string Error;
  ASSERT_TRUE(writeCorpus(Empty, Root.string(), &Error)) << Error;
  std::optional<Corpus> Loaded = readCorpus(Root.string(), &Error);
  ASSERT_TRUE(Loaded.has_value());
  EXPECT_TRUE(Loaded->Projects.empty());
}

TEST_F(CorpusIOTest, HandLaidOutProjectLoads) {
  // A minimal hand-written layout (what a git exporter would produce).
  fs::create_directories(Root / "myproj" / "commits" / "c0001");
  fs::create_directories(Root / "myproj" / "head");
  {
    std::ofstream(Root / "myproj" / "project.meta")
        << "isAndroid=true\nminSdkVersion=21\nhasLinuxPrngFix=false\n";
    std::ofstream(Root / "myproj" / "head" / "A.java")
        << "class A { }";
    std::ofstream(Root / "myproj" / "commits" / "c0001" / "old.java")
        << "class A { Cipher c; }";
    std::ofstream(Root / "myproj" / "commits" / "c0001" / "new.java")
        << "class A { }";
    std::ofstream(Root / "myproj" / "commits" / "c0001" / "file.txt")
        << "A.java\n";
  }
  std::string Error;
  std::optional<Corpus> Loaded = readCorpus(Root.string(), &Error);
  ASSERT_TRUE(Loaded.has_value()) << Error;
  ASSERT_EQ(Loaded->Projects.size(), 1u);
  const Project &P = Loaded->Projects[0];
  EXPECT_EQ(P.Name, "myproj");
  EXPECT_TRUE(P.Meta.IsAndroid);
  EXPECT_EQ(P.Meta.MinSdkVersion, 21);
  ASSERT_EQ(P.History.size(), 1u);
  EXPECT_EQ(P.History[0].CommitIndex, 1u);
  EXPECT_EQ(P.History[0].FileName, "A.java");
  EXPECT_TRUE(P.History[0].Kind.empty()); // no kind.txt -> mined change
  EXPECT_NE(P.History[0].OldCode.find("Cipher"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// readFileContents: the mmap fast path and its chunked fallback
//===----------------------------------------------------------------------===//

TEST_F(CorpusIOTest, ReadFileContentsExactBytesAroundPageBoundaries) {
  fs::create_directories(Root);
  // Sizes straddling the page size catch off-by-one mapping bugs; the
  // NUL byte catches any string-based truncation.
  for (std::size_t Size : {std::size_t(0), std::size_t(1), std::size_t(4095),
                           std::size_t(4096), std::size_t(4097),
                           std::size_t(70000)}) {
    std::string Want(Size, '\0');
    for (std::size_t I = 0; I < Size; ++I)
      Want[I] = static_cast<char>(I % 251); // includes embedded NULs
    fs::path P = Root / ("f" + std::to_string(Size));
    std::ofstream(P, std::ios::binary).write(Want.data(),
                                             static_cast<std::streamsize>(Size));
    std::optional<std::string> Got = readFileContents(P.string());
    ASSERT_TRUE(Got.has_value()) << Size;
    EXPECT_EQ(*Got, Want) << Size;
  }
}

TEST_F(CorpusIOTest, ReadFileContentsMissingFileIsNullopt) {
  EXPECT_FALSE(readFileContents((Root / "absent").string()).has_value());
}

// The short-read regression (the seed double-buffered through stream
// internals and a FIFO delivering data in dribs truncated at the first
// partial read): a pipe that yields its payload in small flushed chunks
// must still be read to EOF, byte for byte.
TEST_F(CorpusIOTest, ReadFileContentsFifoToleratesShortReads) {
  fs::create_directories(Root);
  fs::path FifoPath = Root / "stream.fifo";
  ASSERT_EQ(::mkfifo(FifoPath.c_str(), 0600), 0) << strerror(errno);

  std::string Want;
  for (int Chunk = 0; Chunk < 64; ++Chunk)
    Want.append(997, static_cast<char>('a' + Chunk % 26));

  std::thread Writer([&] {
    // Opening the write end blocks until readFileContents opens the
    // read end; flushing per chunk forces the reader into short reads.
    std::ofstream Out(FifoPath, std::ios::binary);
    for (std::size_t Off = 0; Off < Want.size(); Off += 997) {
      Out.write(Want.data() + Off, 997);
      Out.flush();
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });
  std::optional<std::string> Got = readFileContents(FifoPath.string());
  Writer.join();
  ASSERT_TRUE(Got.has_value());
  EXPECT_EQ(Got->size(), Want.size());
  EXPECT_EQ(*Got, Want);
}

TEST_F(CorpusIOTest, LoadedCorpusMinesIdentically) {
  Corpus Original = smallCorpus(29);
  std::string Error;
  ASSERT_TRUE(writeCorpus(Original, Root.string(), &Error)) << Error;
  std::optional<Corpus> Loaded = readCorpus(Root.string(), &Error);
  ASSERT_TRUE(Loaded.has_value());

  Miner M(apimodel::CryptoApiModel::javaCryptoApi());
  EXPECT_EQ(M.mine(Original).size(), M.mine(*Loaded).size());
}
