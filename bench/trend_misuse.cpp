//===- bench/trend_misuse.cpp - The paper's premise, measured over time ----===//
//
// Part of the DiffCode project, a reproduction of "Inferring Crypto API
// Rules from Code Changes" (PLDI'18).
//
//===----------------------------------------------------------------------===//
//
// Section 1's premise: "code changes that fix security problems are more
// common than changes that introduce them" — which implies the misuse
// rate *decays* along commit history even though most code starts
// insecure. This harness measures that decay directly: for each history
// decile, the fraction of file states violating at least one R-rule.
//
// Shape target: a monotone (noisily) decreasing curve whose start is high
// (most initial implementations misuse the API) — the reason diff mining
// beats "Big Code" majority mining on crypto APIs.
//
//===----------------------------------------------------------------------===//

#include "bench_common.h"

#include "rules/BuiltinRules.h"
#include "rules/CryptoChecker.h"

#include <cstdio>
#include <map>

using namespace diffcode;
using namespace diffcode::rules;

int main(int argc, char **argv) {
  std::printf("== Premise check: misuse rate along commit history ==\n\n");
  corpus::CorpusOptions Opts = bench::standardCorpus(argc, argv);
  Opts.NumProjects = std::min(Opts.NumProjects, 60u); // states x commits
  std::printf("corpus: %u synthetic projects (seed %llu)\n\n",
              Opts.NumProjects, static_cast<unsigned long long>(Opts.Seed));
  corpus::Corpus C = corpus::CorpusGenerator(Opts).generate();

  const apimodel::CryptoApiModel &Api =
      apimodel::CryptoApiModel::javaCryptoApi();
  core::DiffCode System(Api);
  CryptoChecker Checker;

  // Decile -> (violating file states, total file states).
  std::map<unsigned, std::pair<unsigned, unsigned>> Buckets;

  for (const corpus::Project &P : C.Projects) {
    if (P.History.empty())
      continue;
    ProjectMetadata Meta = P.Meta;
    for (const corpus::CodeChange &Change : P.History) {
      unsigned Decile = static_cast<unsigned>(
          10ull * Change.CommitIndex / P.History.size());
      analysis::AnalysisResult Result = System.analyzeSourceChecked(Change.NewCode).Result;
      UnitFacts Facts = UnitFacts::from(Result);
      bool Violates = Checker.checkProject({Facts}, Meta).anyMatch();
      auto &[Bad, Total] = Buckets[Decile];
      Bad += Violates;
      ++Total;
    }
  }

  std::printf("history decile | violating file states | misuse rate\n");
  std::printf("---------------------------------------------------\n");
  double First = -1.0, Last = -1.0;
  for (const auto &[Decile, Counts] : Buckets) {
    double Rate =
        Counts.second ? 100.0 * Counts.first / Counts.second : 0.0;
    if (First < 0)
      First = Rate;
    Last = Rate;
    std::printf("      %2u0%%     |       %4u / %-4u      |  %5.1f%%  %s\n",
                Decile, Counts.first, Counts.second, Rate,
                std::string(static_cast<std::size_t>(Rate / 2), '#').c_str());
  }
  std::printf("\nshape check: misuse decays from %.1f%% to %.1f%% across the "
              "history (%s)\n",
              First, Last,
              Last < First ? "DECREASING, as the premise predicts"
                           : "not decreasing");
  std::printf("reading: fixes outnumber regressions, so even though most "
              "initial\nimplementations misuse the API, later states are "
              "cleaner — the signal\nDiffCode mines.\n");
  return 0;
}
