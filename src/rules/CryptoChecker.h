//===- rules/CryptoChecker.h - The CryptoChecker tool (Section 6.4) --------===//
//
// Part of the DiffCode project, a reproduction of "Inferring Crypto API
// Rules from Code Changes" (PLDI'18).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// CryptoChecker evaluates a rule set against whole projects (sets of
/// analyzed compilation units) and reports, per rule, applicability and
/// matches plus the concrete violating allocation sites — the data behind
/// Figure 10.
///
/// The report model is interned: Violation and RuleVerdict carry 32-bit
/// support::LabelId handles into a ScanSymbols table instead of owning
/// strings, so a corpus-scale scan (scan/Scanner fans the checker's
/// semantics out over thousands of projects) shares one copy of every
/// rule id, type name, and site label. The determinism contract mirrors
/// support::Interner's: no output may depend on id *values* (they are
/// interleaving-dependent under concurrent interning), only on id
/// equality and the resolved text.
///
//===----------------------------------------------------------------------===//

#ifndef DIFFCODE_RULES_CRYPTOCHECKER_H
#define DIFFCODE_RULES_CRYPTOCHECKER_H

#include "rules/Rule.h"
#include "support/Interner.h"

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <vector>

namespace diffcode {
namespace rules {

/// Append-only table of the strings a scan resolves through: rule ids,
/// type names, allocation-site labels. Thread-safe like the corpus
/// interner (scan workers intern unit facts concurrently); references
/// returned by text() are stable forever (deque-backed storage).
class ScanSymbols {
public:
  /// Sentinel for "no symbol" (e.g. a CallPattern matching any class).
  static constexpr support::LabelId None = 0xffffffffu;

  support::LabelId intern(std::string_view Text);

  /// Lookup without interning: None when \p Text was never interned.
  /// Useful for matching against a table a pattern may be absent from.
  support::LabelId find(std::string_view Text) const;

  const std::string &text(support::LabelId Id) const;

  std::size_t size() const;

private:
  mutable std::shared_mutex Mutex;
  std::deque<std::string> Texts; ///< Stable storage, indexed by id.
  std::map<std::string, support::LabelId, std::less<>> Index;
};

/// One concrete violation: which rule, where. All symbols resolve
/// through the report's ScanSymbols.
struct Violation {
  support::LabelId Rule = ScanSymbols::None;
  support::LabelId Type = ScanSymbols::None;
  support::LabelId Site = ScanSymbols::None; ///< "l<line>" label.
  unsigned UnitIndex = 0;

  friend bool operator==(const Violation &, const Violation &) = default;
};

/// Per-rule project verdict.
struct RuleVerdict {
  support::LabelId Rule = ScanSymbols::None;
  bool Applicable = false;
  bool Matched = false;
  /// Violation sites the demand-driven refinement pass suppressed as
  /// merge artifacts (always 0 when refinement is off).
  std::uint32_t Suppressed = 0;
  std::vector<Violation> Violations;
};

/// Whole-project report. Verdict insertion goes through addVerdict so
/// the any-match bit is maintained incrementally instead of rescanning
/// the verdict list on every anyMatch() call.
class ProjectReport {
public:
  void addVerdict(RuleVerdict Verdict) {
    AnyMatch = AnyMatch || Verdict.Matched;
    Verdicts.push_back(std::move(Verdict));
  }

  const std::vector<RuleVerdict> &verdicts() const { return Verdicts; }
  bool anyMatch() const { return AnyMatch; }

  /// Resolves \p Id through the report's symbol table.
  const std::string &text(support::LabelId Id) const;

  /// The table every symbol in this report resolves through, pinned here
  /// so the report stays self-contained even if the checker (or scanner)
  /// that produced it goes away first.
  std::shared_ptr<const ScanSymbols> Symbols;

private:
  std::vector<RuleVerdict> Verdicts;
  bool AnyMatch = false;
};

/// Deduplicates repeated sites within \p Violations in place: the same
/// (type, site, unit) reported by several positive clauses collapses to
/// its first occurrence (order otherwise preserved).
void dedupeViolations(std::vector<Violation> &Violations);

/// The checker: a rule set applied to analyzed projects. This is the
/// straightforward clause-by-clause evaluator; scan/Scanner layers
/// scheduling, caching, and streaming emission on top of the compiled
/// fast path (rules/RuleCompiler.h) and is differentially locked to
/// produce byte-identical reports.
class CryptoChecker {
public:
  /// Uses the full elicited rule set R1-R13 by default.
  CryptoChecker();
  explicit CryptoChecker(std::vector<Rule> Rules);

  const std::vector<Rule> &rules() const { return Rules; }

  /// The symbol table reports produced by this checker resolve through.
  const std::shared_ptr<ScanSymbols> &symbols() const { return Symbols; }

  /// Checks one project (a set of analyzed units plus metadata).
  ProjectReport checkProject(const std::vector<UnitFacts> &Units,
                             const ProjectMetadata &Meta =
                                 ProjectMetadata()) const;

private:
  /// Collects the violating sites of a matched rule (positive clauses
  /// only; negated clauses have no site to report), deduped per site.
  std::vector<Violation>
  collectViolations(const Rule &R, support::LabelId RuleId,
                    const std::vector<UnitFacts> &Units) const;

  std::vector<Rule> Rules;
  std::shared_ptr<ScanSymbols> Symbols;
};

} // namespace rules
} // namespace diffcode

#endif // DIFFCODE_RULES_CRYPTOCHECKER_H
