//===- support/Arena.cpp ---------------------------------------------------===//

#include "support/Arena.h"

#include <new>

using namespace diffcode::support;

namespace {

constexpr std::size_t FirstSlabSize = 4096;
constexpr std::size_t MaxSlabSize = 256 * 1024;

} // namespace

Arena::~Arena() {
  for (const Slab &S : Slabs)
    ::operator delete(S.Mem);
}

void Arena::reset() {
  Requested = 0;
  CurSlab = 0;
  if (Slabs.empty()) {
    Cur = End = nullptr;
    return;
  }
  Cur = Slabs[0].Mem;
  End = Cur + Slabs[0].Size;
}

std::size_t Arena::bytesCapacity() const {
  std::size_t Total = 0;
  for (const Slab &S : Slabs)
    Total += S.Size;
  return Total;
}

void *Arena::allocateSlow(std::size_t Size, std::size_t Align) {
  // Step through retained slabs first (reset() keeps them for reuse), then
  // grow. Slab sizes double up to a cap; a request larger than the next
  // slab gets a dedicated exact-fit slab that participates in reuse like
  // any other.
  while (true) {
    std::size_t NextIdx = Slabs.empty() || Cur == nullptr ? 0 : CurSlab + 1;
    if (NextIdx < Slabs.size()) {
      CurSlab = NextIdx;
      Cur = Slabs[NextIdx].Mem;
      End = Cur + Slabs[NextIdx].Size;
    } else {
      std::size_t SlabSize = FirstSlabSize << (NextIdx < 7 ? NextIdx : 7);
      if (SlabSize > MaxSlabSize)
        SlabSize = MaxSlabSize;
      if (SlabSize < Size + Align)
        SlabSize = Size + Align;
      char *Mem = static_cast<char *>(::operator new(SlabSize));
      Slabs.push_back({Mem, SlabSize});
      CurSlab = NextIdx;
      Cur = Mem;
      End = Mem + SlabSize;
    }
    char *P = alignPtr(Cur, Align);
    if (P + Size <= End) {
      Cur = P + Size;
      Requested += Size;
      return P;
    }
    // A retained slab was too small for this request; try the next one.
  }
}
