//===- bench/fig8_dendrogram.cpp - Reproduces Figure 8 ---------------------===//
//
// Part of the DiffCode project, a reproduction of "Inferring Crypto API
// Rules from Code Changes" (PLDI'18).
//
//===----------------------------------------------------------------------===//
//
// Figure 8: the hierarchical clustering of the Cipher usage changes. The
// paper's figure shows a cluster of three usage changes that all switch
// from AES in (implicit) ECB mode to CBC/GCM with an IvParameterSpec —
// the cluster that identifies rule R7.
//
// Shape targets:
//   * a cluster exists whose members remove an "arg1:AES..." ECB-style
//     getInstance feature and add a feedback-mode transform + IV;
//   * the cluster's auto-suggested rule matches ECB usages (R7's shape).
//
//===----------------------------------------------------------------------===//

#include "bench_common.h"

#include "rules/RuleSuggestion.h"

#include <iostream>

using namespace diffcode;

namespace {

bool removesEcbFeature(const usage::UsageChange &Change) {
  for (const usage::FeaturePath &Path : Change.removedPaths())
    for (const usage::NodeLabel &Label : Path)
      if (Label.K == usage::NodeLabel::Kind::Arg && Label.ValueIsString &&
          (Label.Text == "AES" || Label.Text.rfind("AES/ECB", 0) == 0 ||
           Label.Text == "DES" || Label.Text.rfind("DES/", 0) == 0))
        return true;
  return false;
}

bool addsFeedbackMode(const usage::UsageChange &Change) {
  for (const usage::FeaturePath &Path : Change.addedPaths())
    for (const usage::NodeLabel &Label : Path)
      if (Label.K == usage::NodeLabel::Kind::Arg &&
          (Label.Text.find("/CBC") != std::string::npos ||
           Label.Text.find("/GCM") != std::string::npos ||
           Label.Text.find("/CTR") != std::string::npos ||
           Label.Text == "IvParameterSpec"))
        return true;
  return false;
}

} // namespace

int main(int argc, char **argv) {
  std::printf("== Figure 8: hierarchical clustering of Cipher usage changes "
              "==\n\n");
  bench::MinedCorpus Mined = bench::mineStandardCorpus(argc, argv);

  const apimodel::CryptoApiModel &Api =
      apimodel::CryptoApiModel::javaCryptoApi();
  core::PipelineConfig SysOpts;
  SysOpts.Threads = 0; // all cores; results are order-deterministic
  core::DiffCode System(Api, SysOpts);
  core::CorpusReport Report = System.run(
      {.Changes = Mined.Changes, .TargetClasses = {"Cipher"}});
  const core::ClassReport &Cipher = Report.PerClass.front();
  const std::vector<usage::UsageChange> &Kept = Cipher.Filtered.Kept;
  std::printf("%zu semantic Cipher usage changes after filtering\n\n",
              Kept.size());

  std::printf("dendrogram (complete linkage, usageDist):\n");
  std::printf("%s\n", Cipher.Tree
                          .render([&](std::size_t Item) {
                            std::string Label = Kept[Item].str();
                            if (!Label.empty() && Label.back() == '\n')
                              Label.pop_back();
                            return "[" + Kept[Item].Origin + "]\n" + Label;
                          })
                          .c_str());

  // Find the ECB->feedback-mode cluster (the paper's R7 cluster).
  std::printf("flat clusters at cut %.2f:\n", System.config().Clustering.Cut);
  std::size_t ClusterId = 0;
  for (const std::vector<std::size_t> &Cluster :
       Cipher.Tree.cut(System.config().Clustering.Cut)) {
    std::size_t EcbMembers = 0;
    for (std::size_t Item : Cluster)
      if (removesEcbFeature(Kept[Item]) && addsFeedbackMode(Kept[Item]))
        ++EcbMembers;
    std::printf("  cluster %zu: %zu members (%zu ECB->feedback-mode "
                "fixes)\n",
                ClusterId, Cluster.size(), EcbMembers);
    if (Cluster.size() >= 2) {
      std::vector<usage::UsageChange> Members;
      for (std::size_t Item : Cluster)
        Members.push_back(Kept[Item]);
      if (auto Rule = rules::suggestRuleForCluster(
              Members, "cluster" + std::to_string(ClusterId)))
        std::printf("    -> generalized rule: %s\n",
                    rules::describeRule(*Rule).c_str());
    }
    ++ClusterId;
  }

  // Shape check: an ECB cluster of >= 2 changes exists (paper: 3 usage
  // changes merge into the R7 cluster).
  bool FoundR7Cluster = false;
  for (const std::vector<std::size_t> &Cluster :
       Cipher.Tree.cut(System.config().Clustering.Cut)) {
    std::size_t EcbMembers = 0;
    for (std::size_t Item : Cluster)
      if (removesEcbFeature(Kept[Item]) && addsFeedbackMode(Kept[Item]))
        ++EcbMembers;
    FoundR7Cluster = FoundR7Cluster || EcbMembers >= 2;
  }
  std::printf("\nshape check: ECB-mode fix cluster with >= 2 members: %s "
              "(paper: 3-member cluster identifying R7)\n",
              FoundR7Cluster ? "FOUND" : "not found");
  return 0;
}
