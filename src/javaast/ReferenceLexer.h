//===- javaast/ReferenceLexer.h - Retained seed lexer (oracle) -------------===//
//
// Part of the DiffCode project, a reproduction of "Inferring Crypto API
// Rules from Code Changes" (PLDI'18).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The pre-rewrite per-character lexer, retained verbatim as the
/// differential-testing oracle and the benchmark baseline for the
/// table-driven scanner in Lexer.h. It keeps the original implementation
/// strategy — per-character advance() with inline line/column counters,
/// <cctype> classification, a std::string built for every token, and a
/// hash-map keyword table — and only adapts the output type: spellings
/// are interned into the TokenStream arena so both lexers produce the
/// same Token/TokenStream shape and can be compared byte for byte.
///
/// Do not optimize this file; its value is being the unchanged seed
/// semantics. tests/test_frontend_equivalence.cpp and
/// tests/test_lexer_fuzz.cpp assert the production lexer matches it on
/// every input; bench/micro_lexer.cpp measures the speedup against it.
///
//===----------------------------------------------------------------------===//

#ifndef DIFFCODE_JAVAAST_REFERENCELEXER_H
#define DIFFCODE_JAVAAST_REFERENCELEXER_H

#include "javaast/Diagnostics.h"
#include "javaast/Lexer.h"
#include "javaast/Token.h"

#include <string>
#include <string_view>

namespace diffcode {
namespace java {

/// Single-pass per-character lexer over an in-memory buffer (seed
/// implementation).
class ReferenceLexer {
public:
  ReferenceLexer(std::string_view Buffer, DiagnosticsEngine &Diags);

  /// Lexes and returns the next token; returns EndOfFile forever once the
  /// buffer is exhausted.
  Token next();

  /// Lexes the entire buffer. The trailing EndOfFile token is included.
  TokenStream lexAll();

private:
  char peek(std::size_t Ahead = 0) const;
  char advance();
  bool match(char Expected);
  bool atEnd() const { return Pos >= Buffer.size(); }
  SourceLocation here() const;
  void skipTrivia();

  Token makeToken(TokenKind Kind, SourceLocation Loc, std::string Text);
  Token lexIdentifierOrKeyword(SourceLocation Loc);
  Token lexNumber(SourceLocation Loc);
  Token lexString(SourceLocation Loc);
  Token lexChar(SourceLocation Loc);
  /// Decodes one escape sequence after a backslash; returns the decoded
  /// character (best effort on invalid escapes).
  char lexEscape();

  std::string_view Buffer;
  DiagnosticsEngine &Diags;
  std::size_t Pos = 0;
  std::uint32_t Line = 1;
  std::uint32_t Col = 1;
  TokenStream Stream; ///< Owns the interned spellings.
};

/// The seed keyword table (hash map), kept for the oracle's cost profile
/// and as a second implementation for lookupKeyword equivalence tests.
TokenKind referenceLookupKeyword(std::string_view Spelling);

} // namespace java
} // namespace diffcode

#endif // DIFFCODE_JAVAAST_REFERENCELEXER_H
