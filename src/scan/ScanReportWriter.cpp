//===- scan/ScanReportWriter.cpp -------------------------------------------===//

#include "scan/ScanReportWriter.h"

#include "support/JsonWriter.h"

#include <ostream>
#include <sstream>

using namespace diffcode;
using namespace diffcode::scan;

namespace {

/// One project record. Per-rule objects share the exact shape of
/// core::projectReportToJson so a record reads the same whether it came
/// from the scanner or the batch checker.
std::string recordJson(const ProjectScanRecord &Rec) {
  JsonWriter W;
  W.beginObject();
  W.key("project").value(Rec.Project);
  W.key("status").value(core::changeStatusName(Rec.Status));
  if (Rec.Status != core::ChangeStatus::Ok && !Rec.Detail.empty())
    W.key("detail").value(Rec.Detail);
  W.key("units").value(static_cast<std::uint64_t>(Rec.Units));
  W.key("rules").beginArray();
  for (const rules::RuleVerdict &Verdict : Rec.Report.verdicts()) {
    W.beginObject();
    W.key("id").value(Rec.Report.text(Verdict.Rule));
    W.key("applicable").value(Verdict.Applicable);
    W.key("matched").value(Verdict.Matched);
    if (Verdict.Suppressed > 0)
      W.key("suppressed").value(static_cast<std::uint64_t>(Verdict.Suppressed));
    W.key("violations").beginArray();
    for (const rules::Violation &V : Verdict.Violations) {
      W.beginObject();
      W.key("type").value(Rec.Report.text(V.Type));
      W.key("site").value(Rec.Report.text(V.Site));
      W.key("unit").value(static_cast<std::uint64_t>(V.UnitIndex));
      W.endObject();
    }
    W.endArray();
    W.endObject();
  }
  W.endArray();
  W.key("anyMatch").value(Rec.Report.anyMatch());
  W.endObject();
  return W.take();
}

std::string summaryJson(const ScanReport &Report) {
  JsonWriter W;
  W.beginObject();
  W.key("projects").value(static_cast<std::uint64_t>(Report.Projects.size()));
  W.key("violating")
      .value(static_cast<std::uint64_t>(Report.ProjectsWithViolation));
  W.key("status").beginObject();
  for (unsigned I = 0; I < core::NumChangeStatuses; ++I)
    if (Report.StatusCounts[I])
      W.key(core::changeStatusName(static_cast<core::ChangeStatus>(I)))
          .value(static_cast<std::uint64_t>(Report.StatusCounts[I]));
  W.endObject();
  W.key("rules").beginArray();
  for (const RuleTotal &T : Report.Rules) {
    W.beginObject();
    W.key("id").value(Report.text(T.Rule));
    W.key("applicable").value(T.Applicable);
    W.key("matched").value(T.Matched);
    W.key("violations").value(T.Violations);
    W.key("suppressed").value(T.Suppressed);
    W.endObject();
  }
  W.endArray();
  W.endObject();
  return W.take();
}

} // namespace

ScanReportWriter::ScanReportWriter(std::ostream &Out) : Out(Out) {
  Out << "{\"projects\":[";
}

void ScanReportWriter::onProject(std::size_t, const ProjectScanRecord &Record) {
  if (AnyProject)
    Out << ',';
  AnyProject = true;
  Out << recordJson(Record);
}

void ScanReportWriter::finish(const ScanReport &Report) {
  Out << "],\"summary\":" << summaryJson(Report);
  // Last key, and only for observed runs: an unobserved scan report is
  // a byte-for-byte prefix of the observed report of the same corpus
  // (mirroring corpusReportToJson's contract).
  if (!Report.Metrics.empty())
    Out << ",\"metrics\":" << Report.Metrics.json();
  Out << '}';
  Out.flush();
}

std::string scan::scanReportToJson(const ScanReport &Report) {
  std::ostringstream OS;
  ScanReportWriter W(OS);
  for (std::size_t I = 0; I < Report.Projects.size(); ++I)
    W.onProject(I, Report.Projects[I]);
  W.finish(Report);
  return OS.str();
}
