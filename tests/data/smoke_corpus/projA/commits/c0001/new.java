class Broken {
    void m() throws Exception {
        Cipher c = Cipher.getInstance("AES
    }
