//===- rules/BuiltinRules.h - R1-R13 and CL1-CL5 ---------------------------===//
//
// Part of the DiffCode project, a reproduction of "Inferring Crypto API
// Rules from Code Changes" (PLDI'18).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The thirteen security rules elicited in the paper (Figure 9) and the
/// five CryptoLint rules (Egele et al., CCS'13) the paper re-encodes for
/// the fix/bug classification of Figure 7:
///
///   CL1 do not use ECB mode           (Cipher)
///   CL2 do not use a static IV        (IvParameterSpec)
///   CL3 do not hard-code secret keys  (SecretKeySpec)
///   CL4 PBE iteration count >= 1000   (PBEKeySpec)
///   CL5 do not use a static PBE salt  (PBEKeySpec)
///
/// Encoding notes (documented divergences):
///   * R4's figure prints "¬getInstanceStrong"; the prose says the call
///     "should be avoided", so the violation matches its presence.
///   * R5 matches both a missing provider argument and a provider other
///     than "BC".
///
//===----------------------------------------------------------------------===//

#ifndef DIFFCODE_RULES_BUILTINRULES_H
#define DIFFCODE_RULES_BUILTINRULES_H

#include "rules/Rule.h"

#include <vector>

namespace diffcode {
namespace rules {

/// The thirteen elicited rules R1-R13 in Figure 9 order.
const std::vector<Rule> &elicitedRules();

/// The five CryptoLint rules CL1-CL5 used for change classification.
const std::vector<Rule> &cryptoLintRules();

/// Lookup by id ("R7", "CL2"); null when unknown.
const Rule *findRule(const std::string &Id);

} // namespace rules
} // namespace diffcode

#endif // DIFFCODE_RULES_BUILTINRULES_H
