//===- tests/test_api_compat.cpp - Deprecated API spellings are gone ------===//
//
// Part of the DiffCode project, a reproduction of "Inferring Crypto API
// Rules from Code Changes" (PLDI'18).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// PR 8 collapsed the pipeline knobs into core::PipelineConfig and the
/// two entry points into DiffCode::run, keeping the old spellings —
/// DiffCodeOptions, the DiffCode(Api, DiffCodeOptions) constructor,
/// options(), and runPipeline() — [[deprecated]] for one release. That
/// release has passed: this suite is now the removal gate. It asserts,
/// via unevaluated requires-expressions, that the old names no longer
/// exist (someone re-adding one breaks the build here first) and that
/// the replacement surface stands.
///
//===----------------------------------------------------------------------===//

#include "core/DiffCode.h"

#include "core/ReportWriter.h"

#include <gtest/gtest.h>

#include <string>
#include <type_traits>

using namespace diffcode;
using namespace diffcode::core;

namespace {

const apimodel::CryptoApiModel &api() {
  return apimodel::CryptoApiModel::javaCryptoApi();
}

// Removal probes for the member spellings: each concept is true only if
// the old name still resolves on DiffCode.
template <typename System>
concept HasOptionsAccessor = requires(const System &S) { S.options(); };

template <typename System>
concept HasRunPipeline =
    requires(const System &S, const PipelineRequest &R) { S.runPipeline(R); };

} // namespace

// Removal probe for the struct itself: a sentinel is using-declared into
// diffcode::core under the old name. If someone resurrects a real
// core::DiffCodeOptions, that using-declaration becomes a conflicting
// redeclaration and this file stops compiling — the removal gate fires
// at build time, before any test runs.
namespace compat_sentinel {
struct DiffCodeOptions {
  static constexpr bool IsRemovalSentinel = true;
};
} // namespace compat_sentinel

namespace diffcode::core {
using ::compat_sentinel::DiffCodeOptions;
} // namespace diffcode::core

TEST(ApiCompat, DeprecatedSpellingsAreGone) {
  static_assert(!HasOptionsAccessor<DiffCode>,
                "DiffCode::options() was removed in PR 9; use config()");
  static_assert(!HasRunPipeline<DiffCode>,
                "DiffCode::runPipeline() was removed in PR 9; use run()");
  static_assert(diffcode::core::DiffCodeOptions::IsRemovalSentinel,
                "core::DiffCodeOptions was removed in PR 9; construct from "
                "core::PipelineConfig");
  SUCCEED();
}

TEST(ApiCompat, ReplacementSurfaceStands) {
  // The replacement spellings, exercised end to end: PipelineConfig
  // construction, config() round-trip, and run() as the one entry point.
  PipelineConfig Config;
  Config.Threads = 2;
  Config.Limits.DagDepth = 4;
  Config.Clustering.Cut = 0.5;
  DiffCode System(api(), Config);
  EXPECT_EQ(System.config().Threads, 2u);
  EXPECT_EQ(System.config().Limits.DagDepth, 4u);
  EXPECT_DOUBLE_EQ(System.config().Clustering.Cut, 0.5);

  corpus::CodeChange Fix;
  Fix.ProjectName = "proj";
  Fix.CommitIndex = 1;
  Fix.FileName = "A.java";
  Fix.OldCode = "class A { void m() { MessageDigest d = "
                "MessageDigest.getInstance(\"MD5\"); } }";
  Fix.NewCode = "class A { void m() { MessageDigest d = "
                "MessageDigest.getInstance(\"SHA-256\"); } }";
  PipelineRequest Request;
  Request.Changes = {&Fix};
  Request.TargetClasses = api().targetClasses();
  std::string Json = corpusReportToJson(System.run(Request));
  EXPECT_FALSE(Json.empty());
  EXPECT_NE(Json.find("\"changes\":1"), std::string::npos) << Json;
}
