//===- tests/test_clustering_equivalence.cpp - NN-chain vs naive oracle ----===//
//
// Differential harness for the clustering engine: the production
// nearest-neighbor-chain agglomeration must produce bit-identical
// dendrograms to the retained O(n^3) naive reference — same node array,
// same merge heights, same flat clusters at every cut — on seeded random
// usage-change corpora and on tie-heavy synthetic metrics. Ties are the
// hard part: usageDist values like 0.0, 0.5, and 1.0 recur constantly,
// and complete linkage is only unique once the canonical tie-breaking
// order fixes it.
//
//===----------------------------------------------------------------------===//

#include "cluster/HierarchicalClustering.h"

#include "cluster/Distance.h"
#include "cluster/DistanceCache.h"
#include "support/Rng.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

using namespace diffcode;
using namespace diffcode::analysis;
using namespace diffcode::cluster;
using namespace diffcode::usage;

namespace {

using Algorithm = ClusteringOptions::Algorithm;

/// Random feature path over a small vocabulary, so exact duplicates and
/// tied distances are common across a corpus.
FeaturePath randomPath(Rng &R) {
  static const char *Roots[] = {"Cipher", "MessageDigest", "SecureRandom"};
  static const char *Methods[] = {"Cipher.getInstance/1", "Cipher.init/3",
                                  "Cipher.doFinal/1",
                                  "MessageDigest.getInstance/1",
                                  "SecureRandom.setSeed/1"};
  static const char *Strings[] = {"AES", "AES/CBC/PKCS5Padding",
                                  "AES/GCM/NoPadding", "DES", "SHA-1",
                                  "SHA-256"};
  FeaturePath Path = {NodeLabel::root(Roots[R.index(3)])};
  Path.push_back(NodeLabel::method(Methods[R.index(5)]));
  if (R.chance(0.7)) {
    unsigned Index = static_cast<unsigned>(R.range(1, 3));
    if (R.chance(0.6))
      Path.push_back(
          NodeLabel::arg(Index, AbstractValue::strConst(Strings[R.index(6)])));
    else
      Path.push_back(NodeLabel::arg(Index, AbstractValue::byteArrayTop()));
  }
  return Path;
}

std::vector<UsageChange> randomCorpus(unsigned Seed, std::size_t Size) {
  static support::Interner Table;
  Rng R(Seed * 9176u + 13);
  std::vector<UsageChange> Changes;
  Changes.reserve(Size);
  for (std::size_t C = 0; C < Size; ++C) {
    std::vector<FeaturePath> Removed, Added;
    for (std::size_t I = 0, N = R.range(0, 3); I < N; ++I)
      Removed.push_back(randomPath(R));
    for (std::size_t I = 0, N = R.range(0, 3); I < N; ++I)
      Added.push_back(randomPath(R));
    Changes.push_back(UsageChange::intern(Table, "Cipher", Removed, Added));
  }
  return Changes;
}

/// Bit-identical dendrograms: same leaves, same merge nodes in the same
/// order with exactly equal heights, same root.
void expectIdenticalTrees(const Dendrogram &A, const Dendrogram &B) {
  ASSERT_EQ(A.leafCount(), B.leafCount());
  ASSERT_EQ(A.nodes().size(), B.nodes().size());
  EXPECT_EQ(A.root(), B.root());
  for (std::size_t I = 0; I < A.nodes().size(); ++I) {
    const Dendrogram::Node &X = A.nodes()[I];
    const Dendrogram::Node &Y = B.nodes()[I];
    EXPECT_EQ(X.Left, Y.Left) << "node " << I;
    EXPECT_EQ(X.Right, Y.Right) << "node " << I;
    EXPECT_EQ(X.Item, Y.Item) << "node " << I;
    EXPECT_EQ(X.Height, Y.Height) << "node " << I; // exact, not approximate
  }
}

void expectIdenticalCuts(const Dendrogram &A, const Dendrogram &B) {
  for (double Threshold : {0.0, 0.1, 0.25, 0.4, 0.5, 0.75, 1.0})
    EXPECT_EQ(A.cut(Threshold), B.cut(Threshold)) << "cut at " << Threshold;
}

} // namespace

//===----------------------------------------------------------------------===//
// Random usage-change corpora (50-300 changes), shared distance matrix.
//===----------------------------------------------------------------------===//

class CorpusEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(CorpusEquivalence, ChainMatchesNaiveOracle) {
  unsigned Seed = static_cast<unsigned>(GetParam());
  // Sizes sweep the ISSUE's 50-300 range across the seeds.
  std::size_t Size = 50 + (Seed * 83) % 251;
  std::vector<UsageChange> Changes = randomCorpus(Seed, Size);

  UsageDistCache Cache(Changes);
  std::vector<double> D = pairwiseDistanceMatrix(
      Size, [&](std::size_t I, std::size_t J) { return Cache(I, J); });

  Dendrogram Naive = agglomerateDistanceMatrix(Size, D, Algorithm::Naive);
  Dendrogram Chain = agglomerateDistanceMatrix(Size, D, Algorithm::NNChain);
  expectIdenticalTrees(Naive, Chain);
  expectIdenticalCuts(Naive, Chain);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CorpusEquivalence, ::testing::Range(0, 6));

//===----------------------------------------------------------------------===//
// Tie-heavy synthetic metrics: distances drawn from a 5-value grid, so
// nearly every merge decision is a tie resolved by the canonical order.
//===----------------------------------------------------------------------===//

class TieGridEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(TieGridEquivalence, QuantizedDistancesAgree) {
  unsigned Seed = static_cast<unsigned>(GetParam());
  Rng R(Seed * 517u + 3);
  std::size_t N = 20 + (Seed % 3) * 20;
  std::vector<double> D(N * N, 0.0);
  static const double Grid[] = {0.0, 0.25, 0.5, 0.75, 1.0};
  for (std::size_t I = 0; I < N; ++I)
    for (std::size_t J = I + 1; J < N; ++J)
      D[I * N + J] = D[J * N + I] = Grid[R.index(5)];

  Dendrogram Naive = agglomerateDistanceMatrix(N, D, Algorithm::Naive);
  Dendrogram Chain = agglomerateDistanceMatrix(N, D, Algorithm::NNChain);
  expectIdenticalTrees(Naive, Chain);
  expectIdenticalCuts(Naive, Chain);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TieGridEquivalence, ::testing::Range(0, 24));

//===----------------------------------------------------------------------===//
// Duplicate items: zero-distance pairs everywhere.
//===----------------------------------------------------------------------===//

TEST(ClusteringEquivalence, DuplicateItemsAgree) {
  std::vector<UsageChange> Base = randomCorpus(99, 20);
  std::vector<UsageChange> Changes;
  for (int Copy = 0; Copy < 4; ++Copy)
    Changes.insert(Changes.end(), Base.begin(), Base.end());

  UsageDistCache Cache(Changes);
  std::vector<double> D = pairwiseDistanceMatrix(
      Changes.size(),
      [&](std::size_t I, std::size_t J) { return Cache(I, J); });
  Dendrogram Naive =
      agglomerateDistanceMatrix(Changes.size(), D, Algorithm::Naive);
  Dendrogram Chain =
      agglomerateDistanceMatrix(Changes.size(), D, Algorithm::NNChain);
  expectIdenticalTrees(Naive, Chain);
  expectIdenticalCuts(Naive, Chain);
}

//===----------------------------------------------------------------------===//
// Engine determinism: the threaded matrix and the threaded end-to-end
// wrapper must equal their serial counterparts bit for bit.
//===----------------------------------------------------------------------===//

TEST(ClusteringEquivalence, ThreadedMatrixMatchesSerial) {
  std::vector<UsageChange> Changes = randomCorpus(7, 120);
  UsageDistCache Cache(Changes);
  auto Dist = [&](std::size_t I, std::size_t J) { return Cache(I, J); };

  std::vector<double> Serial =
      pairwiseDistanceMatrix(Changes.size(), Dist, nullptr);
  support::ThreadPool Pool(8);
  std::vector<double> Threaded =
      pairwiseDistanceMatrix(Changes.size(), Dist, &Pool);
  EXPECT_EQ(Serial, Threaded);
}

TEST(ClusteringEquivalence, ThreadCountDoesNotChangeDendrogram) {
  std::vector<UsageChange> Changes = randomCorpus(11, 150);
  ClusteringOptions One;
  One.Threads = 1;
  ClusteringOptions Eight;
  Eight.Threads = 8;
  Dendrogram A = clusterUsageChanges(Changes, One);
  Dendrogram B = clusterUsageChanges(Changes, Eight);
  expectIdenticalTrees(A, B);

  ClusteringOptions NaiveSerial;
  NaiveSerial.Algo = Algorithm::Naive;
  Dendrogram C = clusterUsageChanges(Changes, NaiveSerial);
  expectIdenticalTrees(A, C);
}

//===----------------------------------------------------------------------===//
// Small shapes: both engines on the degenerate inputs.
//===----------------------------------------------------------------------===//

TEST(ClusteringEquivalence, TinyInputsAgree) {
  for (std::size_t N : {0u, 1u, 2u, 3u}) {
    std::vector<double> D(N * N, 0.0);
    for (std::size_t I = 0; I < N; ++I)
      for (std::size_t J = I + 1; J < N; ++J)
        D[I * N + J] = D[J * N + I] = 0.5;
    Dendrogram Naive = agglomerateDistanceMatrix(N, D, Algorithm::Naive);
    Dendrogram Chain = agglomerateDistanceMatrix(N, D, Algorithm::NNChain);
    expectIdenticalTrees(Naive, Chain);
    EXPECT_EQ(Naive.leafCount(), N);
  }
}
