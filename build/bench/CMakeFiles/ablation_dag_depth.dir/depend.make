# Empty dependencies file for ablation_dag_depth.
# This may be replaced when dependencies are built.
