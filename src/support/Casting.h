//===- support/Casting.h - Kind-based isa/cast/dyn_cast ------------------===//
//
// Part of the DiffCode project, a reproduction of "Inferring Crypto API
// Rules from Code Changes" (PLDI'18).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// LLVM-style opt-in RTTI. A class hierarchy participates by exposing a
/// `Kind getKind() const` discriminator and, on each leaf/derived class, a
/// `static bool classof(const Base *)` predicate. This avoids C++ RTTI per
/// the project coding standard.
///
//===----------------------------------------------------------------------===//

#ifndef DIFFCODE_SUPPORT_CASTING_H
#define DIFFCODE_SUPPORT_CASTING_H

#include <cassert>

namespace diffcode {

/// Returns true if \p Val is an instance of \p To (per To::classof).
template <typename To, typename From> bool isa(const From *Val) {
  assert(Val && "isa<> used on a null pointer");
  return To::classof(Val);
}

/// Checked downcast: asserts that \p Val really is a \p To.
template <typename To, typename From> To *cast(From *Val) {
  assert(Val && "cast<> used on a null pointer");
  assert(To::classof(Val) && "cast<> argument of incompatible type");
  return static_cast<To *>(Val);
}

/// Checked downcast (const overload).
template <typename To, typename From> const To *cast(const From *Val) {
  assert(Val && "cast<> used on a null pointer");
  assert(To::classof(Val) && "cast<> argument of incompatible type");
  return static_cast<const To *>(Val);
}

/// Checking downcast: returns null when \p Val is not a \p To.
template <typename To, typename From> To *dyn_cast(From *Val) {
  assert(Val && "dyn_cast<> used on a null pointer");
  return To::classof(Val) ? static_cast<To *>(Val) : nullptr;
}

/// Checking downcast (const overload).
template <typename To, typename From> const To *dyn_cast(const From *Val) {
  assert(Val && "dyn_cast<> used on a null pointer");
  return To::classof(Val) ? static_cast<const To *>(Val) : nullptr;
}

/// Like dyn_cast, but tolerates a null argument (propagates null).
template <typename To, typename From> To *dyn_cast_if_present(From *Val) {
  return Val ? dyn_cast<To>(Val) : nullptr;
}

/// Like dyn_cast_if_present (const overload).
template <typename To, typename From>
const To *dyn_cast_if_present(const From *Val) {
  return Val ? dyn_cast<To>(Val) : nullptr;
}

} // namespace diffcode

#endif // DIFFCODE_SUPPORT_CASTING_H
