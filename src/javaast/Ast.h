//===- javaast/Ast.h - Java subset AST -------------------------------------===//
//
// Part of the DiffCode project, a reproduction of "Inferring Crypto API
// Rules from Code Changes" (PLDI'18).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// AST node hierarchy for the Java subset. Nodes are arena-allocated and
/// owned by an AstContext; the tree holds raw non-owning pointers. The
/// hierarchy uses kind-discriminated LLVM-style RTTI (see
/// support/Casting.h) — NodeKind ranges define the abstract bases.
///
//===----------------------------------------------------------------------===//

#ifndef DIFFCODE_JAVAAST_AST_H
#define DIFFCODE_JAVAAST_AST_H

#include "javaast/SourceLocation.h"
#include "support/Arena.h"

#include <cstdint>
#include <memory>
#include <new>
#include <string>
#include <type_traits>
#include <vector>

namespace diffcode {
namespace java {

class Block;
class Expr;

/// Discriminator for every concrete AST node. The First_/Last_ markers
/// delimit the abstract base ranges used by classof.
enum class NodeKind : std::uint8_t {
  // Declarations.
  First_Decl,
  CompilationUnit = First_Decl,
  ClassDecl,
  FieldDecl,
  MethodDecl,
  Last_Decl = MethodDecl,

  // Statements.
  First_Stmt,
  BlockStmt = First_Stmt,
  LocalVarDeclStmt,
  ExprStmt,
  IfStmt,
  WhileStmt,
  DoStmt,
  ForStmt,
  ReturnStmt,
  TryStmt,
  ThrowStmt,
  BreakStmt,
  ContinueStmt,
  EmptyStmt,
  Last_Stmt = EmptyStmt,

  // Expressions.
  First_Expr,
  IntLiteralExpr = First_Expr,
  LongLiteralExpr,
  StringLiteralExpr,
  CharLiteralExpr,
  BoolLiteralExpr,
  NullLiteralExpr,
  NameExpr,
  FieldAccessExpr,
  MethodCallExpr,
  NewObjectExpr,
  NewArrayExpr,
  ArrayInitExpr,
  ArrayAccessExpr,
  AssignExpr,
  BinaryExpr,
  UnaryExpr,
  CastExpr,
  ConditionalExpr,
  ThisExpr,
  InstanceofExpr,
  Last_Expr = InstanceofExpr,
};

/// A (possibly qualified) type reference with array dimensions, e.g.
/// `javax.crypto.Cipher` or `byte[]`. Generic arguments are parsed and
/// discarded — the analysis never needs them.
struct TypeRef {
  std::string Name;       ///< Qualified name as written ("byte", "Cipher").
  unsigned ArrayDims = 0; ///< Number of `[]` suffixes.
  SourceLocation Loc;

  bool isArray() const { return ArrayDims != 0; }

  /// The unqualified base name ("Cipher" for "javax.crypto.Cipher").
  std::string baseName() const;

  /// Renders back to Java syntax ("byte[][]").
  std::string str() const;
};

/// Root of the node hierarchy.
class AstNode {
public:
  NodeKind getKind() const { return Kind; }
  SourceLocation getLoc() const { return Loc; }

  AstNode(const AstNode &) = delete;
  AstNode &operator=(const AstNode &) = delete;

protected:
  AstNode(NodeKind Kind, SourceLocation Loc) : Kind(Kind), Loc(Loc) {}
  ~AstNode() = default;

private:
  NodeKind Kind;
  SourceLocation Loc;
};

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

/// Base class of all expressions.
class Expr : public AstNode {
public:
  static bool classof(const AstNode *N) {
    return N->getKind() >= NodeKind::First_Expr &&
           N->getKind() <= NodeKind::Last_Expr;
  }

protected:
  using AstNode::AstNode;
};

/// Integer literal (decimal or hex); Value holds the decoded number.
class IntLiteralExpr final : public Expr {
public:
  IntLiteralExpr(SourceLocation Loc, std::int64_t Value, std::string Spelling)
      : Expr(NodeKind::IntLiteralExpr, Loc), Value(Value),
        Spelling(std::move(Spelling)) {}

  std::int64_t Value;
  std::string Spelling; ///< As written, for round-trip printing.

  static bool classof(const AstNode *N) {
    return N->getKind() == NodeKind::IntLiteralExpr;
  }
};

/// Long literal (`42L`).
class LongLiteralExpr final : public Expr {
public:
  LongLiteralExpr(SourceLocation Loc, std::int64_t Value, std::string Spelling)
      : Expr(NodeKind::LongLiteralExpr, Loc), Value(Value),
        Spelling(std::move(Spelling)) {}

  std::int64_t Value;
  std::string Spelling;

  static bool classof(const AstNode *N) {
    return N->getKind() == NodeKind::LongLiteralExpr;
  }
};

/// String literal with escapes already decoded.
class StringLiteralExpr final : public Expr {
public:
  StringLiteralExpr(SourceLocation Loc, std::string Value)
      : Expr(NodeKind::StringLiteralExpr, Loc), Value(std::move(Value)) {}

  std::string Value;

  static bool classof(const AstNode *N) {
    return N->getKind() == NodeKind::StringLiteralExpr;
  }
};

/// Character literal.
class CharLiteralExpr final : public Expr {
public:
  CharLiteralExpr(SourceLocation Loc, char Value)
      : Expr(NodeKind::CharLiteralExpr, Loc), Value(Value) {}

  char Value;

  static bool classof(const AstNode *N) {
    return N->getKind() == NodeKind::CharLiteralExpr;
  }
};

/// `true` / `false`.
class BoolLiteralExpr final : public Expr {
public:
  BoolLiteralExpr(SourceLocation Loc, bool Value)
      : Expr(NodeKind::BoolLiteralExpr, Loc), Value(Value) {}

  bool Value;

  static bool classof(const AstNode *N) {
    return N->getKind() == NodeKind::BoolLiteralExpr;
  }
};

/// `null`.
class NullLiteralExpr final : public Expr {
public:
  explicit NullLiteralExpr(SourceLocation Loc)
      : Expr(NodeKind::NullLiteralExpr, Loc) {}

  static bool classof(const AstNode *N) {
    return N->getKind() == NodeKind::NullLiteralExpr;
  }
};

/// A bare identifier use: local, parameter, field, or a type name acting
/// as the receiver of a static call (resolved during analysis).
class NameExpr final : public Expr {
public:
  NameExpr(SourceLocation Loc, std::string Name)
      : Expr(NodeKind::NameExpr, Loc), Name(std::move(Name)) {}

  std::string Name;

  static bool classof(const AstNode *N) {
    return N->getKind() == NodeKind::NameExpr;
  }
};

/// `Base.Name` — covers field reads and qualified constants such as
/// `Cipher.ENCRYPT_MODE`.
class FieldAccessExpr final : public Expr {
public:
  FieldAccessExpr(SourceLocation Loc, Expr *Base, std::string Name)
      : Expr(NodeKind::FieldAccessExpr, Loc), Base(Base),
        Name(std::move(Name)) {}

  Expr *Base; ///< Never null (use NameExpr for unqualified names).
  std::string Name;

  static bool classof(const AstNode *N) {
    return N->getKind() == NodeKind::FieldAccessExpr;
  }
};

/// A method invocation `Base.Name(Args)`; Base is null for unqualified
/// calls (`helper(x)`).
class MethodCallExpr final : public Expr {
public:
  MethodCallExpr(SourceLocation Loc, Expr *Base, std::string Name,
                 std::vector<Expr *> Args)
      : Expr(NodeKind::MethodCallExpr, Loc), Base(Base), Name(std::move(Name)),
        Args(std::move(Args)) {}

  Expr *Base; ///< May be null.
  std::string Name;
  std::vector<Expr *> Args;

  static bool classof(const AstNode *N) {
    return N->getKind() == NodeKind::MethodCallExpr;
  }
};

/// `new T(Args)`.
class NewObjectExpr final : public Expr {
public:
  NewObjectExpr(SourceLocation Loc, TypeRef Type, std::vector<Expr *> Args)
      : Expr(NodeKind::NewObjectExpr, Loc), Type(std::move(Type)),
        Args(std::move(Args)) {}

  TypeRef Type;
  std::vector<Expr *> Args;

  static bool classof(const AstNode *N) {
    return N->getKind() == NodeKind::NewObjectExpr;
  }
};

/// `new T[Dim]...` or `new T[] { ... }`.
class NewArrayExpr final : public Expr {
public:
  NewArrayExpr(SourceLocation Loc, TypeRef ElemType,
               std::vector<Expr *> DimExprs, Expr *Init)
      : Expr(NodeKind::NewArrayExpr, Loc), ElemType(std::move(ElemType)),
        DimExprs(std::move(DimExprs)), Init(Init) {}

  TypeRef ElemType;
  std::vector<Expr *> DimExprs; ///< Explicit sizes; may be empty.
  Expr *Init;                   ///< ArrayInitExpr or null.

  static bool classof(const AstNode *N) {
    return N->getKind() == NodeKind::NewArrayExpr;
  }
};

/// `{ e0, e1, ... }` array initializer.
class ArrayInitExpr final : public Expr {
public:
  ArrayInitExpr(SourceLocation Loc, std::vector<Expr *> Elements)
      : Expr(NodeKind::ArrayInitExpr, Loc), Elements(std::move(Elements)) {}

  std::vector<Expr *> Elements;

  static bool classof(const AstNode *N) {
    return N->getKind() == NodeKind::ArrayInitExpr;
  }
};

/// `Base[Index]`.
class ArrayAccessExpr final : public Expr {
public:
  ArrayAccessExpr(SourceLocation Loc, Expr *Base, Expr *Index)
      : Expr(NodeKind::ArrayAccessExpr, Loc), Base(Base), Index(Index) {}

  Expr *Base;
  Expr *Index;

  static bool classof(const AstNode *N) {
    return N->getKind() == NodeKind::ArrayAccessExpr;
  }
};

/// Assignment operators the subset supports.
enum class AssignOp : std::uint8_t { Assign, AddAssign, SubAssign };

/// `Lhs = Rhs` (and compound variants).
class AssignExpr final : public Expr {
public:
  AssignExpr(SourceLocation Loc, AssignOp Op, Expr *Lhs, Expr *Rhs)
      : Expr(NodeKind::AssignExpr, Loc), Op(Op), Lhs(Lhs), Rhs(Rhs) {}

  AssignOp Op;
  Expr *Lhs;
  Expr *Rhs;

  static bool classof(const AstNode *N) {
    return N->getKind() == NodeKind::AssignExpr;
  }
};

/// Binary operators (arithmetic, comparison, logical, bitwise, shifts).
enum class BinaryOp : std::uint8_t {
  Add,
  Sub,
  Mul,
  Div,
  Rem,
  Lt,
  Gt,
  Le,
  Ge,
  Eq,
  Ne,
  And,
  Or,
  BitAnd,
  BitOr,
  BitXor,
  Shl,
  Shr,
};

/// `Lhs op Rhs`.
class BinaryExpr final : public Expr {
public:
  BinaryExpr(SourceLocation Loc, BinaryOp Op, Expr *Lhs, Expr *Rhs)
      : Expr(NodeKind::BinaryExpr, Loc), Op(Op), Lhs(Lhs), Rhs(Rhs) {}

  BinaryOp Op;
  Expr *Lhs;
  Expr *Rhs;

  static bool classof(const AstNode *N) {
    return N->getKind() == NodeKind::BinaryExpr;
  }
};

/// Unary operators. PreInc/PreDec also cover the postfix forms — the
/// analysis only cares that the operand becomes non-constant.
enum class UnaryOp : std::uint8_t { Neg, Not, BitNot, PreInc, PreDec };

/// `op Operand`.
class UnaryExpr final : public Expr {
public:
  UnaryExpr(SourceLocation Loc, UnaryOp Op, Expr *Operand)
      : Expr(NodeKind::UnaryExpr, Loc), Op(Op), Operand(Operand) {}

  UnaryOp Op;
  Expr *Operand;

  static bool classof(const AstNode *N) {
    return N->getKind() == NodeKind::UnaryExpr;
  }
};

/// `(T) Operand`.
class CastExpr final : public Expr {
public:
  CastExpr(SourceLocation Loc, TypeRef Type, Expr *Operand)
      : Expr(NodeKind::CastExpr, Loc), Type(std::move(Type)),
        Operand(Operand) {}

  TypeRef Type;
  Expr *Operand;

  static bool classof(const AstNode *N) {
    return N->getKind() == NodeKind::CastExpr;
  }
};

/// `Cond ? TrueExpr : FalseExpr`.
class ConditionalExpr final : public Expr {
public:
  ConditionalExpr(SourceLocation Loc, Expr *Cond, Expr *TrueExpr,
                  Expr *FalseExpr)
      : Expr(NodeKind::ConditionalExpr, Loc), Cond(Cond), TrueExpr(TrueExpr),
        FalseExpr(FalseExpr) {}

  Expr *Cond;
  Expr *TrueExpr;
  Expr *FalseExpr;

  static bool classof(const AstNode *N) {
    return N->getKind() == NodeKind::ConditionalExpr;
  }
};

/// `this`.
class ThisExpr final : public Expr {
public:
  explicit ThisExpr(SourceLocation Loc) : Expr(NodeKind::ThisExpr, Loc) {}

  static bool classof(const AstNode *N) {
    return N->getKind() == NodeKind::ThisExpr;
  }
};

/// `Operand instanceof T`.
class InstanceofExpr final : public Expr {
public:
  InstanceofExpr(SourceLocation Loc, Expr *Operand, TypeRef Type)
      : Expr(NodeKind::InstanceofExpr, Loc), Operand(Operand),
        Type(std::move(Type)) {}

  Expr *Operand;
  TypeRef Type;

  static bool classof(const AstNode *N) {
    return N->getKind() == NodeKind::InstanceofExpr;
  }
};

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

/// Base class of all statements.
class Stmt : public AstNode {
public:
  static bool classof(const AstNode *N) {
    return N->getKind() >= NodeKind::First_Stmt &&
           N->getKind() <= NodeKind::Last_Stmt;
  }

protected:
  using AstNode::AstNode;
};

/// `{ ... }`.
class Block final : public Stmt {
public:
  Block(SourceLocation Loc, std::vector<Stmt *> Stmts)
      : Stmt(NodeKind::BlockStmt, Loc), Stmts(std::move(Stmts)) {}

  std::vector<Stmt *> Stmts;

  static bool classof(const AstNode *N) {
    return N->getKind() == NodeKind::BlockStmt;
  }
};

/// `T x = init;` — one declarator per statement (the parser splits
/// multi-declarator statements).
class LocalVarDeclStmt final : public Stmt {
public:
  LocalVarDeclStmt(SourceLocation Loc, TypeRef Type, std::string Name,
                   Expr *Init)
      : Stmt(NodeKind::LocalVarDeclStmt, Loc), Type(std::move(Type)),
        Name(std::move(Name)), Init(Init) {}

  TypeRef Type;
  std::string Name;
  Expr *Init; ///< May be null.

  static bool classof(const AstNode *N) {
    return N->getKind() == NodeKind::LocalVarDeclStmt;
  }
};

/// An expression used as a statement.
class ExprStmt final : public Stmt {
public:
  ExprStmt(SourceLocation Loc, Expr *E)
      : Stmt(NodeKind::ExprStmt, Loc), E(E) {}

  Expr *E;

  static bool classof(const AstNode *N) {
    return N->getKind() == NodeKind::ExprStmt;
  }
};

/// `if (Cond) Then else Else`.
class IfStmt final : public Stmt {
public:
  IfStmt(SourceLocation Loc, Expr *Cond, Stmt *Then, Stmt *Else)
      : Stmt(NodeKind::IfStmt, Loc), Cond(Cond), Then(Then), Else(Else) {}

  Expr *Cond;
  Stmt *Then;
  Stmt *Else; ///< May be null.

  static bool classof(const AstNode *N) {
    return N->getKind() == NodeKind::IfStmt;
  }
};

/// `while (Cond) Body`.
class WhileStmt final : public Stmt {
public:
  WhileStmt(SourceLocation Loc, Expr *Cond, Stmt *Body)
      : Stmt(NodeKind::WhileStmt, Loc), Cond(Cond), Body(Body) {}

  Expr *Cond;
  Stmt *Body;

  static bool classof(const AstNode *N) {
    return N->getKind() == NodeKind::WhileStmt;
  }
};

/// `do Body while (Cond);`.
class DoStmt final : public Stmt {
public:
  DoStmt(SourceLocation Loc, Stmt *Body, Expr *Cond)
      : Stmt(NodeKind::DoStmt, Loc), Body(Body), Cond(Cond) {}

  Stmt *Body;
  Expr *Cond;

  static bool classof(const AstNode *N) {
    return N->getKind() == NodeKind::DoStmt;
  }
};

/// `for (Init; Cond; Update) Body`. Init is a statement (declaration or
/// expression statement) or null; Update is an expression or null.
class ForStmt final : public Stmt {
public:
  ForStmt(SourceLocation Loc, Stmt *Init, Expr *Cond, Expr *Update,
          Stmt *Body)
      : Stmt(NodeKind::ForStmt, Loc), Init(Init), Cond(Cond), Update(Update),
        Body(Body) {}

  Stmt *Init;
  Expr *Cond;
  Expr *Update;
  Stmt *Body;

  static bool classof(const AstNode *N) {
    return N->getKind() == NodeKind::ForStmt;
  }
};

/// `return E;` (E may be null).
class ReturnStmt final : public Stmt {
public:
  ReturnStmt(SourceLocation Loc, Expr *Value)
      : Stmt(NodeKind::ReturnStmt, Loc), Value(Value) {}

  Expr *Value; ///< May be null.

  static bool classof(const AstNode *N) {
    return N->getKind() == NodeKind::ReturnStmt;
  }
};

/// One `catch (T name) { ... }` clause. Multi-catch (`A | B`) keeps all
/// alternative types.
struct CatchClause {
  std::vector<TypeRef> Types;
  std::string Name;
  Block *Body = nullptr;
};

/// `try { ... } catch ... finally { ... }`.
class TryStmt final : public Stmt {
public:
  TryStmt(SourceLocation Loc, Block *Body, std::vector<CatchClause> Catches,
          Block *Finally)
      : Stmt(NodeKind::TryStmt, Loc), Body(Body), Catches(std::move(Catches)),
        Finally(Finally) {}

  Block *Body;
  std::vector<CatchClause> Catches;
  Block *Finally; ///< May be null.

  static bool classof(const AstNode *N) {
    return N->getKind() == NodeKind::TryStmt;
  }
};

/// `throw E;`.
class ThrowStmt final : public Stmt {
public:
  ThrowStmt(SourceLocation Loc, Expr *Value)
      : Stmt(NodeKind::ThrowStmt, Loc), Value(Value) {}

  Expr *Value;

  static bool classof(const AstNode *N) {
    return N->getKind() == NodeKind::ThrowStmt;
  }
};

/// `break;`.
class BreakStmt final : public Stmt {
public:
  explicit BreakStmt(SourceLocation Loc) : Stmt(NodeKind::BreakStmt, Loc) {}

  static bool classof(const AstNode *N) {
    return N->getKind() == NodeKind::BreakStmt;
  }
};

/// `continue;`.
class ContinueStmt final : public Stmt {
public:
  explicit ContinueStmt(SourceLocation Loc)
      : Stmt(NodeKind::ContinueStmt, Loc) {}

  static bool classof(const AstNode *N) {
    return N->getKind() == NodeKind::ContinueStmt;
  }
};

/// `;`.
class EmptyStmt final : public Stmt {
public:
  explicit EmptyStmt(SourceLocation Loc) : Stmt(NodeKind::EmptyStmt, Loc) {}

  static bool classof(const AstNode *N) {
    return N->getKind() == NodeKind::EmptyStmt;
  }
};

//===----------------------------------------------------------------------===//
// Declarations
//===----------------------------------------------------------------------===//

/// Base class of declarations.
class Decl : public AstNode {
public:
  static bool classof(const AstNode *N) {
    return N->getKind() >= NodeKind::First_Decl &&
           N->getKind() <= NodeKind::Last_Decl;
  }

protected:
  using AstNode::AstNode;
};

/// Modifier bitmask (`public static final ...`).
enum Modifier : unsigned {
  ModNone = 0,
  ModPublic = 1u << 0,
  ModPrivate = 1u << 1,
  ModProtected = 1u << 2,
  ModStatic = 1u << 3,
  ModFinal = 1u << 4,
  ModAbstract = 1u << 5,
  ModSynchronized = 1u << 6,
};

/// A field declaration (one declarator).
class FieldDecl final : public Decl {
public:
  FieldDecl(SourceLocation Loc, unsigned Modifiers, TypeRef Type,
            std::string Name, Expr *Init)
      : Decl(NodeKind::FieldDecl, Loc), Modifiers(Modifiers),
        Type(std::move(Type)), Name(std::move(Name)), Init(Init) {}

  unsigned Modifiers;
  TypeRef Type;
  std::string Name;
  Expr *Init; ///< May be null.

  static bool classof(const AstNode *N) {
    return N->getKind() == NodeKind::FieldDecl;
  }
};

/// A formal parameter.
struct ParamDecl {
  TypeRef Type;
  std::string Name;
};

/// A method or constructor declaration.
class MethodDecl final : public Decl {
public:
  MethodDecl(SourceLocation Loc, unsigned Modifiers, TypeRef ReturnType,
             std::string Name, std::vector<ParamDecl> Params, Block *Body,
             bool IsConstructor)
      : Decl(NodeKind::MethodDecl, Loc), Modifiers(Modifiers),
        ReturnType(std::move(ReturnType)), Name(std::move(Name)),
        Params(std::move(Params)), Body(Body), IsConstructor(IsConstructor) {}

  unsigned Modifiers;
  TypeRef ReturnType; ///< "void" name for void; ignored for constructors.
  std::string Name;
  std::vector<ParamDecl> Params;
  Block *Body; ///< Null for abstract/interface methods.
  bool IsConstructor;
  std::vector<TypeRef> Throws;

  static bool classof(const AstNode *N) {
    return N->getKind() == NodeKind::MethodDecl;
  }
};

/// A class or interface declaration. Interfaces are represented as classes
/// with the IsInterface flag; nested classes are supported.
class ClassDecl final : public Decl {
public:
  ClassDecl(SourceLocation Loc, unsigned Modifiers, std::string Name)
      : Decl(NodeKind::ClassDecl, Loc), Modifiers(Modifiers),
        Name(std::move(Name)) {}

  unsigned Modifiers;
  std::string Name;
  std::string SuperClass; ///< Empty when none.
  std::vector<std::string> Interfaces;
  bool IsInterface = false;
  std::vector<FieldDecl *> Fields;
  std::vector<MethodDecl *> Methods;
  std::vector<ClassDecl *> NestedClasses;

  static bool classof(const AstNode *N) {
    return N->getKind() == NodeKind::ClassDecl;
  }
};

/// A whole source file: package, imports, top-level types.
class CompilationUnit final : public Decl {
public:
  explicit CompilationUnit(SourceLocation Loc)
      : Decl(NodeKind::CompilationUnit, Loc) {}

  std::string PackageName; ///< Empty for the default package.
  std::vector<std::string> Imports;
  std::vector<ClassDecl *> Types;

  static bool classof(const AstNode *N) {
    return N->getKind() == NodeKind::CompilationUnit;
  }
};

//===----------------------------------------------------------------------===//
// AstContext
//===----------------------------------------------------------------------===//

/// Arena that owns every node of one or more parsed units. Raw pointers in
/// the tree remain valid for the context's lifetime.
/// Arena owner for one or more parses. Nodes are placement-new'd into a
/// bump-pointer arena — one pointer bump per node instead of one malloc —
/// and freed wholesale. Types with non-trivial destructors (today: any
/// node holding std::string/std::vector members) register a typed
/// destructor callback; trivially destructible nodes cost nothing to tear
/// down. reset() destroys all nodes but retains the slab memory, so a
/// context reused across files (e.g. the old/new versions of one mined
/// change) reaches a steady state with no allocator traffic at all.
///
/// Lifetime rule: every AstNode, and every pointer into the tree, dies at
/// reset() or context destruction. Analysis results that must outlive the
/// tree (analysis::AnalysisResult) copy what they keep — they hold no
/// node pointers.
class AstContext {
public:
  AstContext() = default;
  AstContext(const AstContext &) = delete;
  AstContext &operator=(const AstContext &) = delete;
  ~AstContext() { destroyAll(); }

  /// Allocates and owns a node of type \p T.
  template <typename T, typename... Args> T *create(Args &&...A) {
    void *Mem = Alloc.allocate(sizeof(T), alignof(T));
    T *Ptr = new (Mem) T(std::forward<Args>(A)...);
    if constexpr (!std::is_trivially_destructible_v<T>)
      Dtors.push_back({Ptr, [](void *P) { static_cast<T *>(P)->~T(); }});
    ++NumNodes;
    return Ptr;
  }

  std::size_t size() const { return NumNodes; }

  /// Destroys every node and rewinds the arena, retaining slab memory for
  /// the next parse. All node pointers are invalidated.
  void reset() {
    destroyAll();
    Dtors.clear();
    NumNodes = 0;
    Alloc.reset();
  }

  /// Bytes of node storage handed out since construction / last reset().
  std::size_t arenaBytes() const { return Alloc.bytesRequested(); }

  /// Slab capacity currently retained by the arena.
  std::size_t arenaCapacity() const { return Alloc.bytesCapacity(); }

  /// Number of slabs the arena currently holds.
  std::size_t arenaSlabs() const { return Alloc.slabCount(); }

private:
  struct DtorEntry {
    void *Ptr;
    void (*Destroy)(void *);
  };

  void destroyAll() {
    // Reverse order: children were created before their parents, so
    // parents (whose vectors point at children) go first.
    for (auto It = Dtors.rbegin(); It != Dtors.rend(); ++It)
      It->Destroy(It->Ptr);
  }

  support::Arena Alloc;
  std::vector<DtorEntry> Dtors;
  std::size_t NumNodes = 0;
};

} // namespace java
} // namespace diffcode

#endif // DIFFCODE_JAVAAST_AST_H
