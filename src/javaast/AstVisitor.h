//===- javaast/AstVisitor.h - Generic AST traversal -------------------------===//
//
// Part of the DiffCode project, a reproduction of "Inferring Crypto API
// Rules from Code Changes" (PLDI'18).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A preorder AST walker. Clients subclass AstVisitor and override the
/// visit hooks they care about; `walk` performs the full structural
/// recursion (declarations, statements, expressions) so clients never
/// re-implement it. Hooks return `true` to descend into children (the
/// default) or `false` to prune the subtree.
///
//===----------------------------------------------------------------------===//

#ifndef DIFFCODE_JAVAAST_ASTVISITOR_H
#define DIFFCODE_JAVAAST_ASTVISITOR_H

#include "javaast/Ast.h"

namespace diffcode {
namespace java {

/// Preorder visitor over the javaast tree. Null children are skipped.
class AstVisitor {
public:
  virtual ~AstVisitor() = default;

  /// Walks \p Node (any node kind; null is a no-op).
  void walk(const AstNode *Node);

protected:
  // Declaration hooks.
  virtual bool visitCompilationUnit(const CompilationUnit &) { return true; }
  virtual bool visitClass(const ClassDecl &) { return true; }
  virtual bool visitField(const FieldDecl &) { return true; }
  virtual bool visitMethod(const MethodDecl &) { return true; }

  // Statement hooks. visitStmt fires for every statement before the
  // kind-specific recursion.
  virtual bool visitStmt(const Stmt &) { return true; }

  // Expression hooks. visitExpr fires for every expression; the
  // kind-specific hooks below fire for the cases analyses most often
  // need.
  virtual bool visitExpr(const Expr &) { return true; }
  virtual bool visitCall(const MethodCallExpr &) { return true; }
  virtual bool visitNewObject(const NewObjectExpr &) { return true; }
  virtual bool visitName(const NameExpr &) { return true; }
  virtual bool visitLiteral(const Expr &) { return true; }

private:
  void walkClass(const ClassDecl &Class);
  void walkStmt(const Stmt *S);
  void walkExpr(const Expr *E);
};

} // namespace java
} // namespace diffcode

#endif // DIFFCODE_JAVAAST_ASTVISITOR_H
