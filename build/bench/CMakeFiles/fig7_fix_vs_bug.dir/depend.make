# Empty dependencies file for fig7_fix_vs_bug.
# This may be replaced when dependencies are built.
