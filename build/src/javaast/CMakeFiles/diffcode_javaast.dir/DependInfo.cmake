
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/javaast/Ast.cpp" "src/javaast/CMakeFiles/diffcode_javaast.dir/Ast.cpp.o" "gcc" "src/javaast/CMakeFiles/diffcode_javaast.dir/Ast.cpp.o.d"
  "/root/repo/src/javaast/AstPrinter.cpp" "src/javaast/CMakeFiles/diffcode_javaast.dir/AstPrinter.cpp.o" "gcc" "src/javaast/CMakeFiles/diffcode_javaast.dir/AstPrinter.cpp.o.d"
  "/root/repo/src/javaast/AstVisitor.cpp" "src/javaast/CMakeFiles/diffcode_javaast.dir/AstVisitor.cpp.o" "gcc" "src/javaast/CMakeFiles/diffcode_javaast.dir/AstVisitor.cpp.o.d"
  "/root/repo/src/javaast/Diagnostics.cpp" "src/javaast/CMakeFiles/diffcode_javaast.dir/Diagnostics.cpp.o" "gcc" "src/javaast/CMakeFiles/diffcode_javaast.dir/Diagnostics.cpp.o.d"
  "/root/repo/src/javaast/Lexer.cpp" "src/javaast/CMakeFiles/diffcode_javaast.dir/Lexer.cpp.o" "gcc" "src/javaast/CMakeFiles/diffcode_javaast.dir/Lexer.cpp.o.d"
  "/root/repo/src/javaast/Parser.cpp" "src/javaast/CMakeFiles/diffcode_javaast.dir/Parser.cpp.o" "gcc" "src/javaast/CMakeFiles/diffcode_javaast.dir/Parser.cpp.o.d"
  "/root/repo/src/javaast/Token.cpp" "src/javaast/CMakeFiles/diffcode_javaast.dir/Token.cpp.o" "gcc" "src/javaast/CMakeFiles/diffcode_javaast.dir/Token.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/diffcode_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
