//===- cluster/HierarchicalClustering.h - Complete-linkage clustering ------===//
//
// Part of the DiffCode project, a reproduction of "Inferring Crypto API
// Rules from Code Changes" (PLDI'18).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Agglomerative hierarchical clustering with complete linkage
/// (Section 4.3): start with one leaf per usage change, repeatedly merge
/// the two clusters with minimal linkage
///
///   clusterDist(X, Y) = max_{c1 in X, c2 in Y} usageDist(c1, c2),
///
/// recording every merge in a dendrogram. The dendrogram can be cut at a
/// threshold to obtain flat clusters and rendered as ASCII art for manual
/// rule elicitation (Figure 8).
///
//===----------------------------------------------------------------------===//

#ifndef DIFFCODE_CLUSTER_HIERARCHICALCLUSTERING_H
#define DIFFCODE_CLUSTER_HIERARCHICALCLUSTERING_H

#include "usage/UsageChange.h"

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

namespace diffcode {
namespace cluster {

/// Binary merge tree over clustered items.
class Dendrogram {
public:
  struct Node {
    int Left = -1;  ///< Child node index, or -1 for a leaf.
    int Right = -1;
    std::size_t Item = static_cast<std::size_t>(-1); ///< Leaf payload.
    double Height = 0.0; ///< Linkage distance at the merge (0 for leaves).

    bool isLeaf() const { return Left < 0; }
  };

  /// Number of clustered items (leaves).
  std::size_t leafCount() const { return NumLeaves; }
  const std::vector<Node> &nodes() const { return Nodes; }
  int root() const { return Root; }
  bool empty() const { return Nodes.empty(); }

  /// Flat clusters: cut every merge with Height > \p Threshold. Each
  /// cluster is a list of item indices; clusters ordered by size
  /// (descending) for readability.
  std::vector<std::vector<std::size_t>> cut(double Threshold) const;

  /// ASCII rendering; \p LeafLabel maps an item index to display text
  /// (may be multi-line — continuation lines are indented).
  std::string render(
      const std::function<std::string(std::size_t)> &LeafLabel) const;

private:
  friend Dendrogram
  agglomerativeCluster(std::size_t,
                       const std::function<double(std::size_t, std::size_t)> &);

  std::vector<Node> Nodes;
  int Root = -1;
  std::size_t NumLeaves = 0;

  void collectLeaves(int Index, std::vector<std::size_t> &Out) const;
};

/// Clusters \p NumItems items under item distance \p Dist with complete
/// linkage; O(n^3), fine for the post-filter scale (hundreds of usage
/// changes).
Dendrogram agglomerativeCluster(
    std::size_t NumItems,
    const std::function<double(std::size_t, std::size_t)> &Dist);

/// Convenience wrapper clustering usage changes by usageDist.
Dendrogram clusterUsageChanges(const std::vector<usage::UsageChange> &Changes);

} // namespace cluster
} // namespace diffcode

#endif // DIFFCODE_CLUSTER_HIERARCHICALCLUSTERING_H
