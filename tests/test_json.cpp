//===- tests/test_json.cpp - JsonWriter & ReportWriter tests ---------------===//

#include "core/ReportWriter.h"
#include "support/JsonWriter.h"

#include "corpus/CorpusGenerator.h"
#include "corpus/Miner.h"
#include "rules/CryptoChecker.h"

#include <gtest/gtest.h>

using namespace diffcode;

//===----------------------------------------------------------------------===//
// JsonWriter
//===----------------------------------------------------------------------===//

TEST(JsonWriter, ScalarsAndNesting) {
  JsonWriter W;
  W.beginObject();
  W.key("name").value("diffcode");
  W.key("count").value(42);
  W.key("ratio").value(0.5);
  W.key("ok").value(true);
  W.key("nothing").null();
  W.key("list").beginArray().value(1).value(2).endArray();
  W.key("nested").beginObject().key("x").value("y").endObject();
  W.endObject();
  EXPECT_EQ(W.take(),
            "{\"name\":\"diffcode\",\"count\":42,\"ratio\":0.5,"
            "\"ok\":true,\"nothing\":null,\"list\":[1,2],"
            "\"nested\":{\"x\":\"y\"}}");
}

TEST(JsonWriter, EmptyContainers) {
  JsonWriter W;
  W.beginObject();
  W.key("arr").beginArray().endArray();
  W.key("obj").beginObject().endObject();
  W.endObject();
  EXPECT_EQ(W.take(), "{\"arr\":[],\"obj\":{}}");
}

TEST(JsonWriter, ArrayOfObjects) {
  JsonWriter W;
  W.beginArray();
  W.beginObject().key("a").value(1).endObject();
  W.beginObject().key("b").value(2).endObject();
  W.endArray();
  EXPECT_EQ(W.take(), "[{\"a\":1},{\"b\":2}]");
}

TEST(JsonWriter, EscapesSpecials) {
  EXPECT_EQ(JsonWriter::escape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonWriter::escape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonWriter::escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(JsonWriter::escape(std::string_view("a\x01z", 3)), "a\\u0001z");
  // UTF-8 passes through (the top symbol in labels).
  EXPECT_EQ(JsonWriter::escape("⊤byte[]"), "⊤byte[]");
}

TEST(JsonWriter, NegativeAndLargeNumbers) {
  JsonWriter W;
  W.beginArray();
  W.value(static_cast<std::int64_t>(-5));
  W.value(static_cast<std::uint64_t>(1) << 40);
  W.endArray();
  EXPECT_EQ(W.take(), "[-5,1099511627776]");
}

//===----------------------------------------------------------------------===//
// ReportWriter
//===----------------------------------------------------------------------===//

namespace {

usage::UsageChange sampleChange() {
  static support::Interner Table;
  return usage::UsageChange::intern(
      Table, "Cipher",
      {{usage::NodeLabel::root("Cipher"),
        usage::NodeLabel::method("Cipher.getInstance/1"),
        usage::NodeLabel::arg(1, analysis::AbstractValue::strConst("AES"))}},
      {{usage::NodeLabel::root("Cipher"),
        usage::NodeLabel::method("Cipher.getInstance/1"),
        usage::NodeLabel::arg(1, analysis::AbstractValue::strConst(
                                     "AES/CBC/PKCS5Padding"))}},
      "proj1@c3");
}

} // namespace

TEST(ReportWriter, UsageChangeJson) {
  std::string Json = core::usageChangeToJson(sampleChange());
  EXPECT_EQ(Json,
            "{\"type\":\"Cipher\",\"origin\":\"proj1@c3\","
            "\"removed\":[\"Cipher Cipher.getInstance arg1:AES\"],"
            "\"added\":[\"Cipher Cipher.getInstance "
            "arg1:AES/CBC/PKCS5Padding\"]}");
}

TEST(ReportWriter, CorpusReportJsonStructure) {
  corpus::CorpusOptions Opts;
  Opts.NumProjects = 6;
  Opts.Seed = 3;
  corpus::Corpus C = corpus::CorpusGenerator(Opts).generate();
  corpus::Miner M(apimodel::CryptoApiModel::javaCryptoApi());
  core::DiffCode System(apimodel::CryptoApiModel::javaCryptoApi());
  core::CorpusReport Report =
      System.run({.Changes = M.mine(C),
                          .TargetClasses = {"Cipher"},
                          .BuildDendrograms = false});
  std::string Json = core::corpusReportToJson(Report);
  EXPECT_EQ(Json.front(), '{');
  EXPECT_EQ(Json.back(), '}');
  EXPECT_NE(Json.find("\"target\":\"Cipher\""), std::string::npos);
  EXPECT_NE(Json.find("\"afterFdup\":"), std::string::npos);
  EXPECT_NE(Json.find("\"kept\":["), std::string::npos);
  // Balanced braces/brackets (cheap well-formedness check).
  long Depth = 0;
  for (char Ch : Json) {
    if (Ch == '{' || Ch == '[')
      ++Depth;
    if (Ch == '}' || Ch == ']')
      --Depth;
    EXPECT_GE(Depth, 0);
  }
  EXPECT_EQ(Depth, 0);
}

TEST(ReportWriter, ProjectReportJson) {
  core::DiffCode System(apimodel::CryptoApiModel::javaCryptoApi());
  analysis::AnalysisResult Result =
      System
          .analyzeSourceChecked("class A { void m() throws Exception { "
                                "Cipher c = Cipher.getInstance(\"DES\"); } }")
          .Result;
  rules::UnitFacts Facts = rules::UnitFacts::from(Result);
  rules::CryptoChecker Checker;
  std::string Json =
      core::projectReportToJson(Checker.checkProject({Facts}));
  EXPECT_NE(Json.find("\"id\":\"R8\",\"applicable\":true,\"matched\":true"),
            std::string::npos);
  EXPECT_NE(Json.find("\"anyMatch\":true"), std::string::npos);
  EXPECT_NE(Json.find("\"site\":\"l1\""), std::string::npos);
}
