file(REMOVE_RECURSE
  "libdiffcode_javaast.a"
)
