//===- tests/test_robustness.cpp - Frontend/pipeline robustness ------------===//
//
// Fuzz-lite suites: the miner feeds the frontend arbitrary commit
// contents, so the lexer/parser/interpreter must terminate and stay
// in-bounds on mutated, truncated, and garbage inputs.
//
//===----------------------------------------------------------------------===//

#include "core/DiffCode.h"
#include "corpus/Scenario.h"
#include "javaast/Parser.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace diffcode;

namespace {

std::string sampleSource(unsigned Seed) {
  Rng R(Seed);
  corpus::ScenarioInstance Inst;
  Inst.Kind = static_cast<corpus::ScenarioKind>(
      Seed % corpus::NumScenarioKinds);
  Inst.Details = corpus::drawDetails(Inst.Kind, R);
  Inst.Details.Secure = Seed % 2 == 0;
  Inst.StyleSeed = Seed * 31 + 7;
  Inst.ClassName = "Robust";
  return renderScenario(Inst, "com.example.robust");
}

/// Parses + analyzes; asserts only termination and no diagnostics crash.
void analyzeLoose(const std::string &Source) {
  java::AstContext Ctx;
  java::DiagnosticsEngine Diags;
  java::CompilationUnit *Unit = java::parseJava(Source, Ctx, Diags);
  ASSERT_NE(Unit, nullptr);
  analysis::AnalysisOptions Opts;
  Opts.Fuel = 20000;
  analysis::AbstractInterpreter Interp(
      apimodel::CryptoApiModel::javaCryptoApi(), Opts);
  analysis::AnalysisResult Result = Interp.analyze(Unit);
  // Every recorded object id must be in the table.
  for (const analysis::UsageLog &Log : Result.Executions)
    for (const auto &[ObjId, Events] : Log) {
      ASSERT_LT(ObjId, Result.Objects.size());
      (void)Events;
    }
}

} // namespace

//===----------------------------------------------------------------------===//
// Truncation: every prefix of a valid file parses without hanging.
//===----------------------------------------------------------------------===//

class TruncationRobustness : public ::testing::TestWithParam<int> {};

TEST_P(TruncationRobustness, PrefixesTerminate) {
  std::string Source = sampleSource(GetParam());
  // Cut at ~16 positions spread through the file.
  for (std::size_t Step = 1; Step <= 16; ++Step) {
    std::size_t Cut = Source.size() * Step / 17;
    analyzeLoose(Source.substr(0, Cut));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TruncationRobustness, ::testing::Range(0, 8));

//===----------------------------------------------------------------------===//
// Mutation: random single-character edits keep the frontend in-bounds.
//===----------------------------------------------------------------------===//

class MutationRobustness : public ::testing::TestWithParam<int> {};

TEST_P(MutationRobustness, RandomEditsTerminate) {
  Rng R(GetParam() * 2654435761u + 1);
  std::string Source = sampleSource(GetParam());
  static const char Chars[] = "{}()[];,.\"'+-*/<>=! abcZ019$_\\\n";
  for (int Round = 0; Round < 24; ++Round) {
    std::string Mutated = Source;
    for (int Edit = 0, N = 1 + static_cast<int>(R.range(0, 4)); Edit < N;
         ++Edit) {
      std::size_t Pos = R.index(Mutated.size());
      switch (R.range(0, 2)) {
      case 0: // substitute
        Mutated[Pos] = Chars[R.index(sizeof(Chars) - 1)];
        break;
      case 1: // delete
        Mutated.erase(Pos, 1);
        break;
      default: // insert
        Mutated.insert(Pos, 1, Chars[R.index(sizeof(Chars) - 1)]);
        break;
      }
      if (Mutated.empty())
        Mutated = "x";
    }
    analyzeLoose(Mutated);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MutationRobustness, ::testing::Range(0, 10));

//===----------------------------------------------------------------------===//
// Garbage: pure noise inputs.
//===----------------------------------------------------------------------===//

TEST(GarbageRobustness, PureNoiseTerminates) {
  Rng R(424242);
  for (int Round = 0; Round < 20; ++Round) {
    std::string Noise;
    std::size_t Len = R.range(0, 400);
    for (std::size_t I = 0; I < Len; ++I)
      Noise += static_cast<char>(R.range(32, 126));
    analyzeLoose(Noise);
  }
}

TEST(GarbageRobustness, DeeplyNestedBracesTerminate) {
  std::string Source = "class A { void m() { ";
  for (int I = 0; I < 200; ++I)
    Source += "{ ";
  Source += "x = 1; ";
  for (int I = 0; I < 200; ++I)
    Source += "} ";
  Source += "} }";
  analyzeLoose(Source);
}

TEST(GarbageRobustness, DeeplyNestedParensTerminate) {
  std::string Source = "class A { int m() { return ";
  for (int I = 0; I < 150; ++I)
    Source += "(1 + ";
  Source += "0";
  for (int I = 0; I < 150; ++I)
    Source += ")";
  Source += "; } }";
  analyzeLoose(Source);
}

TEST(GarbageRobustness, ManyClassesTerminate) {
  std::string Source;
  for (int I = 0; I < 120; ++I)
    Source += "class C" + std::to_string(I) +
              " { void m() throws Exception { Cipher c = "
              "Cipher.getInstance(\"AES\"); } }\n";
  analyzeLoose(Source);
}

//===----------------------------------------------------------------------===//
// End-to-end: mutated diffs never crash the whole pipeline.
//===----------------------------------------------------------------------===//

TEST(GarbageRobustness, PipelineOnMutatedChange) {
  Rng R(77);
  core::DiffCode System(apimodel::CryptoApiModel::javaCryptoApi());
  for (int Round = 0; Round < 8; ++Round) {
    corpus::CodeChange Change;
    Change.OldCode = sampleSource(Round);
    Change.NewCode = sampleSource(Round);
    // Corrupt the new version.
    std::size_t Pos = R.index(Change.NewCode.size());
    Change.NewCode.erase(Pos, R.range(1, 40));
    for (const std::string &Target :
         apimodel::CryptoApiModel::javaCryptoApi().targetClasses())
      (void)System.usageChangesFor(Change, Target);
  }
  SUCCEED();
}

//===----------------------------------------------------------------------===//
// Mass mutation: 1,000 seeded byte-level mutants (full 0-255 byte range,
// not just plausible Java characters) sharded across 10 parameterized
// cases so failures report which shard — and therefore which seeds —
// misbehaved.
//===----------------------------------------------------------------------===//

class MassMutationRobustness : public ::testing::TestWithParam<int> {};

TEST_P(MassMutationRobustness, ThousandByteLevelMutantsTerminate) {
  int Shard = GetParam();
  for (int Case = 0; Case < 100; ++Case) {
    unsigned Seed = static_cast<unsigned>(Shard * 100 + Case);
    Rng R(Seed * 1099511628211ull + 3);
    std::string Mutated = sampleSource(Seed % 16);
    for (int Edit = 0, N = 1 + static_cast<int>(R.range(0, 7)); Edit < N;
         ++Edit) {
      std::size_t Pos = R.index(Mutated.size());
      char Byte = static_cast<char>(R.range(0, 255));
      switch (R.range(0, 2)) {
      case 0: // substitute
        Mutated[Pos] = Byte;
        break;
      case 1: // delete
        Mutated.erase(Pos, 1);
        break;
      default: // insert
        Mutated.insert(Pos, 1, Byte);
        break;
      }
      if (Mutated.empty())
        Mutated = "x";
    }
    analyzeLoose(Mutated);
  }
}

INSTANTIATE_TEST_SUITE_P(Shards, MassMutationRobustness,
                         ::testing::Range(0, 10));

//===----------------------------------------------------------------------===//
// Containment: a mutant may degrade its own record but must never change
// the pipeline's outcome or leave a partially-written report.
//===----------------------------------------------------------------------===//

#include "core/ReportWriter.h"

namespace {

/// Structural JSON sanity: balanced containers outside strings, no open
/// string at the end — a truncated or interleaved write fails this.
void expectBalancedJson(const std::string &Json) {
  ASSERT_FALSE(Json.empty());
  long Depth = 0;
  bool InString = false, Escape = false;
  for (char C : Json) {
    if (Escape) {
      Escape = false;
      continue;
    }
    if (InString) {
      if (C == '\\')
        Escape = true;
      else if (C == '"')
        InString = false;
      continue;
    }
    if (C == '"')
      InString = true;
    else if (C == '{' || C == '[')
      ++Depth;
    else if (C == '}' || C == ']') {
      --Depth;
      ASSERT_GE(Depth, 0);
    }
  }
  EXPECT_EQ(Depth, 0);
  EXPECT_FALSE(InString);
}

std::string mutateBytes(std::string Text, Rng &R, int Edits) {
  for (int Edit = 0; Edit < Edits; ++Edit) {
    std::size_t Pos = R.index(Text.size());
    char Byte = static_cast<char>(R.range(0, 255));
    switch (R.range(0, 2)) {
    case 0:
      Text[Pos] = Byte;
      break;
    case 1:
      Text.erase(Pos, 1);
      break;
    default:
      Text.insert(Pos, 1, Byte);
      break;
    }
    if (Text.empty())
      Text = "x";
  }
  return Text;
}

} // namespace

class MutantContainment : public ::testing::TestWithParam<int> {};

TEST_P(MutantContainment, MutantsKeepTaxonomyAndReportsComplete) {
  int Shard = GetParam();
  std::vector<corpus::CodeChange> Storage;
  for (int Case = 0; Case < 20; ++Case) {
    unsigned Seed = static_cast<unsigned>(Shard * 20 + Case);
    Rng R(Seed * 6364136223846793005ull + 11);
    corpus::CodeChange Change;
    Change.ProjectName = "mutant" + std::to_string(Seed);
    Change.OldCode = sampleSource(Seed % 16);
    Change.NewCode =
        mutateBytes(sampleSource(Seed % 16), R,
                    1 + static_cast<int>(R.range(0, 7)));
    Storage.push_back(std::move(Change));
  }
  std::vector<const corpus::CodeChange *> Mined;
  for (const corpus::CodeChange &C : Storage)
    Mined.push_back(&C);

  const apimodel::CryptoApiModel &Api =
      apimodel::CryptoApiModel::javaCryptoApi();
  core::PipelineConfig Opts;
  Opts.Limits.Analysis.Fuel = 20000;
  core::DiffCode System(Api, Opts);
  core::CorpusReport Report;
  // The process-level contract: no mutant aborts the run.
  ASSERT_NO_THROW(Report = System.run(
                    {.Changes = Mined, .TargetClasses = Api.targetClasses()}));
  ASSERT_EQ(Report.Changes.size(), Mined.size());

  std::size_t Counted = 0;
  for (const core::ChangeRecord &Record : Report.Changes) {
    // Every record lands in the documented taxonomy...
    EXPECT_LT(static_cast<std::size_t>(Record.Status),
              core::NumChangeStatuses);
    EXPECT_STRNE(core::changeStatusName(Record.Status), "unknown");
    // ...and serializes completely, even when its source was garbage.
    expectBalancedJson(core::changeRecordToJson(Record));
  }
  for (std::size_t I = 0; I < core::NumChangeStatuses; ++I)
    Counted += Report.Health.StatusCounts[I];
  EXPECT_EQ(Counted, Report.Changes.size());
  expectBalancedJson(core::corpusReportToJson(Report));
}

INSTANTIATE_TEST_SUITE_P(Shards, MutantContainment, ::testing::Range(0, 10));
