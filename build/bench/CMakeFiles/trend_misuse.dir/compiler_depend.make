# Empty compiler generated dependencies file for trend_misuse.
# This may be replaced when dependencies are built.
