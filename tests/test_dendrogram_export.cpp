//===- tests/test_dendrogram_export.cpp - DOT export tests -----------------===//

#include "cluster/DendrogramExport.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace diffcode;
using namespace diffcode::cluster;

namespace {

Dendrogram clusterPoints(const std::vector<double> &Points) {
  return agglomerativeCluster(Points.size(),
                              [&](std::size_t I, std::size_t J) {
                                return std::abs(Points[I] - Points[J]) / 100.0;
                              });
}

std::string label(std::size_t Item) {
  return "item" + std::to_string(Item);
}

std::size_t countOccurrences(const std::string &Text,
                             const std::string &Needle) {
  std::size_t Count = 0, Pos = 0;
  while ((Pos = Text.find(Needle, Pos)) != std::string::npos) {
    ++Count;
    Pos += Needle.size();
  }
  return Count;
}

} // namespace

TEST(DendrogramExport, EmptyTree) {
  Dendrogram Empty;
  std::string Dot = toDot(Empty, label);
  EXPECT_NE(Dot.find("digraph"), std::string::npos);
  EXPECT_NE(Dot.find("}"), std::string::npos);
}

TEST(DendrogramExport, StructureMatchesTree) {
  Dendrogram Tree = clusterPoints({0.0, 1.0, 50.0});
  std::string Dot = toDot(Tree, label);
  // 3 leaves + 2 merge nodes; 4 edges.
  EXPECT_EQ(countOccurrences(Dot, "shape=box"), 3u);
  EXPECT_EQ(countOccurrences(Dot, "shape=ellipse"), 2u);
  EXPECT_EQ(countOccurrences(Dot, "->"), 4u);
  EXPECT_NE(Dot.find("item0"), std::string::npos);
  EXPECT_NE(Dot.find("item2"), std::string::npos);
}

TEST(DendrogramExport, ColorsFlatClusters) {
  Dendrogram Tree = clusterPoints({0.0, 1.0, 50.0, 51.0});
  DotOptions Opts;
  Opts.ColorCutThreshold = 0.1;
  std::string Dot = toDot(Tree, label, Opts);
  // Two clusters -> leaves carry fill colors.
  EXPECT_EQ(countOccurrences(Dot, "style=filled"), 4u);
  EXPECT_GE(countOccurrences(Dot, "fillcolor"), 4u);
}

TEST(DendrogramExport, EscapesLabels) {
  Dendrogram Tree = clusterPoints({0.0, 1.0});
  std::string Dot = toDot(Tree, [](std::size_t) {
    return std::string("line1\nwith \"quotes\"");
  });
  EXPECT_NE(Dot.find("line1\\nwith \\\"quotes\\\""), std::string::npos);
}

TEST(DendrogramExport, CustomGraphName) {
  Dendrogram Tree = clusterPoints({0.0});
  DotOptions Opts;
  Opts.GraphName = "cipher_changes";
  std::string Dot = toDot(Tree, label, Opts);
  EXPECT_NE(Dot.find("digraph \"cipher_changes\""), std::string::npos);
}
