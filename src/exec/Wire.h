//===- exec/Wire.h - Binary wire format & frame codec ----------------------===//
//
// Part of the DiffCode project, a reproduction of "Inferring Crypto API
// Rules from Code Changes" (PLDI'18).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The byte-level layer of the coordinator/worker protocol: a little-
/// endian primitive codec (WireWriter/WireReader) and a checksummed
/// frame format. One frame is
///
///   magic   u32   0x44465731 ("DFW1")
///   type    u32   protocol frame type (exec/Protocol.h)
///   length  u32   payload byte count
///   check   u32   FNV-1a over the payload
///   payload length bytes
///
/// FrameDecoder reassembles frames from arbitrary read(2) chunk
/// boundaries and *validates before trusting*: a bad magic, an insane
/// length, or a checksum mismatch flips the decoder into a sticky error
/// state — the supervisor treats that worker as poisoned (kill, restart,
/// retry the unit), which is exactly what the ProcFrameCorrupt chaos
/// site exercises.
///
/// Everything is bounds-checked; WireReader never reads past its buffer
/// and reports truncation through ok() instead of UB.
///
//===----------------------------------------------------------------------===//

#ifndef DIFFCODE_EXEC_WIRE_H
#define DIFFCODE_EXEC_WIRE_H

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace diffcode {
namespace exec {

/// Frame header constants.
inline constexpr std::uint32_t WireMagic = 0x44465731; // "DFW1"
inline constexpr std::size_t WireHeaderBytes = 16;
/// Sanity bound: no legitimate frame (one work unit or one change
/// record) comes close; anything larger means a corrupt length field.
inline constexpr std::uint32_t MaxFramePayload = 1u << 30;

/// FNV-1a over \p Bytes — the frame checksum.
std::uint32_t wireChecksum(std::string_view Bytes);

/// Appends little-endian primitives and length-prefixed strings to a
/// byte buffer.
class WireWriter {
public:
  void u8(std::uint8_t V) { Buf.push_back(static_cast<char>(V)); }
  void u32(std::uint32_t V);
  void u64(std::uint64_t V);
  /// Length-prefixed (u32) raw bytes; embedded NULs are fine.
  void str(std::string_view S);

  const std::string &bytes() const { return Buf; }
  std::string take() { return std::move(Buf); }
  /// Drops the contents but keeps the capacity — hot encode loops reuse
  /// one writer instead of reallocating per message.
  void clear() { Buf.clear(); }

private:
  std::string Buf;
};

/// Bounds-checked reader over one payload. After any failed extraction
/// ok() is false and every further extraction returns 0/"" — callers
/// check ok() once at the end of a decode instead of after every field.
class WireReader {
public:
  explicit WireReader(std::string_view Bytes) : Buf(Bytes) {}

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  std::string_view str();

  bool ok() const { return Ok; }
  /// True when the whole payload was consumed (trailing garbage in a
  /// frame is a protocol error too).
  bool atEnd() const { return Ok && Pos == Buf.size(); }

private:
  bool take(std::size_t N, const char *&Out);

  std::string_view Buf;
  std::size_t Pos = 0;
  bool Ok = true;
};

/// One decoded frame.
struct Frame {
  std::uint32_t Type = 0;
  std::string Payload;
};

/// One decoded frame, borrowing its payload from the decoder's buffer.
/// Valid only until the next feed()/next()/nextView() call — the hot
/// path (one Result frame per change) decodes through this to avoid a
/// per-frame payload copy.
struct FrameView {
  std::uint32_t Type = 0;
  std::string_view Payload;
};

/// Serializes a frame (header + checksum + payload).
std::string encodeFrame(std::uint32_t Type, std::string_view Payload);

/// Appends a serialized frame to \p Out without intermediate buffers —
/// the encode-side hot path (workers coalesce many frames per write).
void appendFrame(std::string &Out, std::uint32_t Type,
                 std::string_view Payload);

/// Incremental frame reassembler over a byte stream.
class FrameDecoder {
public:
  /// Appends raw bytes read from the pipe.
  void feed(const char *Data, std::size_t Size);

  /// Extracts the next complete frame, if any. Returns std::nullopt when
  /// more bytes are needed *or* after a protocol error — check bad() to
  /// tell the two apart.
  std::optional<Frame> next();

  /// Zero-copy variant of next(): the returned payload view aliases the
  /// decoder's buffer and is invalidated by the next feed()/next()/
  /// nextView(). Validation (magic, length, checksum) is identical —
  /// next() is implemented on top of this.
  std::optional<FrameView> nextView();

  /// Sticky error state (bad magic / oversized length / checksum
  /// mismatch). A decoder never recovers: resynchronizing a corrupt
  /// byte stream silently would defeat the whole point of framing.
  bool bad() const { return Bad; }
  const std::string &error() const { return Error; }

  /// Bytes currently buffered but not yet consumed (truncation
  /// diagnostics: nonzero at EOF means a frame was cut mid-flight).
  std::size_t pendingBytes() const { return Buf.size() - Pos; }

private:
  std::string Buf;
  std::size_t Pos = 0;
  bool Bad = false;
  std::string Error;
};

} // namespace exec
} // namespace diffcode

#endif // DIFFCODE_EXEC_WIRE_H
