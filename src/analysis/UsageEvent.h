//===- analysis/UsageEvent.h - Abstract usage records ----------------------===//
//
// Part of the DiffCode project, a reproduction of "Inferring Crypto API
// Rules from Code Changes" (PLDI'18).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// AUses : AObjs -> P(Methods x AStates), realized per execution. A
/// UsageEvent pairs the invoked method with the abstract argument values
/// at the call — the slice of the abstract state sigma^a the usage DAGs of
/// Section 3.4 consume (children of a method node are its argument
/// values).
///
//===----------------------------------------------------------------------===//

#ifndef DIFFCODE_ANALYSIS_USAGEEVENT_H
#define DIFFCODE_ANALYSIS_USAGEEVENT_H

#include "analysis/AbstractValue.h"

#include <map>
#include <string>
#include <vector>

namespace diffcode {
namespace analysis {

/// One (method, abstract state) pair attached to an abstract object.
struct UsageEvent {
  std::string MethodSig;           ///< "Cipher.init/3" style signature.
  std::vector<AbstractValue> Args; ///< Argument values, receiver excluded.

  bool operator==(const UsageEvent &Other) const {
    return MethodSig == Other.MethodSig && Args == Other.Args;
  }
};

/// The usage log of one forked execution: abstract object id -> events in
/// program order (duplicates collapse in the DAG, which is a set).
using UsageLog = std::map<unsigned, std::vector<UsageEvent>>;

} // namespace analysis
} // namespace diffcode

#endif // DIFFCODE_ANALYSIS_USAGEEVENT_H
