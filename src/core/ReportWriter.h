//===- core/ReportWriter.h - JSON export of pipeline results ---------------===//
//
// Part of the DiffCode project, a reproduction of "Inferring Crypto API
// Rules from Code Changes" (PLDI'18).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Serializes the pipeline's outputs to JSON for downstream tooling: a
/// usage change (its signed feature paths), a whole CorpusReport (per-
/// class filter stats + kept changes), and a CryptoChecker ProjectReport
/// (per-rule verdicts and violating sites). The paper published its
/// commits and reports at diffcode.ethz.ch; this is the machine-readable
/// equivalent.
///
//===----------------------------------------------------------------------===//

#ifndef DIFFCODE_CORE_REPORTWRITER_H
#define DIFFCODE_CORE_REPORTWRITER_H

#include "core/DiffCode.h"
#include "rules/CryptoChecker.h"

#include <string>

namespace diffcode {
namespace core {

/// One usage change as a JSON object
/// {"type":..,"origin":..,"removed":[..],"added":[..]}.
std::string usageChangeToJson(const usage::UsageChange &Change);

/// One processed change with its containment status:
/// {"origin":..,"kind":..,"status":..,"detail":..,"steps":..,
///  "perClass":[{"target":..,"changes":[..]}],"classification":[..]}.
/// Byte-identical serialization is what the fault-injection harness
/// compares across thread counts.
std::string changeRecordToJson(const ChangeRecord &Record);

/// The whole corpus pipeline result:
/// {"classes":[{"target":..,"total":..,"fsame":..,..,"kept":[...]}],
///  "changes":..,"health":{"statuses":{..},"clusteringFailures":..,
///  "worstOffenders":[..]}}. A class clustered by the sharded engine
/// additionally carries {"sharding":{"shards":..,"largestShard":..,
/// "representatives":..,"peakMatrixBytes":..}}; unsharded runs emit no
/// such key, keeping their serialization byte-identical to earlier
/// releases.
std::string corpusReportToJson(const CorpusReport &Report);

/// A CryptoChecker project report:
/// {"rules":[{"id":..,"applicable":..,"matched":..,"violations":[..]}],
///  "anyMatch":..}.
std::string projectReportToJson(const rules::ProjectReport &Report);

} // namespace core
} // namespace diffcode

#endif // DIFFCODE_CORE_REPORTWRITER_H
