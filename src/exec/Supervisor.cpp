//===- exec/Supervisor.cpp -------------------------------------------------===//
//
// The coordinator event loop and the worker subprocess main. See
// Supervisor.h and DESIGN.md "Supervised execution" for the contracts;
// the short version:
//
//   * at most two units in flight per worker — the one it is running
//     plus one queued in its request pipe, so finishing a unit never
//     blocks on a coordinator round-trip — and the only backpressure
//     point is the worker's own blocking result writes, which the
//     coordinator drains continuously;
//   * results stream in unit order, so the un-received remainder of a
//     failed unit is always a deterministic suffix;
//   * every process-level fault decision inside a worker is a pure
//     function of (plan seed, change index, site, attempt number), so a
//     chaos campaign produces the same terminal statuses at any worker
//     count — the property the chaos suite locks down.
//
//===----------------------------------------------------------------------===//

#include "exec/Supervisor.h"

#include "exec/Protocol.h"
#include "exec/Wire.h"
#include "obs/Observer.h"
#include "support/FaultInjection.h"
#include "support/Process.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <ctime>
#include <deque>
#include <new>
#include <string>

#include <poll.h>
#include <sys/resource.h>
#include <unistd.h>

using namespace diffcode;
using namespace diffcode::exec;

namespace {

using Clock = std::chrono::steady_clock;

void sleepMs(std::uint64_t Ms) {
  struct timespec Ts;
  Ts.tv_sec = static_cast<time_t>(Ms / 1000);
  Ts.tv_nsec = static_cast<long>(Ms % 1000) * 1000000L;
  while (nanosleep(&Ts, &Ts) == -1 && errno == EINTR) {
  }
}

[[noreturn]] void workerOomHandler() { _exit(OomExitCode); }

//===----------------------------------------------------------------------===//
// Worker subprocess
//===----------------------------------------------------------------------===//

/// The forked child's whole life: handshake, then Work frames in, result
/// streams out, until Shutdown or request-pipe EOF. Never returns to the
/// fork point — spawnProcess _exits with the return value. Exit codes:
/// 0 clean, 2 protocol error on the request stream, OomExitCode when
/// allocation fails under the memory limit (or the ProcOomExit site).
int workerMain(const core::DiffCode &System,
               const core::PipelineRequest &Request, unsigned SlotIndex,
               unsigned Incarnation, int ReqFd, int RespFd) {
  ::signal(SIGPIPE, SIG_IGN);
  const core::ExecutionPolicy &Policy = Request.Exec;
  const support::FaultPlan &Plan = System.config().Faults;

  if (Policy.WorkerMemoryLimitMb > 0) {
    struct rlimit Lim;
    Lim.rlim_cur = Lim.rlim_max =
        static_cast<rlim_t>(Policy.WorkerMemoryLimitMb) * 1024 * 1024;
    ::setrlimit(RLIMIT_AS, &Lim);
    // A failed allocation takes the distinguished OOM exit instead of an
    // unhandled bad_alloc (which would be a generic crash).
    std::set_new_handler(workerOomHandler);
  }

  {
    // Slow-start chaos: delay the handshake. Latency only — no result
    // depends on when a worker comes up, so byte-identity holds
    // wherever this fires.
    support::FaultScope Scope(&Plan, support::faultMix(0x536c6f77) + SlotIndex);
    if (support::faultPoint(support::FaultSite::ProcSlowStart, Incarnation))
      sleepMs(50);
  }

  // The worker interns on top of the table it inherited through fork():
  // every id below the fork-time high-water mark is byte-for-byte the
  // parent's id (copy-on-write snapshot), so only genuinely new entries
  // are ever re-interned or streamed as defs — on a warmed-up parent
  // table that is close to nothing. Hello advertises the base so the
  // coordinator maps inherited ids through the identity.
  support::Interner &LocalTable =
      Request.Labels ? *Request.Labels : *System.labels();
  DefSender Defs(LocalTable);

  // Observed workers run their own Observer: per-change spans and the
  // interpreter metrics land here and ship back per unit in Telemetry
  // frames. Detection is the fork-inherited request pointer — no flag
  // crosses the wire. Hello advertises the tracer epoch (absolute
  // CLOCK_MONOTONIC ns) so the coordinator can align span timestamps
  // into its own timeline; 0 means "unobserved, no telemetry coming".
  const bool Observed = Request.Metrics != nullptr;
  obs::Observer WorkerObs;
  std::size_t SpansShipped = 0;

  std::string Hello =
      encodeHello(Defs.baseLabels(), Defs.basePaths(),
                  Observed ? WorkerObs.Trace.epochSteadyNs() : 0);
  if (support::writeFull(RespFd, Hello.data(), Hello.size()) < 0)
    return 0;
  FrameDecoder Decoder;
  char Buf[1 << 16];
  WorkUnit Unit;
  // Result frames are coalesced into one write per unit (flushing early
  // only past FlushBytes, staying under the pipe's buffer): per-change
  // writes would wake the coordinator once per change, and on a busy or
  // small machine that context-switch ping-pong dominates the protocol
  // cost. The byte stream is identical either way — the FrameDecoder is
  // chunk-boundary-agnostic — the coordinator just sees it in fewer,
  // larger reads.
  constexpr std::size_t FlushBytes = 1 << 15;
  std::string Out;
  WireWriter Scratch;
  for (;;) {
    std::optional<Frame> F;
    while (!(F = Decoder.next())) {
      if (Decoder.bad())
        return 2;
      ssize_t N = support::readSome(ReqFd, Buf, sizeof(Buf));
      if (N <= 0)
        return 0; // coordinator went away: nothing left to do
      Decoder.feed(Buf, static_cast<std::size_t>(N));
    }
    if (F->Type == static_cast<std::uint32_t>(FrameType::Shutdown))
      return 0;
    if (F->Type != static_cast<std::uint32_t>(FrameType::Work) ||
        !decodeWork(F->Payload, Unit))
      return 2;

    Out.clear();
    for (std::uint64_t Index : Unit.Indices) {
      if (Index >= Request.Changes.size())
        return 2;
      // Same scope identity as the in-process stage (key = global change
      // index): one fault plan hits the same changes either way. The
      // process-level sites key on the attempt number, so a retried
      // change re-decides deterministically — and can deterministically
      // stop failing, which is what the retry budget exists for.
      support::FaultScope Scope(&Plan, Index);
      if (support::faultPoint(support::FaultSite::ProcKill, Unit.Attempt))
        ::raise(SIGKILL);
      if (support::faultPoint(support::FaultSite::ProcOomExit, Unit.Attempt))
        _exit(OomExitCode);
      if (support::faultPoint(support::FaultSite::ProcHang, Unit.Attempt))
        for (;;)
          sleepMs(1000); // the watchdog's problem now

      core::ChangeRecord Record;
      {
        // Same span name as the in-process stage, so the stitched trace
        // aggregates worker and coordinator work under one stage row.
        obs::Span ChangeSpan(Observed ? &WorkerObs.Trace : nullptr,
                             "processChange");
        Record = System.processChange(*Request.Changes[Index],
                                      Request.TargetClasses,
                                      Request.ClassifyWith, LocalTable,
                                      Observed ? &WorkerObs.Metrics : nullptr);
      }

      Defs.flush(Out); // defs strictly before the result that needs them
      std::size_t FrameStart = Out.size();
      appendResult(Out, Scratch, Index, Record);
      if (support::faultPoint(support::FaultSite::ProcFrameCorrupt,
                              Unit.Attempt)) {
        // Two deterministic flavors: truncate mid-frame (stream ends
        // with pending bytes) or flip a payload byte (checksum
        // mismatch). Either way the result for this change never
        // decodes, then die so the poisoned stream ends here.
        if (support::faultMix(Index) & 1)
          Out.resize(FrameStart + (Out.size() - FrameStart) / 2);
        else
          Out[FrameStart + WireHeaderBytes] = static_cast<char>(
              Out[FrameStart + WireHeaderBytes] ^ 0x40);
        support::writeFull(RespFd, Out.data(), Out.size());
        return 2;
      }
      if (Out.size() >= FlushBytes) {
        if (support::writeFull(RespFd, Out.data(), Out.size()) < 0)
          return 0;
        Out.clear();
      }
    }
    if (Observed) {
      // Telemetry coalesces with the unit's last write: the spans
      // completed since the previous flush plus the registry's full
      // (cumulative) snapshot. Unobserved workers skip this entirely,
      // so the clean path's byte stream is unchanged.
      std::vector<obs::Tracer::Event> NewSpans =
          WorkerObs.Trace.eventsFrom(SpansShipped);
      SpansShipped += NewSpans.size();
      appendTelemetry(Out, Scratch, Incarnation, NewSpans,
                      WorkerObs.Metrics.snapshot());
    }
    Out += encodeUnitDone(Unit.Id);
    if (support::writeFull(RespFd, Out.data(), Out.size()) < 0)
      return 0;
  }
}

//===----------------------------------------------------------------------===//
// Coordinator
//===----------------------------------------------------------------------===//

/// A queued (not yet dispatched) work unit. ReadyAt gates dispatch for
/// backoff; Attempt counts singleton retries (bisected halves are new
/// units at attempt 0).
struct PendingUnit {
  std::uint64_t Id = 0;
  std::uint32_t Attempt = 0;
  std::vector<std::uint64_t> Indices;
  Clock::time_point ReadyAt;
};

/// Units a worker may hold at once: the one it is running plus one
/// queued in its request pipe. The spare means a worker that finishes a
/// unit starts the next immediately instead of blocking on a
/// write-UnitDone / read-Work round-trip through the coordinator — on a
/// loaded or single-core host that round-trip is two context switches
/// per unit and dominates clean-path supervision cost. Depth stops at
/// two because the spare already hides the full round-trip; deeper
/// queues only grow the re-dispatch batch a dead worker strands.
constexpr std::size_t MaxInFlight = 2;

/// One worker slot: a pid, its two pipe ends, and the per-incarnation
/// decode state. Everything protocol-scoped (decoder, id remap, unit
/// progress) is reset on respawn — a fresh worker shares nothing with
/// its predecessor's byte stream.
struct WorkerSlot {
  unsigned Index = 0;
  unsigned Incarnation = 0;
  pid_t Pid = -1;
  int ReqFd = -1;  ///< Coordinator writes Work/Shutdown here (blocking).
  int RespFd = -1; ///< Coordinator reads results here (non-blocking).
  FrameDecoder Decoder;
  IdRemap Remap;
  /// Worker tracer epoch minus coordinator tracer epoch (Hello, observed
  /// runs only): the per-incarnation offset that aligns Telemetry span
  /// timestamps into the coordinator's timeline. Both clocks are the
  /// same system-wide CLOCK_MONOTONIC, so the aligned events stay
  /// monotone per lane by construction.
  std::int64_t EpochOffsetNs = 0;
  /// The incarnation's latest cumulative metrics snapshot (Telemetry is
  /// cumulative, so later frames replace earlier ones). Retired into the
  /// coordinator's collection when the incarnation dies, merged at the
  /// end of the run.
  obs::Snapshot LatestTelemetry;
  bool TimedOut = false;
  std::string PoisonReason; ///< Non-empty: result stream was corrupt.
  /// Dispatched, un-finished units in the order the worker runs them.
  /// The front is the unit the worker is (or was) actually executing;
  /// anything behind it is still sitting unread in the request pipe.
  std::deque<PendingUnit> InFlight;
  std::size_t Received = 0; ///< Results committed for the front unit.
  Clock::time_point DispatchedAt; ///< When the front unit started.
  Clock::time_point Deadline;
  bool HasDeadline = false;

  bool alive() const { return Pid != -1; }
  bool busy() const { return !InFlight.empty(); }
};

struct Coordinator {
  const core::DiffCode &System;
  const core::PipelineRequest &Request;
  const core::ExecutionPolicy &Policy;
  support::Interner &Table;
  SupervisionStats &Stats;

  std::vector<core::ChangeRecord> Records;
  std::size_t Outstanding = 0; ///< Changes without a committed record yet.
  std::deque<PendingUnit> Queue;
  std::uint64_t NextUnitId = 0;
  std::deque<WorkerSlot> Slots; // deque: FrameDecoder needn't be movable
  obs::Histogram *UnitLatency = nullptr;
  /// The run's observer (Request.Metrics); null when unobserved. Worker
  /// telemetry merges here: spans into Obs->Trace as they arrive,
  /// metrics snapshots at the end of the run.
  obs::Observer *Obs = nullptr;
  /// Final snapshots of dead incarnations (their committed results are
  /// kept, so their metrics count too).
  std::vector<obs::Snapshot> RetiredTelemetry;

  Coordinator(const core::DiffCode &System,
              const core::PipelineRequest &Request, support::Interner &Table,
              SupervisionStats &Stats)
      : System(System), Request(Request), Policy(Request.Exec), Table(Table),
        Stats(Stats) {}

  void run();

  void buildQueue();
  bool spawnSlot(WorkerSlot &S);
  void closeSlotFds(WorkerSlot &S);
  void dispatchReady(Clock::time_point Now);
  int pollTimeoutMs(Clock::time_point Now) const;
  bool processFrames(WorkerSlot &S);
  enum class Drain { Open, Eof, Poisoned };
  Drain drainSlot(WorkerSlot &S);
  void reapAndHandle(WorkerSlot &S, Clock::time_point Now);
  void handleDeath(WorkerSlot &S, support::ExitStatus ES,
                   Clock::time_point Now);
  void enforceDeadlines(Clock::time_point Now);
  void runUnitInline(const PendingUnit &Unit);
  void shutdownWorkers();

  bool anyAlive() const {
    for (const WorkerSlot &S : Slots)
      if (S.alive())
        return true;
    return false;
  }
};

void Coordinator::buildQueue() {
  std::size_t N = Request.Changes.size();
  std::size_t Batch = Policy.BatchSize > 0 ? Policy.BatchSize : 32;
  Clock::time_point Now = Clock::now();
  for (std::size_t Begin = 0; Begin < N; Begin += Batch) {
    PendingUnit U;
    U.Id = NextUnitId++;
    U.ReadyAt = Now;
    for (std::size_t I = Begin; I < std::min(Begin + Batch, N); ++I)
      U.Indices.push_back(I);
    Queue.push_back(std::move(U));
  }
}

bool Coordinator::spawnSlot(WorkerSlot &S) {
  support::Pipe Req;  // coordinator -> worker
  support::Pipe Resp; // worker -> coordinator
  // The child must hold exactly its own two pipe ends: a sibling keeping
  // a copy of another worker's response write end would defer that
  // worker's EOF until the sibling exits, blinding crash detection.
  std::vector<int> CloseInChild;
  for (const WorkerSlot &Other : Slots) {
    if (Other.ReqFd != -1)
      CloseInChild.push_back(Other.ReqFd);
    if (Other.RespFd != -1)
      CloseInChild.push_back(Other.RespFd);
  }
  int ChildReq = Req.readFd();
  int ChildResp = Resp.writeFd();
  int ParentReq = Req.writeFd();
  int ParentResp = Resp.readFd();
  unsigned SlotIndex = S.Index;
  unsigned Incarnation = S.Incarnation;
  const core::DiffCode &Sys = System;
  const core::PipelineRequest &Req2 = Request;
  pid_t Pid = support::spawnProcess([&CloseInChild, ParentReq, ParentResp,
                                     ChildReq, ChildResp, SlotIndex,
                                     Incarnation, &Sys, &Req2]() {
    for (int Fd : CloseInChild)
      ::close(Fd);
    ::close(ParentReq);
    ::close(ParentResp);
    return workerMain(Sys, Req2, SlotIndex, Incarnation, ChildReq, ChildResp);
  });
  if (Pid < 0)
    return false; // fork exhaustion: caller falls back in-process
  Req.closeRead();
  Resp.closeWrite();
  S.Pid = Pid;
  S.ReqFd = Req.releaseWrite();
  S.RespFd = Resp.releaseRead();
  support::setNonBlocking(S.RespFd);
  S.Decoder = FrameDecoder();
  S.Remap = IdRemap();
  S.EpochOffsetNs = 0;
  S.LatestTelemetry = obs::Snapshot();
  S.InFlight.clear();
  S.TimedOut = false;
  S.PoisonReason.clear();
  S.Received = 0;
  return true;
}

void Coordinator::closeSlotFds(WorkerSlot &S) {
  if (S.ReqFd != -1)
    ::close(S.ReqFd);
  if (S.RespFd != -1)
    ::close(S.RespFd);
  S.ReqFd = -1;
  S.RespFd = -1;
  S.Pid = -1;
}

void Coordinator::dispatchReady(Clock::time_point Now) {
  for (WorkerSlot &S : Slots) {
    while (S.alive() && S.InFlight.size() < MaxInFlight) {
      auto It = std::find_if(Queue.begin(), Queue.end(),
                             [&](const PendingUnit &U) {
                               return U.ReadyAt <= Now;
                             });
      if (It == Queue.end())
        return; // nothing ready; backoff gates handled by the poll timeout
      WorkUnit W;
      W.Id = It->Id;
      W.Attempt = It->Attempt;
      W.Indices = It->Indices;
      std::string Frame = encodeWork(W);
      if (support::writeFull(S.ReqFd, Frame.data(), Frame.size()) < 0) {
        // The unit stays queued and untouched (no attempt is charged).
        // A worker that died before taking any work is just replaced;
        // one that died mid-unit is left for the EOF path, which also
        // routes its stranded units through the retry machinery.
        if (!S.busy()) {
          support::ExitStatus ES = support::waitProcess(S.Pid);
          (void)ES;
          closeSlotFds(S);
          ++S.Incarnation;
          ++Stats.WorkerRestarts;
          spawnSlot(S);
        }
        break;
      }
      bool Front = S.InFlight.empty();
      S.InFlight.push_back(std::move(*It));
      Queue.erase(It);
      if (Front) {
        // The spare unit's clock starts when it reaches the front — the
        // worker has not looked at it yet, it is bytes in a pipe.
        S.Received = 0;
        S.TimedOut = false;
        S.PoisonReason.clear();
        S.DispatchedAt = Now;
        S.HasDeadline = Policy.UnitDeadlineMs > 0;
        if (S.HasDeadline)
          S.Deadline = Now + std::chrono::milliseconds(Policy.UnitDeadlineMs);
      }
      ++Stats.UnitsDispatched;
    }
  }
}

int Coordinator::pollTimeoutMs(Clock::time_point Now) const {
  // Backstop covers death-without-EOF windows and keeps the watchdog
  // responsive even if poll never fires.
  std::int64_t Timeout = 200;
  bool HaveIdle = false;
  for (const WorkerSlot &S : Slots) {
    if (!S.alive())
      continue;
    if (S.InFlight.size() < MaxInFlight)
      HaveIdle = true;
    if (!S.busy())
      continue;
    if (S.HasDeadline && !S.TimedOut) {
      auto Ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                    S.Deadline - Now)
                    .count();
      Timeout = std::min<std::int64_t>(Timeout, Ms);
    }
  }
  if (HaveIdle)
    for (const PendingUnit &U : Queue) {
      auto Ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                    U.ReadyAt - Now)
                    .count();
      Timeout = std::min<std::int64_t>(Timeout, Ms);
    }
  return static_cast<int>(std::clamp<std::int64_t>(Timeout, 0, 200));
}

/// Decodes and applies every complete frame buffered in \p S. False when
/// the stream is poisoned (decoder error or a protocol violation);
/// S.PoisonReason then says why.
bool Coordinator::processFrames(WorkerSlot &S) {
  // nextView: the payload aliases the decoder buffer (no per-frame copy);
  // every decode below extracts what it keeps before the next iteration.
  while (std::optional<FrameView> F = S.Decoder.nextView()) {
    ++Stats.FramesReceived;
    switch (static_cast<FrameType>(F->Type)) {
    case FrameType::Hello: {
      // The advertised base must be a prefix of our own table: the
      // worker forked from this process, and the table only grows, so
      // anything larger is a corrupt or lying worker.
      std::uint32_t BaseLabels = 0, BasePaths = 0;
      std::uint64_t WorkerEpochNs = 0;
      if (!decodeHello(F->Payload, BaseLabels, BasePaths, WorkerEpochNs) ||
          BaseLabels > Table.labelCount() || BasePaths > Table.pathCount()) {
        S.PoisonReason = "bad handshake";
        return false;
      }
      S.Remap.BaseLabels = BaseLabels;
      S.Remap.BasePaths = BasePaths;
      if (Obs && WorkerEpochNs != 0)
        S.EpochOffsetNs =
            static_cast<std::int64_t>(WorkerEpochNs) -
            static_cast<std::int64_t>(Obs->Trace.epochSteadyNs());
      break;
    }
    case FrameType::LabelDef:
      if (!S.Remap.applyLabelDef(F->Payload, Table)) {
        S.PoisonReason = "bad label definition";
        return false;
      }
      break;
    case FrameType::PathDef:
      if (!S.Remap.applyPathDef(F->Payload, Table)) {
        S.PoisonReason = "bad path definition";
        return false;
      }
      break;
    case FrameType::Result: {
      std::uint64_t Index = 0;
      core::ChangeRecord Record;
      if (!S.busy() ||
          !decodeResult(F->Payload, S.Remap, Table, Index, Record) ||
          S.Received >= S.InFlight.front().Indices.size() ||
          Index != S.InFlight.front().Indices[S.Received]) {
        S.PoisonReason = "bad result frame";
        return false;
      }
      Records[Index] = std::move(Record);
      ++S.Received;
      --Outstanding;
      break;
    }
    case FrameType::UnitDone: {
      std::uint64_t UnitId = 0;
      if (!S.busy() || !decodeUnitDone(F->Payload, UnitId) ||
          UnitId != S.InFlight.front().Id ||
          S.Received != S.InFlight.front().Indices.size()) {
        S.PoisonReason = "bad unit-done frame";
        return false;
      }
      Clock::time_point Now = Clock::now();
      if (UnitLatency)
        UnitLatency->record(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                Now - S.DispatchedAt)
                .count()));
      S.InFlight.pop_front();
      S.Received = 0;
      if (S.busy()) {
        // The pipelined spare is the running unit now; its deadline
        // clock starts here, not at dispatch time.
        S.DispatchedAt = Now;
        if (S.HasDeadline)
          S.Deadline = Now + std::chrono::milliseconds(Policy.UnitDeadlineMs);
      }
      break;
    }
    case FrameType::Telemetry: {
      TelemetryFrame T;
      if (!decodeTelemetry(F->Payload, T)) {
        S.PoisonReason = "bad telemetry frame";
        return false;
      }
      // Frames are stamped with the incarnation the worker was spawned
      // as; anything else is a corrupt or lying worker and its telemetry
      // must not pollute the merged view. (The per-incarnation pipe and
      // decoder make this unreachable for honest workers — the check is
      // wire-level insurance, same spirit as the Hello version gate.)
      if (T.staleFor(S.Incarnation)) {
        ++Stats.StaleTelemetry;
        break;
      }
      ++Stats.TelemetryFrames;
      if (!Obs)
        break; // unobserved run: nothing to merge into
      for (const TelemetrySpan &Sp : T.Spans) {
        std::int64_t Aligned =
            static_cast<std::int64_t>(Sp.StartNs) + S.EpochOffsetNs;
        Obs->Trace.recordForeign(
            Sp.Name, Aligned < 0 ? 0 : static_cast<std::uint64_t>(Aligned),
            Sp.DurNs, Sp.Tid, static_cast<std::uint32_t>(S.Pid));
      }
      S.LatestTelemetry = std::move(T.Metrics);
      break;
    }
    default:
      S.PoisonReason = "unknown frame type";
      return false;
    }
  }
  if (S.Decoder.bad()) {
    S.PoisonReason = "result stream corrupt: " + S.Decoder.error();
    return false;
  }
  return true;
}

Coordinator::Drain Coordinator::drainSlot(WorkerSlot &S) {
  char Buf[1 << 16];
  for (;;) {
    ssize_t N = support::readSome(S.RespFd, Buf, sizeof(Buf));
    if (N > 0) {
      Stats.BytesReceived += static_cast<std::uint64_t>(N);
      S.Decoder.feed(Buf, static_cast<std::size_t>(N));
      if (!processFrames(S))
        return Drain::Poisoned;
      continue;
    }
    if (N == 0)
      return Drain::Eof;
    if (errno == EAGAIN || errno == EWOULDBLOCK)
      return Drain::Open;
    return Drain::Eof; // unexpected read error: treat the worker as gone
  }
}

/// The worker behind \p S ended (EOF seen or waitpid confirmed): reap,
/// classify, respawn, and route the interrupted unit through the
/// bisection / retry / terminal state machine.
void Coordinator::handleDeath(WorkerSlot &S, support::ExitStatus ES,
                              Clock::time_point Now) {
  closeSlotFds(S);
  bool WasBusy = S.busy();
  std::deque<PendingUnit> InFlight = std::move(S.InFlight);
  S.InFlight.clear();
  std::size_t Received = S.Received;
  std::size_t Pending = S.Decoder.pendingBytes();

  // Classify. Deadline kills win (the corrupt-stream path never applies:
  // a poisoned worker is killed in the same iteration its stream went
  // bad), then the distinguished OOM exit, then everything else is a
  // crash — including protocol errors, which are indistinguishable from
  // a worker whose memory was scribbled over.
  core::ChangeStatus Status = core::ChangeStatus::WorkerCrash;
  std::string Detail;
  if (S.TimedOut) {
    Status = core::ChangeStatus::WorkerTimeout;
    Detail = "unit deadline of " + std::to_string(Policy.UnitDeadlineMs) +
             " ms exceeded";
  } else if (!S.PoisonReason.empty()) {
    Detail = S.PoisonReason;
  } else if (ES.K == support::ExitStatus::Kind::Exited &&
             ES.Code == OomExitCode) {
    Status = core::ChangeStatus::WorkerOom;
    Detail = "worker exceeded its memory limit";
  } else if (ES.K == support::ExitStatus::Kind::Signaled) {
    Detail = "worker killed by signal " + std::to_string(ES.Code);
  } else if (Pending > 0) {
    // A clean-ish exit with bytes stranded mid-frame: the result stream
    // was cut, which is its own diagnostic (the truncation chaos flavor).
    Detail = "truncated result stream (exit code " + std::to_string(ES.Code) +
             ")";
  } else {
    Detail = "worker exited with code " + std::to_string(ES.Code);
  }

  // The dead incarnation's committed results stay in the report, so its
  // final metrics snapshot counts too — retire it before respawning.
  if (!S.LatestTelemetry.empty())
    RetiredTelemetry.push_back(std::move(S.LatestTelemetry));
  S.LatestTelemetry = obs::Snapshot();

  ++S.Incarnation;
  ++Stats.WorkerRestarts;
  spawnSlot(S); // failure leaves the slot dead; the inline fallback covers

  if (!WasBusy)
    return;
  // Only the front unit was actually being executed. Any pipelined
  // spare behind it died unread in the request pipe: requeue it
  // verbatim — no attempt charged, it is not a suspect.
  PendingUnit Unit = std::move(InFlight.front());
  for (std::size_t I = InFlight.size(); I > 1; --I) {
    InFlight[I - 1].ReadyAt = Now;
    Queue.push_front(std::move(InFlight[I - 1]));
  }
  // Results received before the death are committed; only the suffix is
  // at stake. (In-order streaming makes the suffix deterministic.)
  std::vector<std::uint64_t> Remaining(Unit.Indices.begin() +
                                           static_cast<std::ptrdiff_t>(Received),
                                       Unit.Indices.end());
  if (Remaining.empty())
    return; // died between the last result and UnitDone: nothing lost

  if (Remaining.size() > 1) {
    // Bisect: halves are fresh units (attempt 0) — the goal is isolating
    // the poison input, not charging innocent neighbors for it.
    std::size_t Mid = Remaining.size() / 2;
    PendingUnit Lo, Hi;
    Lo.Id = NextUnitId++;
    Lo.Indices.assign(Remaining.begin(),
                      Remaining.begin() + static_cast<std::ptrdiff_t>(Mid));
    Lo.ReadyAt = Now;
    Hi.Id = NextUnitId++;
    Hi.Indices.assign(Remaining.begin() + static_cast<std::ptrdiff_t>(Mid),
                      Remaining.end());
    Hi.ReadyAt = Now;
    Queue.push_front(std::move(Hi));
    Queue.push_front(std::move(Lo));
    ++Stats.Bisections;
    return;
  }

  std::uint64_t Index = Remaining.front();
  std::uint32_t Attempt = Unit.Attempt + 1;
  if (Attempt > Policy.MaxRetries) {
    core::ChangeRecord &Record = Records[Index];
    Record.Origin = Request.Changes[Index]->origin();
    Record.GroundTruthKind = Request.Changes[Index]->Kind;
    Record.Status = Status;
    Record.StatusDetail =
        Detail + " (" + std::to_string(Attempt) + " attempts)";
    --Outstanding;
    ++Stats.TerminalStatus[static_cast<std::size_t>(Status)];
    return;
  }
  PendingUnit Retry;
  Retry.Id = NextUnitId++;
  Retry.Attempt = Attempt;
  Retry.Indices = std::move(Remaining);
  std::uint64_t Backoff =
      Attempt - 1 < 20 ? Policy.BackoffBaseMs << (Attempt - 1)
                       : Policy.BackoffCapMs;
  Backoff = std::min(Backoff, Policy.BackoffCapMs);
  Retry.ReadyAt = Now + std::chrono::milliseconds(Backoff);
  Queue.push_back(std::move(Retry));
  ++Stats.Retries;
}

void Coordinator::reapAndHandle(WorkerSlot &S, Clock::time_point Now) {
  support::ExitStatus ES = support::waitProcess(S.Pid);
  handleDeath(S, ES, Now);
}

void Coordinator::enforceDeadlines(Clock::time_point Now) {
  for (WorkerSlot &S : Slots) {
    if (!S.alive() || !S.busy() || !S.HasDeadline || S.TimedOut ||
        Now < S.Deadline)
      continue;
    S.TimedOut = true;
    ++Stats.DeadlineKills;
    support::killProcess(S.Pid, SIGKILL);
    // Death is observed through the usual EOF path next iteration.
  }
}

/// Fork exhaustion fallback: run a unit in the coordinator, under the
/// exact fault-scope discipline analyzeChanges uses. (The Proc* sites
/// only exist inside worker code paths, so none fire here — the in-
/// process containment in processChange still does.)
void Coordinator::runUnitInline(const PendingUnit &Unit) {
  for (std::uint64_t Index : Unit.Indices) {
    support::FaultScope Scope(&System.config().Faults, Index);
    obs::Span ChangeSpan(Obs ? &Obs->Trace : nullptr, "processChange");
    Records[Index] =
        System.processChange(*Request.Changes[Index], Request.TargetClasses,
                             Request.ClassifyWith, Table,
                             Obs ? &Obs->Metrics : nullptr);
    --Outstanding;
    ++Stats.InlineFallbacks;
  }
}

void Coordinator::shutdownWorkers() {
  std::string Bye = encodeFrame(static_cast<std::uint32_t>(FrameType::Shutdown),
                                std::string_view());
  for (WorkerSlot &S : Slots) {
    if (!S.alive())
      continue;
    support::writeFull(S.ReqFd, Bye.data(), Bye.size());
    ::close(S.ReqFd); // request EOF ends the worker even if the frame died
    S.ReqFd = -1;
  }
  for (WorkerSlot &S : Slots) {
    if (!S.alive())
      continue;
    // Drain the response pipe to EOF before reaping: the main loop exits
    // the moment the last Result commits, which can leave the final
    // unit's coalesced tail (Telemetry + UnitDone) unread — or, for a
    // telemetry payload larger than the pipe buffer, leave the worker
    // blocked mid-write, where reaping without reading would deadlock.
    char Buf[1 << 16];
    for (;;) {
      ssize_t N = support::readSome(S.RespFd, Buf, sizeof(Buf));
      if (N > 0) {
        Stats.BytesReceived += static_cast<std::uint64_t>(N);
        S.Decoder.feed(Buf, static_cast<std::size_t>(N));
        if (!processFrames(S))
          break; // poisoned this late costs nothing: every unit is done
        continue;
      }
      if (N < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        struct pollfd P;
        P.fd = S.RespFd;
        P.events = POLLIN;
        P.revents = 0;
        if (::poll(&P, 1, 1000) <= 0) {
          // Wedged worker: don't hang the coordinator on its tail.
          support::killProcess(S.Pid, SIGKILL);
          break;
        }
        continue;
      }
      break; // EOF or hard read error
    }
    support::waitProcess(S.Pid);
    closeSlotFds(S);
  }
}

void Coordinator::run() {
  std::size_t N = Request.Changes.size();
  Records.assign(N, core::ChangeRecord());
  Outstanding = N;
  if (N == 0)
    return;
  buildQueue();

  unsigned Workers =
      std::min<unsigned>(support::resolveThreads(Policy.Workers),
                         static_cast<unsigned>(std::min<std::size_t>(
                             Queue.size(), 1u << 10)));
  Workers = std::max(Workers, 1u);
  for (unsigned I = 0; I < Workers; ++I) {
    Slots.emplace_back();
    Slots.back().Index = I;
    spawnSlot(Slots.back());
  }

  while (Outstanding > 0) {
    if (!anyAlive()) {
      // Fork exhaustion: finish everything queued right here. Records
      // stay byte-identical — it is the same processChange under the
      // same fault scopes.
      while (!Queue.empty()) {
        runUnitInline(Queue.front());
        Queue.pop_front();
      }
      break;
    }
    Clock::time_point Now = Clock::now();
    dispatchReady(Now);
    int Timeout = pollTimeoutMs(Now);

    std::vector<struct pollfd> Fds;
    std::vector<WorkerSlot *> FdSlots;
    for (WorkerSlot &S : Slots) {
      if (!S.alive() || !S.busy())
        continue;
      struct pollfd P;
      P.fd = S.RespFd;
      P.events = POLLIN;
      P.revents = 0;
      Fds.push_back(P);
      FdSlots.push_back(&S);
    }
    int Ready = ::poll(Fds.empty() ? nullptr : Fds.data(),
                       static_cast<nfds_t>(Fds.size()), Timeout);
    if (Ready < 0 && errno != EINTR)
      break; // poll itself failing is unrecoverable; fall through below

    Now = Clock::now();
    for (std::size_t I = 0; I < Fds.size(); ++I) {
      WorkerSlot &S = *FdSlots[I];
      if (!S.alive() || (Fds[I].revents & (POLLIN | POLLHUP | POLLERR)) == 0)
        continue;
      Drain R = drainSlot(S);
      if (R == Drain::Poisoned) {
        support::killProcess(S.Pid, SIGKILL);
        reapAndHandle(S, Now);
      } else if (R == Drain::Eof) {
        reapAndHandle(S, Now);
      }
    }

    enforceDeadlines(Now);

    // Backstop: a death whose EOF is delayed (a just-forked sibling
    // briefly holding the pipe end) is still observed via waitpid.
    for (WorkerSlot &S : Slots) {
      if (!S.alive() || !S.busy())
        continue;
      support::ExitStatus ES;
      if (!support::tryWaitProcess(S.Pid, ES))
        continue;
      Drain R = drainSlot(S); // commit whatever is still buffered
      (void)R;
      handleDeath(S, ES, Now);
    }
  }

  // Anything still unresolved after a poll failure gets a terminal crash
  // record rather than a silent empty one.
  if (Outstanding > 0) {
    for (std::size_t I = 0; I < N && Outstanding > 0; ++I) {
      bool Resolved = Records[I].Status != core::ChangeStatus::Ok ||
                      !Records[I].Origin.empty();
      if (Resolved)
        continue;
      Records[I].Origin = Request.Changes[I]->origin();
      Records[I].GroundTruthKind = Request.Changes[I]->Kind;
      Records[I].Status = core::ChangeStatus::WorkerCrash;
      Records[I].StatusDetail = "supervision aborted";
      ++Stats.TerminalStatus[static_cast<std::size_t>(
          core::ChangeStatus::WorkerCrash)];
      --Outstanding;
    }
  }

  shutdownWorkers();
}

} // namespace

//===----------------------------------------------------------------------===//
// Public entry points
//===----------------------------------------------------------------------===//

std::vector<core::ChangeRecord>
diffcode::exec::superviseChanges(const core::DiffCode &System,
                                 const core::PipelineRequest &Request,
                                 SupervisionStats *Stats) {
  // Pipe writes must report dead peers as EPIPE, not a process-killing
  // SIGPIPE; scoped so library users' signal dispositions are untouched.
  support::ScopedSigpipeIgnore NoSigpipe;
  SupervisionStats Local;
  SupervisionStats &St = Stats ? *Stats : Local;
  support::Interner &Table =
      Request.Labels ? *Request.Labels : *System.labels();
  Coordinator C(System, Request, Table, St);
  C.Obs = Request.Metrics;
  if (Request.Metrics)
    C.UnitLatency =
        &Request.Metrics->Metrics.histogram("exec.unit_latency_ns",
                                            obs::Unit::Nanoseconds,
                                            obs::Stability::PerRun);
  C.run();

  if (Request.Metrics) {
    // Fold worker registries into the run's snapshot under exec.worker.*:
    // the final cumulative snapshot of every dead incarnation plus each
    // surviving slot's latest. All PerRun — retries and partial-unit
    // loss make cross-process sums scheduling-dependent under faults.
    for (const obs::Snapshot &W : C.RetiredTelemetry)
      Request.Metrics->adoptWorkerSnapshot(W);
    for (const WorkerSlot &S : C.Slots)
      if (!S.LatestTelemetry.empty())
        Request.Metrics->adoptWorkerSnapshot(S.LatestTelemetry);

    obs::Registry &Reg = Request.Metrics->Metrics;
    // Dispatch/retry/restart counts depend on wall-clock races (a real
    // timeout, a delayed EOF), so everything here is PerRun.
    Reg.counter("exec.units", obs::Unit::None, obs::Stability::PerRun)
        .add(St.UnitsDispatched);
    Reg.counter("exec.retries", obs::Unit::None, obs::Stability::PerRun)
        .add(St.Retries);
    Reg.counter("exec.bisections", obs::Unit::None, obs::Stability::PerRun)
        .add(St.Bisections);
    Reg.counter("exec.worker_restarts", obs::Unit::None,
                obs::Stability::PerRun)
        .add(St.WorkerRestarts);
    Reg.counter("exec.deadline_kills", obs::Unit::None,
                obs::Stability::PerRun)
        .add(St.DeadlineKills);
    Reg.counter("exec.frames_rx", obs::Unit::None, obs::Stability::PerRun)
        .add(St.FramesReceived);
    Reg.counter("exec.bytes_rx", obs::Unit::Bytes, obs::Stability::PerRun)
        .add(St.BytesReceived);
    Reg.counter("exec.telemetry_frames", obs::Unit::None,
                obs::Stability::PerRun)
        .add(St.TelemetryFrames);
    Reg.counter("exec.telemetry_stale", obs::Unit::None,
                obs::Stability::PerRun)
        .add(St.StaleTelemetry);
  }
  return std::move(C.Records);
}
