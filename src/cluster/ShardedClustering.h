//===- cluster/ShardedClustering.h - Shard-and-merge clustering ------------===//
//
// Part of the DiffCode project, a reproduction of "Inferring Crypto API
// Rules from Code Changes" (PLDI'18).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Sharded complete-linkage clustering for paper-scale corpora
/// (DESIGN.md "Sharding and the stage API"). The dense engine needs an
/// n^2 distance matrix; at the paper's n=11,551 `Cipher` changes that is
/// ~1 GiB of doubles, so this engine:
///
///   1. partitions the corpus into shards by a cheap canopy key (the
///      leading method labels of each change's first feature path),
///      packing key groups into shards of at most MaxShardSize items;
///   2. runs the exact NN-chain engine per shard, in parallel over a
///      support::ThreadPool (each shard's matrix lives only while its
///      worker runs);
///   3. merges the shard dendrograms into one corpus dendrogram by
///      agglomerating the shards themselves, with cross-shard linkage
///      estimated as complete linkage over per-shard representatives
///      (one per flat sub-cluster at ShardingOptions::RepresentativeCut)
///      under the same canonical (dist, min-rep, max-rep) tie-breaking
///      as the dense engine.
///
/// Within-shard structure is exact — identical to the dense engine
/// restricted to the shard — and the whole result is deterministic at
/// any thread count. Cross-shard merge heights are lower bounds of the
/// true complete linkage (a max over representative pairs instead of all
/// pairs), clamped to keep the dendrogram monotone; the differential
/// bound on flat-cluster divergence is asserted by
/// tests/test_sharded_clustering.cpp and documented in DESIGN.md.
///
//===----------------------------------------------------------------------===//

#ifndef DIFFCODE_CLUSTER_SHARDEDCLUSTERING_H
#define DIFFCODE_CLUSTER_SHARDEDCLUSTERING_H

#include "cluster/HierarchicalClustering.h"
#include "support/Interner.h"

#include <cstddef>
#include <vector>

namespace diffcode {
namespace cluster {

/// Canopy key of one usage change: the label ids of the first
/// \p KeyDepth method labels of its first feature path (first removed
/// path, else first added path). Changes with no paths key to the empty
/// tuple. O(KeyDepth) integer reads — no distance evaluation, no string
/// construction.
std::vector<support::LabelId> shardKey(const usage::UsageChange &Change,
                                       unsigned KeyDepth);

/// Deterministic partition of item indices [0, Changes.size()) into
/// shards: group by shardKey, order groups by the key's *rendered label
/// texts* (id values are racy across runs; texts are not), split
/// oversized groups into MaxShardSize slices, pack slices into shards up
/// to the cap, and order shards by minimum item. Every shard's item list
/// is ascending; MaxShardSize == 0 yields a single shard holding 0..n-1.
std::vector<std::vector<std::size_t>>
partitionIntoShards(const std::vector<usage::UsageChange> &Changes,
                    const ShardingOptions &Opts);

/// Shard-and-merge counterpart of clusterUsageChanges: same leaf items
/// (global indices), exact within-shard structure, representative-based
/// cross-shard merges. With a single shard (MaxShardSize == 0 or
/// n <= MaxShardSize and one key group) the result is byte-identical to
/// the unsharded engine. \p Stats (may be null) receives shard counts
/// and the peak distance-matrix footprint.
Dendrogram
clusterUsageChangesSharded(const std::vector<usage::UsageChange> &Changes,
                           const ClusteringOptions &Opts,
                           ShardingStats *Stats = nullptr);

} // namespace cluster
} // namespace diffcode

#endif // DIFFCODE_CLUSTER_SHARDEDCLUSTERING_H
