file(REMOVE_RECURSE
  "CMakeFiles/diffcode_rules.dir/BuiltinRules.cpp.o"
  "CMakeFiles/diffcode_rules.dir/BuiltinRules.cpp.o.d"
  "CMakeFiles/diffcode_rules.dir/ChangeClassifier.cpp.o"
  "CMakeFiles/diffcode_rules.dir/ChangeClassifier.cpp.o.d"
  "CMakeFiles/diffcode_rules.dir/CryptoChecker.cpp.o"
  "CMakeFiles/diffcode_rules.dir/CryptoChecker.cpp.o.d"
  "CMakeFiles/diffcode_rules.dir/Rule.cpp.o"
  "CMakeFiles/diffcode_rules.dir/Rule.cpp.o.d"
  "CMakeFiles/diffcode_rules.dir/RuleSuggestion.cpp.o"
  "CMakeFiles/diffcode_rules.dir/RuleSuggestion.cpp.o.d"
  "CMakeFiles/diffcode_rules.dir/TlsRules.cpp.o"
  "CMakeFiles/diffcode_rules.dir/TlsRules.cpp.o.d"
  "libdiffcode_rules.a"
  "libdiffcode_rules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diffcode_rules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
