//===- obs/Metrics.h - Thread-safe pipeline metrics registry ---------------===//
//
// Part of the DiffCode project, a reproduction of "Inferring Crypto API
// Rules from Code Changes" (PLDI'18).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The metrics half of the observability layer (DESIGN.md
/// "Observability"): counters, gauges, and fixed log-scale-bucket
/// histograms behind a name-keyed registry, in the spirit of the
/// pass-statistics machinery mature analysis frameworks ship.
///
/// Concurrency contract: all metric updates are lock-free atomics, so
/// pipeline workers record from any thread without coordination; metric
/// *creation* takes the registry's exclusive lock once per distinct name
/// (double-checked, like support::Interner), and returned references stay
/// valid for the registry's lifetime (node-based storage never moves).
///
/// Determinism contract: snapshots list metrics in name order, so two
/// runs that record the same multiset of values per metric serialize byte
/// identically — regardless of thread count or creation order. Metrics
/// whose values are inherently scheduling- or wall-clock-dependent
/// (timings, high-water marks across concurrent workers, per-worker
/// distributions) are registered as Stability::PerRun and excluded from
/// Snapshot::json(/*DeterministicOnly=*/true), which is what the
/// differential harness compares across 1/2/8 threads.
///
/// Counters saturate at the 64-bit maximum instead of wrapping, so a
/// runaway accumulation degrades to a pinned value rather than a bogus
/// small one.
///
//===----------------------------------------------------------------------===//

#ifndef DIFFCODE_OBS_METRICS_H
#define DIFFCODE_OBS_METRICS_H

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace diffcode {
namespace obs {

/// What a registered metric is.
enum class MetricKind { Counter, Gauge, Histogram };

/// Unit of a metric's values, for display and emission.
enum class Unit { None, Bytes, Nanoseconds, Percent };

/// Whether a metric's final value is a pure function of the pipeline
/// input (Deterministic) or may legitimately differ run to run — wall
/// times, scheduling-dependent distributions, concurrent high-water
/// marks (PerRun).
enum class Stability { Deterministic, PerRun };

const char *metricKindName(MetricKind Kind);
const char *unitName(Unit U);
const char *stabilityName(Stability S);

/// Saturating 64-bit add — the overflow discipline every counter and
/// histogram sum in this layer uses (pin at the top, never wrap).
inline std::uint64_t saturatingAdd(std::uint64_t A, std::uint64_t B) {
  std::uint64_t Top = ~std::uint64_t(0);
  return A > Top - B ? Top : A + B;
}

/// Monotonic counter. add() saturates at the 64-bit maximum.
class Counter {
public:
  void add(std::uint64_t N = 1) {
    std::uint64_t Old = Value.load(std::memory_order_relaxed);
    std::uint64_t Max = ~std::uint64_t(0);
    std::uint64_t New;
    do {
      New = Old > Max - N ? Max : Old + N;
    } while (!Value.compare_exchange_weak(Old, New, std::memory_order_relaxed));
  }
  std::uint64_t get() const { return Value.load(std::memory_order_relaxed); }

private:
  std::atomic<std::uint64_t> Value{0};
};

/// Last-writer-wins value with an atomic-max variant for high-water
/// marks.
class Gauge {
public:
  void set(std::int64_t V) { Value.store(V, std::memory_order_relaxed); }
  /// Raises the gauge to \p V if it is below (atomic max).
  void max(std::int64_t V) {
    std::int64_t Old = Value.load(std::memory_order_relaxed);
    while (Old < V &&
           !Value.compare_exchange_weak(Old, V, std::memory_order_relaxed)) {
    }
  }
  std::int64_t get() const { return Value.load(std::memory_order_relaxed); }

private:
  std::atomic<std::int64_t> Value{0};
};

/// Histogram over fixed log-scale buckets: bucket 0 holds the value 0 and
/// bucket I >= 1 holds [2^(I-1), 2^I - 1], so any 64-bit value lands in
/// one of 65 buckets with two instructions (bit_width). Also tracks
/// count, saturating sum, min, and max.
class Histogram {
public:
  static constexpr unsigned NumBuckets = 65;

  /// Bucket index of \p V (0 for 0, else bit_width).
  static unsigned bucketFor(std::uint64_t V);
  /// Smallest value bucket \p Index holds.
  static std::uint64_t bucketLo(unsigned Index);
  /// Largest value bucket \p Index holds.
  static std::uint64_t bucketHi(unsigned Index);

  void record(std::uint64_t V);

  /// Bucket-wise merge: folds \p Other's bucket counts, count, and
  /// saturating sum into this histogram, and widens min/max. The union
  /// is exact because both sides share the same fixed bucket layout.
  void merge(const Histogram &Other);

  std::uint64_t count() const { return Count.load(std::memory_order_relaxed); }
  /// Saturating sum of recorded values.
  std::uint64_t sum() const { return Sum.load(std::memory_order_relaxed); }
  /// Smallest recorded value (0 when empty).
  std::uint64_t min() const;
  std::uint64_t max() const { return Max.load(std::memory_order_relaxed); }
  std::uint64_t bucketCount(unsigned Index) const {
    return Buckets[Index].load(std::memory_order_relaxed);
  }

private:
  std::atomic<std::uint64_t> Buckets[NumBuckets] = {};
  std::atomic<std::uint64_t> Count{0};
  std::atomic<std::uint64_t> Sum{0};
  std::atomic<std::uint64_t> Min{~std::uint64_t(0)};
  std::atomic<std::uint64_t> Max{0};
};

/// One metric's state at snapshot time.
struct MetricValue {
  std::string Name;
  MetricKind Kind = MetricKind::Counter;
  Unit U = Unit::None;
  Stability S = Stability::Deterministic;
  std::uint64_t Count = 0; ///< Counter value / histogram sample count.
  std::int64_t Value = 0;  ///< Gauge value.
  std::uint64_t Sum = 0, Min = 0, Max = 0; ///< Histogram aggregates.
  /// Non-empty histogram buckets as (bucket index, count), ascending.
  std::vector<std::pair<unsigned, std::uint64_t>> Buckets;
};

/// A registry snapshot: every metric's value, ordered by name.
struct Snapshot {
  std::vector<MetricValue> Values;

  bool empty() const { return Values.empty(); }
  /// Minified JSON array of metric objects. With \p DeterministicOnly,
  /// PerRun metrics are dropped — the byte-comparable projection.
  std::string json(bool DeterministicOnly = false) const;

  /// Merges \p Other into this snapshot, prepending \p Prefix to every
  /// incoming name (a uniform prefix preserves name order, so this is a
  /// sorted two-way merge). Same-name metrics combine per kind:
  /// counters add with saturation, gauges keep the max (high-water
  /// semantics), histograms merge bucket-wise with saturating
  /// count/sum, min of mins, max of maxes. Colliding entries keep this
  /// snapshot's Unit/Stability; new entries copy \p Other's. If any
  /// same-name pair disagrees on kind the whole merge is rejected:
  /// returns false and leaves this snapshot untouched. Both sides must
  /// be name-sorted, as Registry::snapshot() produces.
  bool merge(const Snapshot &Other, std::string_view Prefix = {});

  /// Marks every metric PerRun — applied to worker-shipped snapshots
  /// before merging, since retries and crash-replay make cross-process
  /// sums scheduling-dependent even when the per-worker values are not.
  void markAllPerRun();
};

/// Name-keyed owner of every metric of one observed pipeline run.
/// get-or-create entry points return references that stay valid for the
/// registry's lifetime; asking for an existing name with a different
/// kind throws std::logic_error.
class Registry {
public:
  Registry() = default;
  Registry(const Registry &) = delete;
  Registry &operator=(const Registry &) = delete;

  Counter &counter(std::string_view Name, Unit U = Unit::None,
                   Stability S = Stability::Deterministic);
  Gauge &gauge(std::string_view Name, Unit U = Unit::None,
               Stability S = Stability::Deterministic);
  Histogram &histogram(std::string_view Name, Unit U = Unit::None,
                       Stability S = Stability::Deterministic);

  std::size_t size() const;

  /// Name-ordered snapshot of every metric (see Snapshot).
  Snapshot snapshot() const;

private:
  struct Entry {
    MetricKind Kind;
    Unit U;
    Stability S;
    // Exactly one of these is set, per Kind.
    std::unique_ptr<Counter> C;
    std::unique_ptr<Gauge> G;
    std::unique_ptr<Histogram> H;
  };
  Entry &getOrCreate(std::string_view Name, MetricKind Kind, Unit U,
                     Stability S);

  mutable std::shared_mutex Mutex;
  /// std::map: node-based (references stable) and name-ordered (snapshot
  /// determinism for free).
  std::map<std::string, Entry, std::less<>> Entries;
};

} // namespace obs
} // namespace diffcode

#endif // DIFFCODE_OBS_METRICS_H
