//===- support/Process.cpp -------------------------------------------------===//

#include "support/Process.h"

#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <stdexcept>
#include <sys/wait.h>
#include <unistd.h>

using namespace diffcode;
using namespace diffcode::support;

Pipe::Pipe() {
  int Fds[2];
  if (::pipe(Fds) != 0)
    throw std::runtime_error(std::string("pipe: ") + std::strerror(errno));
  ReadFd = Fds[0];
  WriteFd = Fds[1];
}

Pipe::~Pipe() {
  closeRead();
  closeWrite();
}

Pipe::Pipe(Pipe &&Other) noexcept
    : ReadFd(Other.ReadFd), WriteFd(Other.WriteFd) {
  Other.ReadFd = Other.WriteFd = -1;
}

Pipe &Pipe::operator=(Pipe &&Other) noexcept {
  if (this != &Other) {
    closeRead();
    closeWrite();
    ReadFd = Other.ReadFd;
    WriteFd = Other.WriteFd;
    Other.ReadFd = Other.WriteFd = -1;
  }
  return *this;
}

void Pipe::closeRead() {
  if (ReadFd >= 0) {
    ::close(ReadFd);
    ReadFd = -1;
  }
}

void Pipe::closeWrite() {
  if (WriteFd >= 0) {
    ::close(WriteFd);
    WriteFd = -1;
  }
}

int Pipe::releaseRead() {
  int Fd = ReadFd;
  ReadFd = -1;
  return Fd;
}

int Pipe::releaseWrite() {
  int Fd = WriteFd;
  WriteFd = -1;
  return Fd;
}

ssize_t diffcode::support::readFull(int Fd, void *Buf, std::size_t Size) {
  char *Out = static_cast<char *>(Buf);
  std::size_t Done = 0;
  while (Done < Size) {
    ssize_t N = ::read(Fd, Out + Done, Size - Done);
    if (N > 0) {
      Done += static_cast<std::size_t>(N);
      continue;
    }
    if (N == 0)
      return static_cast<ssize_t>(Done); // EOF mid-read: short count
    if (errno == EINTR)
      continue;
    return -1;
  }
  return static_cast<ssize_t>(Done);
}

ssize_t diffcode::support::writeFull(int Fd, const void *Buf,
                                     std::size_t Size) {
  const char *In = static_cast<const char *>(Buf);
  std::size_t Done = 0;
  while (Done < Size) {
    ssize_t N = ::write(Fd, In + Done, Size - Done);
    if (N >= 0) {
      Done += static_cast<std::size_t>(N);
      continue;
    }
    if (errno == EINTR)
      continue;
    return -1;
  }
  return static_cast<ssize_t>(Done);
}

ssize_t diffcode::support::readSome(int Fd, void *Buf, std::size_t Size) {
  for (;;) {
    ssize_t N = ::read(Fd, Buf, Size);
    if (N >= 0 || errno != EINTR)
      return N;
  }
}

bool diffcode::support::setNonBlocking(int Fd) {
  int Flags = ::fcntl(Fd, F_GETFL, 0);
  if (Flags < 0)
    return false;
  return ::fcntl(Fd, F_SETFL, Flags | O_NONBLOCK) == 0;
}

ScopedSigpipeIgnore::ScopedSigpipeIgnore() {
  struct sigaction Ignore;
  std::memset(&Ignore, 0, sizeof(Ignore));
  Ignore.sa_handler = SIG_IGN;
  sigemptyset(&Ignore.sa_mask);
  Restore = ::sigaction(SIGPIPE, &Ignore, &Saved) == 0;
}

ScopedSigpipeIgnore::~ScopedSigpipeIgnore() {
  if (Restore)
    ::sigaction(SIGPIPE, &Saved, nullptr);
}

pid_t diffcode::support::spawnProcess(const std::function<int()> &Body) {
  pid_t Pid = ::fork();
  if (Pid != 0)
    return Pid; // parent (or -1 on failure, errno set)
  int Code = 125;
  try {
    Code = Body();
  } catch (...) {
    // Nothing sane to report from a forked child; the supervisor treats
    // 125 like any other abnormal exit.
  }
  ::_exit(Code);
}

static ExitStatus classifyWait(pid_t Result, int Status) {
  ExitStatus Out;
  if (Result < 0) {
    Out.K = ExitStatus::Kind::Error;
    Out.Code = errno;
    return Out;
  }
  if (WIFSIGNALED(Status)) {
    Out.K = ExitStatus::Kind::Signaled;
    Out.Code = WTERMSIG(Status);
  } else {
    Out.K = ExitStatus::Kind::Exited;
    Out.Code = WIFEXITED(Status) ? WEXITSTATUS(Status) : 125;
  }
  return Out;
}

ExitStatus diffcode::support::waitProcess(pid_t Pid) {
  int Status = 0;
  pid_t Result;
  do {
    Result = ::waitpid(Pid, &Status, 0);
  } while (Result < 0 && errno == EINTR);
  return classifyWait(Result, Status);
}

bool diffcode::support::tryWaitProcess(pid_t Pid, ExitStatus &Out) {
  int Status = 0;
  pid_t Result;
  do {
    Result = ::waitpid(Pid, &Status, WNOHANG);
  } while (Result < 0 && errno == EINTR);
  if (Result == 0)
    return false;
  Out = classifyWait(Result, Status);
  return true;
}

bool diffcode::support::killProcess(pid_t Pid, int Signal) {
  if (Pid <= 0)
    return false;
  if (::kill(Pid, Signal) == 0)
    return true;
  return errno == ESRCH;
}
