//===- support/Hungarian.cpp ----------------------------------------------===//

#include "support/Hungarian.h"

#include "support/FaultInjection.h"

#include <bit>
#include <cassert>
#include <limits>

using namespace diffcode;

// Kuhn–Munkres with row/column potentials (the classic O(n^3) "e-maxx"
// formulation, 1-indexed internally). Works on a square matrix (row-major
// flat, stride N); callers with rectangular inputs are padded with
// zero-cost entries below. All buffers live in the caller's workspace so
// the hot path (one solve per usage-change pair) performs no allocation
// once the workspace has warmed up.
static void solveSquare(const std::vector<double> &A, std::size_t N,
                        std::vector<double> &U, std::vector<double> &V,
                        std::vector<double> &MinV, std::vector<std::size_t> &P,
                        std::vector<std::size_t> &Way,
                        std::vector<char> &Used) {
  const double Inf = std::numeric_limits<double>::infinity();
  U.assign(N + 1, 0.0);
  V.assign(N + 1, 0.0);
  P.assign(N + 1, 0);
  Way.assign(N + 1, 0);

  for (std::size_t I = 1; I <= N; ++I) {
    P[0] = I;
    std::size_t J0 = 0;
    MinV.assign(N + 1, Inf);
    Used.assign(N + 1, 0);
    do {
      Used[J0] = 1;
      std::size_t I0 = P[J0], J1 = 0;
      double Delta = Inf;
      for (std::size_t J = 1; J <= N; ++J) {
        if (Used[J])
          continue;
        double Cur = A[(I0 - 1) * N + (J - 1)] - U[I0] - V[J];
        if (Cur < MinV[J]) {
          MinV[J] = Cur;
          Way[J] = J0;
        }
        if (MinV[J] < Delta) {
          Delta = MinV[J];
          J1 = J;
        }
      }
      for (std::size_t J = 0; J <= N; ++J) {
        if (Used[J]) {
          U[P[J]] += Delta;
          V[J] -= Delta;
        } else {
          MinV[J] -= Delta;
        }
      }
      J0 = J1;
    } while (P[J0] != 0);
    do {
      std::size_t J1 = Way[J0];
      P[J0] = P[J1];
      J0 = J1;
    } while (J0 != 0);
  }
}

Assignment diffcode::solveAssignment(const CostMatrix &Costs,
                                     AssignmentWorkspace &Scratch) {
  const std::size_t N = std::max(Costs.rows(), Costs.cols());
  Assignment Result;
  if (N == 0)
    return Result;

  // Fault-injection point, keyed on the matrix content (shape + corner
  // entries) so the decision is a pure function of the input and thus
  // identical no matter which thread solves this pair.
  {
    std::uint64_t Key = (static_cast<std::uint64_t>(Costs.rows()) << 32) ^
                        Costs.cols();
    if (Costs.rows() > 0 && Costs.cols() > 0)
      Key ^= support::faultMix(
                 std::bit_cast<std::uint64_t>(Costs.at(0, 0) + 1.0)) ^
             std::bit_cast<std::uint64_t>(
                 Costs.at(Costs.rows() - 1, Costs.cols() - 1) + 2.0);
    support::throwIfFault(support::FaultSite::Hungarian, Key);
  }

  Scratch.Square.assign(N * N, 0.0);
  for (std::size_t R = 0; R < Costs.rows(); ++R)
    for (std::size_t C = 0; C < Costs.cols(); ++C)
      Scratch.Square[R * N + C] = Costs.at(R, C);

  solveSquare(Scratch.Square, N, Scratch.U, Scratch.V, Scratch.MinV,
              Scratch.P, Scratch.Way, Scratch.Used);

  // P[J] = row assigned to column J; read the matching column-by-column.
  Result.RowToCol.assign(Costs.rows(), Assignment::Unmatched);
  for (std::size_t J = 1; J <= N; ++J) {
    std::size_t R = Scratch.P[J] - 1, C = J - 1;
    if (R < Costs.rows() && C < Costs.cols())
      Result.RowToCol[R] = C;
  }
  for (std::size_t R = 0; R < Costs.rows(); ++R) {
    std::size_t C = Result.RowToCol[R];
    if (C != Assignment::Unmatched)
      Result.TotalCost += Costs.at(R, C);
  }
  return Result;
}

Assignment diffcode::solveAssignment(const CostMatrix &Costs) {
  AssignmentWorkspace Scratch;
  return solveAssignment(Costs, Scratch);
}
