file(REMOVE_RECURSE
  "CMakeFiles/test_diffcode_integration.dir/test_diffcode_integration.cpp.o"
  "CMakeFiles/test_diffcode_integration.dir/test_diffcode_integration.cpp.o.d"
  "test_diffcode_integration"
  "test_diffcode_integration.pdb"
  "test_diffcode_integration[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_diffcode_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
