file(REMOVE_RECURSE
  "CMakeFiles/test_usage_change.dir/test_usage_change.cpp.o"
  "CMakeFiles/test_usage_change.dir/test_usage_change.cpp.o.d"
  "test_usage_change"
  "test_usage_change.pdb"
  "test_usage_change[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_usage_change.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
