//===- tests/test_tls_generality.cpp - Second-API generality tests ---------===//

#include "apimodel/TlsApiModel.h"
#include "core/DiffCode.h"
#include "rules/CryptoChecker.h"
#include "rules/TlsRules.h"

#include <gtest/gtest.h>

using namespace diffcode;

namespace {

const char *Sslv3Source =
    "class Chan { SSLSocketFactory open(KeyManager[] k, TrustManager[] t) "
    "throws Exception { "
    "SSLContext ctx = SSLContext.getInstance(\"SSLv3\"); "
    "SecureRandom r = new SecureRandom(); "
    "ctx.init(k, t, r); "
    "return ctx.getSocketFactory(); } }";

const char *Tls12Source =
    "class Chan { SSLSocketFactory open(KeyManager[] k, TrustManager[] t) "
    "throws Exception { "
    "SSLContext ctx = SSLContext.getInstance(\"TLSv1.2\"); "
    "SecureRandom r = new SecureRandom(); "
    "ctx.init(k, t, r); "
    "return ctx.getSocketFactory(); } }";

rules::UnitFacts factsFor(core::DiffCode &System, const char *Source,
                          analysis::AnalysisResult &Storage) {
  Storage = System.analyzeSourceChecked(Source).Result;
  return rules::UnitFacts::from(Storage);
}

} // namespace

TEST(TlsApiModel, TargetClasses) {
  const apimodel::CryptoApiModel &Api = apimodel::javaTlsApi();
  EXPECT_TRUE(Api.isTargetClass("SSLContext"));
  EXPECT_TRUE(Api.isTargetClass("SSLSocketFactory"));
  EXPECT_FALSE(Api.isTargetClass("Cipher"));
  ASSERT_NE(Api.lookupMethod("SSLContext", "getInstance", 1), nullptr);
  EXPECT_TRUE(Api.lookupMethod("SSLContext", "getInstance", 1)->IsFactory);
  EXPECT_FALSE(Api.lookupMethod("SSLContext", "init", 3)->IsFactory);
}

TEST(TlsGenerality, AnalyzerTracksSslContext) {
  core::DiffCode System(apimodel::javaTlsApi());
  analysis::AnalysisResult Result = System.analyzeSourceChecked(Sslv3Source).Result;
  std::vector<usage::UsageDag> Dags =
      System.dagsForClass(Result, "SSLContext");
  ASSERT_EQ(Dags.size(), 1u);
  bool SawProtocol = false;
  for (const usage::FeaturePath &Path : Dags.front().paths())
    SawProtocol =
        SawProtocol ||
        usage::pathToString(Path) ==
            "SSLContext SSLContext.getInstance arg1:SSLv3";
  EXPECT_TRUE(SawProtocol);
}

TEST(TlsGenerality, UsageChangeFromHardeningCommit) {
  core::DiffCode System(apimodel::javaTlsApi());
  corpus::CodeChange Change;
  Change.OldCode = Sslv3Source;
  Change.NewCode = Tls12Source;
  std::vector<usage::UsageChange> Changes =
      System.usageChangesFor(Change, "SSLContext");
  ASSERT_EQ(Changes.size(), 1u);
  ASSERT_EQ(Changes[0].Removed.size(), 1u);
  ASSERT_EQ(Changes[0].Added.size(), 1u);
  EXPECT_EQ(Changes[0].pathString(Changes[0].Removed[0]),
            "SSLContext SSLContext.getInstance arg1:SSLv3");
  EXPECT_EQ(Changes[0].pathString(Changes[0].Added[0]),
            "SSLContext SSLContext.getInstance arg1:TLSv1.2");
}

TEST(TlsRules, T1FlagsDeprecatedProtocols) {
  core::DiffCode System(apimodel::javaTlsApi());
  rules::CryptoChecker Checker(rules::tlsRules());
  analysis::AnalysisResult OldStore, NewStore;
  rules::UnitFacts OldFacts = factsFor(System, Sslv3Source, OldStore);
  rules::UnitFacts NewFacts = factsFor(System, Tls12Source, NewStore);

  rules::ProjectReport OldReport = Checker.checkProject({OldFacts});
  rules::ProjectReport NewReport = Checker.checkProject({NewFacts});
  EXPECT_TRUE(OldReport.verdicts()[0].Matched);  // T1
  EXPECT_TRUE(OldReport.verdicts()[1].Matched);  // T2
  EXPECT_FALSE(OldReport.verdicts()[2].Matched); // T3 (no getDefault)
  EXPECT_FALSE(NewReport.anyMatch());
}

TEST(TlsRules, T3FlagsDefaultFactory) {
  core::DiffCode System(apimodel::javaTlsApi());
  analysis::AnalysisResult Store;
  rules::UnitFacts Facts = factsFor(
      System,
      "class C { Socket open(String host) throws Exception { "
      "SSLSocketFactory f = SSLSocketFactory.getDefault(); "
      "return f.createSocket(host, 443); } }",
      Store);
  rules::CryptoChecker Checker(rules::tlsRules());
  rules::ProjectReport Report = Checker.checkProject({Facts});
  bool T3 = false;
  for (const rules::RuleVerdict &V : Report.verdicts())
    if (Report.text(V.Rule) == "T3")
      T3 = V.Matched;
  EXPECT_TRUE(T3);
}

TEST(TlsRules, ClassifierWorksAcrossApis) {
  core::DiffCode System(apimodel::javaTlsApi());
  analysis::AnalysisResult OldStore, NewStore;
  rules::UnitFacts OldFacts = factsFor(System, Sslv3Source, OldStore);
  rules::UnitFacts NewFacts = factsFor(System, Tls12Source, NewStore);
  EXPECT_EQ(rules::classifyChange(rules::tlsRules()[0], OldFacts, NewFacts),
            rules::ChangeClass::SecurityFix);
  EXPECT_EQ(rules::classifyChange(rules::tlsRules()[0], NewFacts, OldFacts),
            rules::ChangeClass::BuggyChange);
}

TEST(TlsGenerality, CryptoRulesDoNotInterfere) {
  // Running the TLS source through the *crypto* pipeline still works —
  // the SecureRandom usage is visible, the SSLContext is an unknown
  // class that is tracked but not a target.
  core::DiffCode System(apimodel::CryptoApiModel::javaCryptoApi());
  analysis::AnalysisResult Result = System.analyzeSourceChecked(Sslv3Source).Result;
  EXPECT_FALSE(System.dagsForClass(Result, "SecureRandom").empty());
  EXPECT_TRUE(System.dagsForClass(Result, "SSLContext").empty());
}
