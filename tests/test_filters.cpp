//===- tests/test_filters.cpp - Filter pipeline tests (Section 4.2) --------===//

#include "core/Filters.h"

#include <gtest/gtest.h>

using namespace diffcode;
using namespace diffcode::analysis;
using namespace diffcode::core;
using namespace diffcode::usage;

namespace {

support::Interner &table() {
  static support::Interner Table;
  return Table;
}

FeaturePath path(const char *Algo) {
  return {NodeLabel::root("Cipher"),
          NodeLabel::method("Cipher.getInstance/1"),
          NodeLabel::arg(1, AbstractValue::strConst(Algo))};
}

UsageChange make(const std::vector<FeaturePath> &Removed,
                 const std::vector<FeaturePath> &Added,
                 const char *Origin = "p@c0") {
  return UsageChange::intern(table(), "Cipher", Removed, Added, Origin);
}

} // namespace

TEST(Filters, ClassifySolo) {
  EXPECT_EQ(classifySolo(make({}, {})), FilterStage::FSame);
  EXPECT_EQ(classifySolo(make({}, {path("AES")})), FilterStage::FAdd);
  EXPECT_EQ(classifySolo(make({path("AES")}, {})), FilterStage::FRem);
  EXPECT_EQ(classifySolo(make({path("AES")}, {path("DES")})),
            FilterStage::Kept);
}

TEST(Filters, StageNames) {
  EXPECT_STREQ(filterStageName(FilterStage::Kept), "kept");
  EXPECT_STREQ(filterStageName(FilterStage::FSame), "fsame");
  EXPECT_STREQ(filterStageName(FilterStage::FAdd), "fadd");
  EXPECT_STREQ(filterStageName(FilterStage::FRem), "frem");
  EXPECT_STREQ(filterStageName(FilterStage::FDup), "fdup");
}

TEST(Filters, EmptyInput) {
  FilterResult R = applyFilters({});
  EXPECT_EQ(R.Total, 0u);
  EXPECT_EQ(R.AfterDup, 0u);
  EXPECT_TRUE(R.Kept.empty());
}

TEST(Filters, PipelineCountsMatchAttrition) {
  std::vector<UsageChange> Changes = {
      make({}, {}),                        // fsame
      make({}, {}),                        // fsame
      make({}, {path("AES")}),             // fadd
      make({path("AES")}, {}),             // frem
      make({path("AES")}, {path("DES")}),  // kept
      make({path("AES")}, {path("DES")}),  // fdup of previous
      make({path("DES")}, {path("AES")}),  // kept (reversed != dup)
  };
  FilterResult R = applyFilters(Changes);
  EXPECT_EQ(R.Total, 7u);
  EXPECT_EQ(R.AfterSame, 5u);
  EXPECT_EQ(R.AfterAdd, 4u);
  EXPECT_EQ(R.AfterRem, 3u);
  EXPECT_EQ(R.AfterDup, 2u);
  ASSERT_EQ(R.Kept.size(), 2u);
  ASSERT_EQ(R.Outcome.size(), 7u);
  EXPECT_EQ(R.Outcome[0], FilterStage::FSame);
  EXPECT_EQ(R.Outcome[2], FilterStage::FAdd);
  EXPECT_EQ(R.Outcome[3], FilterStage::FRem);
  EXPECT_EQ(R.Outcome[4], FilterStage::Kept);
  EXPECT_EQ(R.Outcome[5], FilterStage::FDup);
  EXPECT_EQ(R.Outcome[6], FilterStage::Kept);
}

TEST(Filters, DupKeepsFirstOccurrence) {
  std::vector<UsageChange> Changes = {
      make({path("AES")}, {path("DES")}, "first"),
      make({path("AES")}, {path("DES")}, "second"),
  };
  FilterResult R = applyFilters(Changes);
  ASSERT_EQ(R.Kept.size(), 1u);
  EXPECT_EQ(R.Kept[0].Origin, "first");
}

TEST(Filters, DupIgnoresOrigin) {
  // Identical features from different projects are still duplicates —
  // that is the whole point of fdup.
  std::vector<UsageChange> Changes = {
      make({path("AES")}, {path("DES")}, "projA@c1"),
      make({path("AES")}, {path("DES")}, "projB@c9"),
  };
  EXPECT_EQ(applyFilters(Changes).AfterDup, 1u);
}

TEST(Filters, DifferentTypeNamesAreNotDuplicates) {
  UsageChange A = make({path("AES")}, {path("DES")});
  UsageChange B = A;
  B.TypeName = "Mac";
  FilterResult R = applyFilters({A, B});
  EXPECT_EQ(R.Kept.size(), 2u);
}

TEST(Filters, IdempotentOnKeptChanges) {
  std::vector<UsageChange> Changes = {
      make({path("AES")}, {path("DES")}),
      make({path("DES")}, {path("AES/GCM/NoPadding")}),
      make({}, {}),
  };
  FilterResult Once = applyFilters(Changes);
  FilterResult Twice = applyFilters(Once.Kept);
  EXPECT_EQ(Twice.Total, Once.Kept.size());
  EXPECT_EQ(Twice.Kept.size(), Once.Kept.size());
  for (std::size_t I = 0; I < Twice.Kept.size(); ++I)
    EXPECT_TRUE(Twice.Kept[I].sameFeatures(Once.Kept[I]));
}

TEST(Filters, OrderOfStagesMattersForAttribution) {
  // A change with empty F- AND empty F+ is attributed to fsame, not fadd
  // or frem (the paper reports fsame separately even though fadd+frem
  // subsume it).
  FilterResult R = applyFilters({make({}, {})});
  EXPECT_EQ(R.Outcome[0], FilterStage::FSame);
}

TEST(Filters, LargeBatchStaysConsistent) {
  std::vector<UsageChange> Changes;
  for (int I = 0; I < 200; ++I) {
    if (I % 4 == 0)
      Changes.push_back(make({}, {}));
    else if (I % 4 == 1)
      Changes.push_back(make({}, {path("AES")}));
    else if (I % 4 == 2)
      Changes.push_back(make({path("AES")}, {}));
    else
      Changes.push_back(make({path("AES")}, {path("DES")}));
  }
  FilterResult R = applyFilters(Changes);
  EXPECT_EQ(R.Total, 200u);
  EXPECT_EQ(R.AfterSame, 150u);
  EXPECT_EQ(R.AfterAdd, 100u);
  EXPECT_EQ(R.AfterRem, 50u);
  // 50 identical kept changes collapse to 1.
  EXPECT_EQ(R.AfterDup, 1u);
}
