# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_suggest_rules "/root/repo/build/examples/suggest_rules")
set_tests_properties(example_suggest_rules PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_tls_generality "/root/repo/build/examples/tls_generality")
set_tests_properties(example_tls_generality PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;25;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_mine_and_cluster "/root/repo/build/examples/mine_and_cluster" "10" "5")
set_tests_properties(example_mine_and_cluster PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;26;add_test;/root/repo/examples/CMakeLists.txt;0;")
