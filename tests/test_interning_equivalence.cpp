//===- tests/test_interning_equivalence.cpp - ID model vs string engine ----===//
//
// Differential harness for the interned corpus data model (DESIGN.md
// "Interned data model"). The refactor's promise is behavioral
// invisibility: every stage that now runs on LabelId/PathId integers —
// shortest-path elimination, the fsame/fadd/frem/fdup filters, the
// memoised distance cache, clustering, report emission — must produce
// byte-identical results to a reference engine that works directly on
// materialized strings, exactly like the pre-interning implementation.
//
// The reference engine here is deliberately naive: it renders every
// path with pathToString, filters on string tuples, and computes
// distances with the string-space usageDist (Distance.h), which shares
// no code with UsageDistCache's id-compacted tables beyond the unit
// definitions. Agreement is checked on hand-built smoke changes and on
// generated corpora, end-to-end through DiffCode::run at 1, 2, and 8
// threads.
//
//===----------------------------------------------------------------------===//

#include "core/DiffCode.h"

#include "cluster/Distance.h"
#include "cluster/DistanceCache.h"
#include "cluster/HierarchicalClustering.h"
#include "core/ReportWriter.h"
#include "support/JsonWriter.h"
#include "corpus/CorpusGenerator.h"
#include "corpus/Miner.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <set>
#include <tuple>

using namespace diffcode;
using namespace diffcode::analysis;
using namespace diffcode::core;
using namespace diffcode::usage;

namespace {

const apimodel::CryptoApiModel &api() {
  return apimodel::CryptoApiModel::javaCryptoApi();
}

support::Interner &table() {
  static support::Interner Table;
  return Table;
}

//===----------------------------------------------------------------------===//
// String-space reference engine
//===----------------------------------------------------------------------===//

/// A usage change rendered back to the pre-interning representation.
struct StringChange {
  std::string TypeName;
  std::vector<std::string> Removed;
  std::vector<std::string> Added;
};

StringChange render(const UsageChange &Change) {
  StringChange Out;
  Out.TypeName = Change.TypeName;
  for (const FeaturePath &Path : Change.removedPaths())
    Out.Removed.push_back(pathToString(Path));
  for (const FeaturePath &Path : Change.addedPaths())
    Out.Added.push_back(pathToString(Path));
  return Out;
}

/// The filter pipeline exactly as the string-based engine ran it:
/// emptiness checks plus a first-occurrence duplicate set keyed on
/// rendered feature strings.
std::vector<FilterStage>
referenceFilters(const std::vector<UsageChange> &Changes) {
  std::vector<FilterStage> Outcome;
  std::set<std::tuple<std::string, std::vector<std::string>,
                      std::vector<std::string>>>
      Seen;
  for (const UsageChange &Change : Changes) {
    StringChange S = render(Change);
    if (S.Removed.empty() && S.Added.empty())
      Outcome.push_back(FilterStage::FSame);
    else if (S.Removed.empty())
      Outcome.push_back(FilterStage::FAdd);
    else if (S.Added.empty())
      Outcome.push_back(FilterStage::FRem);
    else if (!Seen.emplace(S.TypeName, S.Removed, S.Added).second)
      Outcome.push_back(FilterStage::FDup);
    else
      Outcome.push_back(FilterStage::Kept);
  }
  return Outcome;
}

/// Random feature path over a small crypto vocabulary (same shape as the
/// clustering differential harnesses).
FeaturePath randomPath(Rng &R) {
  static const char *Roots[] = {"Cipher", "MessageDigest", "SecureRandom"};
  static const char *Methods[] = {"Cipher.getInstance/1", "Cipher.init/3",
                                  "Cipher.doFinal/1",
                                  "MessageDigest.getInstance/1",
                                  "SecureRandom.setSeed/1"};
  static const char *Strings[] = {"AES", "AES/CBC/PKCS5Padding",
                                  "AES/GCM/NoPadding", "DES", "SHA-1",
                                  "SHA-256"};
  FeaturePath Path = {NodeLabel::root(Roots[R.index(3)])};
  Path.push_back(NodeLabel::method(Methods[R.index(5)]));
  if (R.chance(0.7)) {
    unsigned Index = static_cast<unsigned>(R.range(1, 3));
    if (R.chance(0.6))
      Path.push_back(
          NodeLabel::arg(Index, AbstractValue::strConst(Strings[R.index(6)])));
    else
      Path.push_back(NodeLabel::arg(Index, AbstractValue::byteArrayTop()));
  }
  return Path;
}

std::vector<UsageChange> randomCorpus(unsigned Seed, std::size_t Size) {
  Rng R(Seed * 6271u + 5);
  std::vector<UsageChange> Changes;
  Changes.reserve(Size);
  for (std::size_t C = 0; C < Size; ++C) {
    std::vector<FeaturePath> Removed, Added;
    for (std::size_t I = 0, N = R.range(0, 3); I < N; ++I)
      Removed.push_back(randomPath(R));
    for (std::size_t I = 0, N = R.range(0, 3); I < N; ++I)
      Added.push_back(randomPath(R));
    Changes.push_back(UsageChange::intern(table(), "Cipher", Removed, Added));
  }
  return Changes;
}

/// Smoke corpus: hand-built changes covering duplicates, pure adds, pure
/// removals, empty changes, shared prefixes, and string/non-string args.
std::vector<UsageChange> smokeCorpus() {
  auto Mode = [](const char *From, const char *To) {
    return UsageChange::intern(
        table(), "Cipher",
        {{NodeLabel::root("Cipher"), NodeLabel::method("Cipher.getInstance/1"),
          NodeLabel::arg(1, AbstractValue::strConst(From))}},
        {{NodeLabel::root("Cipher"), NodeLabel::method("Cipher.getInstance/1"),
          NodeLabel::arg(1, AbstractValue::strConst(To))}});
  };
  std::vector<UsageChange> Changes = {
      Mode("AES", "AES/CBC/PKCS5Padding"),
      Mode("AES", "AES/CBC/PKCS5Padding"), // exact duplicate -> fdup
      Mode("DES", "AES/GCM/NoPadding"),
      UsageChange::intern(table(), "Cipher", {}, {}),          // fsame
      UsageChange::intern(
          table(), "Cipher", {},
          {{NodeLabel::root("Cipher"),
            NodeLabel::method("Cipher.doFinal/1")}}),          // fadd
      UsageChange::intern(
          table(), "Cipher",
          {{NodeLabel::root("Cipher"),
            NodeLabel::method("Cipher.doFinal/1")}},
          {}),                                                 // frem
      UsageChange::intern(
          table(), "Cipher",
          {{NodeLabel::root("Cipher"),
            NodeLabel::method("Cipher.init/3"),
            NodeLabel::arg(2, AbstractValue::intConst(128))}},
          {{NodeLabel::root("Cipher"),
            NodeLabel::method("Cipher.init/3"),
            NodeLabel::arg(2, AbstractValue::intConst(256))}}),
  };
  return Changes;
}

void expectIdenticalTrees(const cluster::Dendrogram &A,
                          const cluster::Dendrogram &B) {
  ASSERT_EQ(A.leafCount(), B.leafCount());
  ASSERT_EQ(A.nodes().size(), B.nodes().size());
  for (std::size_t I = 0; I < A.nodes().size(); ++I) {
    const cluster::Dendrogram::Node &X = A.nodes()[I];
    const cluster::Dendrogram::Node &Y = B.nodes()[I];
    EXPECT_EQ(X.Left, Y.Left) << "node " << I;
    EXPECT_EQ(X.Right, Y.Right) << "node " << I;
    EXPECT_EQ(X.Item, Y.Item) << "node " << I;
    EXPECT_EQ(X.Height, Y.Height) << "node " << I; // exact, not approximate
  }
}

} // namespace

//===----------------------------------------------------------------------===//
// Filters: integer-set fdup vs string-tuple fdup
//===----------------------------------------------------------------------===//

TEST(InterningEquivalence, FiltersMatchStringReferenceOnSmoke) {
  std::vector<UsageChange> Changes = smokeCorpus();
  FilterResult Production = applyFilters(Changes);
  std::vector<FilterStage> Reference = referenceFilters(Changes);
  ASSERT_EQ(Production.Outcome.size(), Reference.size());
  for (std::size_t I = 0; I < Reference.size(); ++I)
    EXPECT_EQ(Production.Outcome[I], Reference[I]) << "change " << I;
}

TEST(InterningEquivalence, FiltersMatchStringReferenceOnRandomCorpora) {
  for (unsigned Seed = 0; Seed < 8; ++Seed) {
    std::vector<UsageChange> Changes = randomCorpus(Seed, 150);
    FilterResult Production = applyFilters(Changes);
    std::vector<FilterStage> Reference = referenceFilters(Changes);
    ASSERT_EQ(Production.Outcome.size(), Reference.size());
    for (std::size_t I = 0; I < Reference.size(); ++I)
      EXPECT_EQ(Production.Outcome[I], Reference[I])
          << "seed " << Seed << " change " << I;
  }
}

//===----------------------------------------------------------------------===//
// Distance: id-compacted cache vs string-space usageDist
//===----------------------------------------------------------------------===//

TEST(InterningEquivalence, DistanceCacheMatchesStringMetricExactly) {
  for (unsigned Seed : {0u, 1u, 2u}) {
    std::vector<UsageChange> Changes = randomCorpus(Seed + 100, 60);
    cluster::UsageDistCache Cache(Changes);
    for (std::size_t I = 0; I < Changes.size(); ++I)
      for (std::size_t J = I; J < Changes.size(); ++J)
        EXPECT_EQ(Cache(I, J), cluster::usageDist(Changes[I], Changes[J]))
            << "seed " << Seed << " pair (" << I << "," << J << ")";
  }
}

TEST(InterningEquivalence, ClusteringMatchesStringMetricTrees) {
  // Production: interned cache + NN-chain. Reference: string-space
  // usageDist matrix + naive agglomeration. Trees must be bit-identical.
  for (unsigned Seed : {3u, 4u}) {
    std::vector<UsageChange> Changes = randomCorpus(Seed + 200, 80);
    cluster::Dendrogram Production = cluster::clusterUsageChanges(Changes);

    std::vector<double> D = cluster::pairwiseDistanceMatrix(
        Changes.size(), [&](std::size_t I, std::size_t J) {
          return cluster::usageDist(Changes[I], Changes[J]);
        });
    cluster::Dendrogram Reference = cluster::agglomerateDistanceMatrix(
        Changes.size(), D, cluster::ClusteringOptions::Algorithm::Naive);
    expectIdenticalTrees(Production, Reference);
  }
}

//===----------------------------------------------------------------------===//
// Reports: id-resolved emission vs hand-rendered strings
//===----------------------------------------------------------------------===//

TEST(InterningEquivalence, UsageChangeJsonMatchesHandRendering) {
  for (const UsageChange &Change : smokeCorpus()) {
    StringChange S = render(Change);
    JsonWriter W;
    W.beginObject();
    W.key("type").value(S.TypeName);
    W.key("origin").value(Change.Origin);
    W.key("removed").beginArray();
    for (const std::string &Path : S.Removed)
      W.value(Path);
    W.endArray();
    W.key("added").beginArray();
    for (const std::string &Path : S.Added)
      W.value(Path);
    W.endArray();
    W.endObject();
    EXPECT_EQ(usageChangeToJson(Change), W.take());
  }
}

//===----------------------------------------------------------------------===//
// End to end: generated corpora through DiffCode::run at 1/2/8 threads.
// Id values are scheduling-dependent when workers intern concurrently;
// the report must not be.
//===----------------------------------------------------------------------===//

TEST(InterningEquivalence, PipelineReportByteIdenticalAcrossThreadCounts) {
  corpus::CorpusOptions Opts;
  Opts.Seed = 83;
  Opts.NumProjects = 8;
  corpus::Corpus C = corpus::CorpusGenerator(Opts).generate();
  corpus::Miner M(api());
  std::vector<const corpus::CodeChange *> Mined = M.mine(C);
  ASSERT_FALSE(Mined.empty());

  PipelineRequest Request;
  Request.Changes = Mined;
  Request.TargetClasses = api().targetClasses();

  std::string Baseline;
  for (unsigned Threads : {1u, 2u, 8u}) {
    PipelineConfig Options;
    Options.Threads = Threads;
    Options.Clustering.Threads = Threads;
    CorpusReport Report = DiffCode(api(), Options).run(Request);
    std::string Json = corpusReportToJson(Report);
    if (Baseline.empty())
      Baseline = Json;
    else
      EXPECT_EQ(Json, Baseline) << "threads=" << Threads;

    // Each kept change also re-renders identically from materialized
    // strings — the per-change byte-identity behind the corpus JSON.
    for (const ClassReport &Class : Report.PerClass)
      for (const UsageChange &Kept : Class.Filtered.Kept) {
        StringChange S = render(Kept);
        std::vector<std::string> FromIds;
        for (support::PathId Id : Kept.Removed)
          FromIds.push_back(Kept.pathString(Id));
        EXPECT_EQ(FromIds, S.Removed);
      }
  }
  EXPECT_FALSE(Baseline.empty());
}

TEST(InterningEquivalence, ExplicitSharedInternerMatchesPerEngineDefault) {
  // Supplying one shared table through the request must not change the
  // report vs each engine interning into its own default table.
  corpus::CorpusOptions Opts;
  Opts.Seed = 89;
  Opts.NumProjects = 6;
  corpus::Corpus C = corpus::CorpusGenerator(Opts).generate();
  corpus::Miner M(api());
  std::vector<const corpus::CodeChange *> Mined = M.mine(C);
  ASSERT_FALSE(Mined.empty());

  DiffCode System(api());
  PipelineRequest Default;
  Default.Changes = Mined;
  Default.TargetClasses = api().targetClasses();
  PipelineRequest Shared = Default;
  Shared.Labels = std::make_shared<support::Interner>();

  std::string A = corpusReportToJson(System.run(Default));
  std::string B = corpusReportToJson(System.run(Shared));
  EXPECT_EQ(A, B);
}
