//===- corpus/CorpusIO.cpp -------------------------------------------------===//

#include "corpus/CorpusIO.h"

#include "support/StringUtils.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

namespace fs = std::filesystem;

using namespace diffcode;
using namespace diffcode::corpus;

namespace {

bool fail(std::string *Error, const std::string &Message) {
  if (Error)
    *Error = Message;
  return false;
}

bool writeFile(const fs::path &Path, const std::string &Content,
               std::string *Error) {
  std::ofstream Out(Path);
  if (!Out)
    return fail(Error, "cannot write " + Path.string());
  Out << Content;
  // A full disk or I/O error surfaces on the stream state, possibly only
  // when the buffer flushes at close — an unchecked short write here
  // would round-trip a silently truncated corpus.
  Out.close();
  if (Out.fail())
    return fail(Error, "short write to " + Path.string());
  return true;
}

std::optional<std::string> readFile(const fs::path &Path) {
  return readFileContents(Path.string());
}

std::string metaToText(const rules::ProjectMetadata &Meta) {
  std::string Out;
  Out += "isAndroid=" + std::string(Meta.IsAndroid ? "true" : "false") + "\n";
  Out += "minSdkVersion=" + std::to_string(Meta.MinSdkVersion) + "\n";
  Out += "hasLinuxPrngFix=" +
         std::string(Meta.HasLinuxPrngFix ? "true" : "false") + "\n";
  return Out;
}

rules::ProjectMetadata metaFromText(const std::string &Text) {
  rules::ProjectMetadata Meta;
  for (const std::string &Line : split(Text, '\n')) {
    std::string_view Trimmed = trim(Line);
    std::size_t Eq = Trimmed.find('=');
    if (Eq == std::string_view::npos)
      continue;
    std::string_view Key = Trimmed.substr(0, Eq);
    std::string_view Value = Trimmed.substr(Eq + 1);
    if (Key == "isAndroid")
      Meta.IsAndroid = Value == "true";
    else if (Key == "minSdkVersion")
      Meta.MinSdkVersion = std::atoi(std::string(Value).c_str());
    else if (Key == "hasLinuxPrngFix")
      Meta.HasLinuxPrngFix = Value == "true";
  }
  return Meta;
}

std::string commitDirName(unsigned Index) {
  char Buf[16];
  std::snprintf(Buf, sizeof(Buf), "c%04u", Index);
  return Buf;
}

/// Chunked fallback for sources mmap cannot serve: reads to EOF,
/// retrying short reads (a pipe writer filling in bursts must not look
/// like a smaller file). nullopt on a read error.
std::optional<std::string> readStreaming(int Fd) {
  std::string Out;
  char Buf[1 << 16];
  for (;;) {
    ssize_t N = ::read(Fd, Buf, sizeof(Buf));
    if (N == 0)
      return Out;
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return std::nullopt;
    }
    Out.append(Buf, static_cast<std::size_t>(N));
  }
}

} // namespace

std::optional<std::string>
diffcode::corpus::readFileContents(const std::string &Path) {
  int Fd = ::open(Path.c_str(), O_RDONLY | O_CLOEXEC);
  if (Fd < 0)
    return std::nullopt;
  struct stat St;
  if (::fstat(Fd, &St) != 0 || S_ISDIR(St.st_mode)) {
    ::close(Fd);
    return std::nullopt;
  }

  std::optional<std::string> Out;
  if (S_ISREG(St.st_mode) && St.st_size > 0) {
    // The batch-ingest fast path: map the file and copy it out in one
    // pre-sized allocation. The kernel serves the copy straight from the
    // page cache — no userspace double-buffer between disk and string.
    std::size_t Size = static_cast<std::size_t>(St.st_size);
    void *Map = ::mmap(nullptr, Size, PROT_READ, MAP_PRIVATE, Fd, 0);
    if (Map != MAP_FAILED) {
      Out.emplace(static_cast<const char *>(Map), Size);
      ::munmap(Map, Size);
    } else {
      Out = readStreaming(Fd);
    }
  } else {
    // FIFOs, device files, and zero-stat-size regular files (procfs
    // style) have no mappable extent; stream them to EOF instead.
    Out = readStreaming(Fd);
  }
  ::close(Fd);
  return Out;
}

bool diffcode::corpus::writeCorpus(const Corpus &C, const std::string &RootDir,
                                   std::string *Error) {
  std::error_code EC;
  fs::create_directories(RootDir, EC);
  if (EC)
    return fail(Error, "cannot create " + RootDir + ": " + EC.message());

  for (const Project &P : C.Projects) {
    fs::path ProjectDir = fs::path(RootDir) / P.Name;
    fs::create_directories(ProjectDir / "head", EC);
    if (EC)
      return fail(Error, "cannot create " + ProjectDir.string());
    if (!writeFile(ProjectDir / "project.meta", metaToText(P.Meta), Error))
      return false;
    for (const ProjectFile &File : P.Files)
      if (!writeFile(ProjectDir / "head" / File.Name, File.Code, Error))
        return false;

    for (const CodeChange &Change : P.History) {
      fs::path CommitDir =
          ProjectDir / "commits" / commitDirName(Change.CommitIndex);
      fs::create_directories(CommitDir, EC);
      if (EC)
        return fail(Error, "cannot create " + CommitDir.string());
      if (!writeFile(CommitDir / "kind.txt", Change.Kind + "\n", Error) ||
          !writeFile(CommitDir / "file.txt", Change.FileName + "\n", Error) ||
          !writeFile(CommitDir / "old.java", Change.OldCode, Error) ||
          !writeFile(CommitDir / "new.java", Change.NewCode, Error))
        return false;
    }
  }
  return true;
}

std::optional<Corpus> diffcode::corpus::readCorpus(const std::string &RootDir,
                                                   std::string *Error) {
  if (!fs::is_directory(RootDir)) {
    fail(Error, RootDir + " is not a directory");
    return std::nullopt;
  }

  Corpus C;
  std::vector<fs::path> ProjectDirs;
  for (const fs::directory_entry &Entry : fs::directory_iterator(RootDir))
    if (Entry.is_directory())
      ProjectDirs.push_back(Entry.path());
  std::sort(ProjectDirs.begin(), ProjectDirs.end());

  for (const fs::path &ProjectDir : ProjectDirs) {
    Project P;
    P.Name = ProjectDir.filename().string();
    if (auto Meta = readFile(ProjectDir / "project.meta"))
      P.Meta = metaFromText(*Meta);

    if (fs::is_directory(ProjectDir / "head")) {
      std::vector<fs::path> Heads;
      for (const fs::directory_entry &Entry :
           fs::directory_iterator(ProjectDir / "head"))
        if (Entry.is_regular_file())
          Heads.push_back(Entry.path());
      std::sort(Heads.begin(), Heads.end());
      for (const fs::path &Head : Heads)
        if (auto Code = readFile(Head))
          P.Files.push_back({Head.filename().string(), std::move(*Code)});
    }

    if (fs::is_directory(ProjectDir / "commits")) {
      std::vector<fs::path> CommitDirs;
      for (const fs::directory_entry &Entry :
           fs::directory_iterator(ProjectDir / "commits"))
        if (Entry.is_directory())
          CommitDirs.push_back(Entry.path());
      std::sort(CommitDirs.begin(), CommitDirs.end());
      for (const fs::path &CommitDir : CommitDirs) {
        CodeChange Change;
        Change.ProjectName = P.Name;
        std::string Name = CommitDir.filename().string();
        if (Name.size() > 1 && Name[0] == 'c')
          Change.CommitIndex =
              static_cast<unsigned>(std::atoi(Name.c_str() + 1));
        if (auto Kind = readFile(CommitDir / "kind.txt"))
          Change.Kind = std::string(trim(*Kind));
        if (auto File = readFile(CommitDir / "file.txt"))
          Change.FileName = std::string(trim(*File));
        if (auto Old = readFile(CommitDir / "old.java"))
          Change.OldCode = std::move(*Old);
        if (auto New = readFile(CommitDir / "new.java"))
          Change.NewCode = std::move(*New);
        P.History.push_back(std::move(Change));
      }
    }
    C.Projects.push_back(std::move(P));
  }
  return C;
}
