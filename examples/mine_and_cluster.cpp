//===- examples/mine_and_cluster.cpp - The full DiffCode pipeline ----------===//
//
// Part of the DiffCode project, a reproduction of "Inferring Crypto API
// Rules from Code Changes" (PLDI'18).
//
//===----------------------------------------------------------------------===//
//
// End-to-end demo of Sections 4-6: generate a GitHub-shaped corpus, mine
// the crypto-touching commits, run the abstraction + filters, cluster the
// surviving semantic usage changes per target class, and print the
// Cipher dendrogram together with auto-suggested rule candidates for the
// largest clusters.
//
// Usage: mine_and_cluster [num_projects] [seed]
//
//===----------------------------------------------------------------------===//

#include "core/DiffCode.h"
#include "corpus/CorpusGenerator.h"
#include "corpus/Miner.h"
#include "rules/RuleSuggestion.h"

#include <cstdio>
#include <cstdlib>

using namespace diffcode;

int main(int argc, char **argv) {
  corpus::CorpusOptions CorpusOpts;
  CorpusOpts.NumProjects = argc > 1 ? std::atoi(argv[1]) : 40;
  CorpusOpts.Seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 42;

  std::printf("generating corpus: %u projects (seed %llu)...\n",
              CorpusOpts.NumProjects,
              static_cast<unsigned long long>(CorpusOpts.Seed));
  corpus::Corpus C = corpus::CorpusGenerator(CorpusOpts).generate();

  const apimodel::CryptoApiModel &Api = apimodel::CryptoApiModel::javaCryptoApi();
  corpus::Miner M(Api);
  std::vector<const corpus::CodeChange *> Mined = M.mine(C);
  std::printf("mined %zu crypto-touching code changes out of %zu commits\n\n",
              Mined.size(), C.totalChanges());

  core::DiffCode System(Api);
  core::CorpusReport Report = System.run(
      {.Changes = Mined, .TargetClasses = Api.targetClasses()});

  std::printf("%-16s %8s %7s %6s %6s %6s\n", "target class", "usages",
              "fsame", "fadd", "frem", "fdup");
  for (const core::ClassReport &Class : Report.PerClass)
    std::printf("%-16s %8zu %7zu %6zu %6zu %6zu\n",
                Class.TargetClass.c_str(), Class.Filtered.Total,
                Class.Filtered.AfterSame, Class.Filtered.AfterAdd,
                Class.Filtered.AfterRem, Class.Filtered.AfterDup);

  // Show the Cipher dendrogram (Figure 8 analogue) and suggest rules for
  // the flat clusters at the pipeline's cut threshold.
  for (const core::ClassReport &Class : Report.PerClass) {
    if (Class.TargetClass != "Cipher" || Class.Filtered.Kept.empty())
      continue;
    std::printf("\n== hierarchical clustering of the %zu semantic Cipher "
                "changes ==\n",
                Class.Filtered.Kept.size());
    std::printf("%s", Class.Tree
                          .render([&](std::size_t Item) {
                            return Class.Filtered.Kept[Item].str();
                          })
                          .c_str());

    std::printf("\n== auto-suggested rule candidates (clusters with >= 2 "
                "changes) ==\n");
    for (const std::vector<std::size_t> &Cluster :
         Class.Tree.cut(System.config().Clustering.Cut)) {
      if (Cluster.size() < 2)
        continue;
      std::vector<usage::UsageChange> Members;
      for (std::size_t Item : Cluster)
        Members.push_back(Class.Filtered.Kept[Item]);
      if (auto Suggested = rules::suggestRuleForCluster(
              Members, "cluster-" + std::to_string(Cluster.size())))
        std::printf("  [%zu changes] %s\n", Cluster.size(),
                    rules::describeRule(*Suggested).c_str());
    }
  }
  return 0;
}
