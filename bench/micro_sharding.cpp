//===- bench/micro_sharding.cpp - Sharded clustering sweep -----------------===//
//
// Part of the DiffCode project, a reproduction of "Inferring Crypto API
// Rules from Code Changes" (PLDI'18).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Sweeps the shard-and-merge clustering engine over shard sizes and
/// thread counts on a synthetic usage-change corpus at paper scale
/// (default n = 10,000 — the order of the paper's 11,551 Cipher
/// changes), recording the peak distance-matrix footprint and the wall
/// time per configuration. The dense engine's matrix at that n is
/// n^2 * 8 bytes (~760 MiB); the ISSUE's acceptance bar is < 200 MiB
/// for every sharded configuration.
///
/// Self-verifying: on a smaller corpus it also checks that the
/// unlimited-cap sharded run is byte-identical to the dense engine and
/// that genuinely sharded runs are deterministic across thread counts.
///
///   micro_sharding [n] [seed] [out.json]   (defaults: 10000 42
///                                           BENCH_sharding.json)
///
//===----------------------------------------------------------------------===//

#include "cluster/DistanceCache.h"
#include "cluster/HierarchicalClustering.h"
#include "cluster/ShardedClustering.h"
#include "support/JsonWriter.h"
#include "support/Rng.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

using namespace diffcode;
using namespace diffcode::analysis;
using namespace diffcode::cluster;
using namespace diffcode::usage;

namespace {

/// Crypto-flavoured corpus (same vocabulary as micro_clustering) whose
/// method labels give the canopy keys realistic collision structure.
FeaturePath randomPath(Rng &R) {
  static const char *Roots[] = {"Cipher", "MessageDigest", "SecureRandom",
                                "KeyGenerator"};
  static const char *Methods[] = {
      "Cipher.getInstance/1",       "Cipher.init/3",
      "Cipher.doFinal/1",           "MessageDigest.getInstance/1",
      "MessageDigest.update/1",     "SecureRandom.setSeed/1",
      "KeyGenerator.getInstance/1", "KeyGenerator.init/1"};
  static const char *Strings[] = {"AES",     "AES/CBC/PKCS5Padding",
                                  "AES/GCM/NoPadding", "DES",
                                  "DES/ECB/PKCS5Padding", "RSA",
                                  "SHA-1",   "SHA-256", "MD5"};
  FeaturePath Path = {NodeLabel::root(Roots[R.index(4)])};
  for (std::size_t Depth = 0, N = R.range(1, 3); Depth < N; ++Depth)
    Path.push_back(NodeLabel::method(Methods[R.index(8)]));
  if (R.chance(0.75)) {
    unsigned Index = static_cast<unsigned>(R.range(1, 3));
    if (R.chance(0.7))
      Path.push_back(
          NodeLabel::arg(Index, AbstractValue::strConst(Strings[R.index(9)])));
    else
      Path.push_back(NodeLabel::arg(Index, AbstractValue::byteArrayTop()));
  }
  return Path;
}

std::vector<UsageChange> randomCorpus(std::uint64_t Seed, std::size_t Size) {
  static support::Interner Table;
  Rng R(Seed);
  std::vector<UsageChange> Changes;
  Changes.reserve(Size);
  for (std::size_t C = 0; C < Size; ++C) {
    std::vector<FeaturePath> Removed, Added;
    for (std::size_t I = 0, N = R.range(0, 3); I < N; ++I)
      Removed.push_back(randomPath(R));
    for (std::size_t I = 0, N = R.range(0, 3); I < N; ++I)
      Added.push_back(randomPath(R));
    Changes.push_back(UsageChange::intern(Table, "Cipher", Removed, Added));
  }
  return Changes;
}

double millisSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - Start)
      .count();
}

bool sameTree(const Dendrogram &A, const Dendrogram &B) {
  if (A.leafCount() != B.leafCount() || A.nodes().size() != B.nodes().size() ||
      A.root() != B.root())
    return false;
  for (std::size_t I = 0; I < A.nodes().size(); ++I) {
    const Dendrogram::Node &X = A.nodes()[I];
    const Dendrogram::Node &Y = B.nodes()[I];
    if (X.Left != Y.Left || X.Right != Y.Right || X.Item != Y.Item ||
        X.Height != Y.Height)
      return false;
  }
  return true;
}

ClusteringOptions shardedOpts(std::size_t MaxShardSize, unsigned Threads) {
  ClusteringOptions Opts;
  Opts.Sharding.Enabled = true;
  Opts.Sharding.MaxShardSize = MaxShardSize;
  Opts.Sharding.Threads = Threads;
  return Opts;
}

} // namespace

int main(int argc, char **argv) {
  long long NArg = argc > 1 ? std::atoll(argv[1]) : 10000;
  if (NArg <= 0) {
    std::fprintf(stderr, "usage: micro_sharding [n > 0] [seed] [out.json]   "
                         "(defaults: 10000 42 BENCH_sharding.json)\n");
    return 2;
  }
  std::size_t N = static_cast<std::size_t>(NArg);
  std::uint64_t Seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 42;
  const char *OutPath = argc > 3 ? argv[3] : "BENCH_sharding.json";

  std::vector<UsageChange> Changes = randomCorpus(Seed, N);
  const std::size_t DenseBytes = N * N * sizeof(double);
  const std::size_t MemoryBar = 200u * 1024 * 1024; // ISSUE acceptance

  JsonWriter W;
  W.beginObject();
  W.key("bench").value("micro_sharding");
  W.key("n").value(static_cast<std::uint64_t>(N));
  W.key("seed").value(Seed);
  W.key("dense_matrix_bytes").value(static_cast<std::uint64_t>(DenseBytes));
  W.key("memory_bar_bytes").value(static_cast<std::uint64_t>(MemoryBar));

  bool AllUnderBar = true;
  W.key("sweep").beginArray();
  for (std::size_t MaxShardSize : {256u, 512u, 1024u}) {
    for (unsigned Threads : {1u, 2u, 8u}) {
      auto Start = std::chrono::steady_clock::now();
      ShardingStats Stats;
      Dendrogram Tree = clusterUsageChangesSharded(
          Changes, shardedOpts(MaxShardSize, Threads), &Stats);
      double WallMs = millisSince(Start);
      AllUnderBar = AllUnderBar && Stats.PeakMatrixBytes < MemoryBar;

      W.beginObject();
      W.key("max_shard_size").value(static_cast<std::uint64_t>(MaxShardSize));
      W.key("threads").value(static_cast<std::uint64_t>(Threads));
      W.key("shards").value(static_cast<std::uint64_t>(Stats.NumShards));
      W.key("largest_shard")
          .value(static_cast<std::uint64_t>(Stats.LargestShard));
      W.key("representatives")
          .value(static_cast<std::uint64_t>(Stats.Representatives));
      W.key("peak_matrix_bytes")
          .value(static_cast<std::uint64_t>(Stats.PeakMatrixBytes));
      W.key("wall_ms").value(WallMs);
      W.key("leaves").value(static_cast<std::uint64_t>(Tree.leafCount()));
      W.endObject();

      std::fprintf(stderr,
                   "  shard<=%-5zu threads=%u  %4zu shards  peak %6.1f MiB  "
                   "%8.1f ms\n",
                   MaxShardSize, Threads, Stats.NumShards,
                   Stats.PeakMatrixBytes / (1024.0 * 1024.0), WallMs);
    }
  }
  W.endArray();

  // Verification corpus, small enough to run the dense engine too.
  std::size_t VerifyN = std::min<std::size_t>(N, 1000);
  std::vector<UsageChange> Small(Changes.begin(), Changes.begin() + VerifyN);
  Dendrogram Dense = clusterUsageChanges(Small);
  bool UnlimitedIdentical =
      sameTree(Dense, clusterUsageChangesSharded(Small, shardedOpts(0, 8)));
  Dendrogram Sharded1 = clusterUsageChangesSharded(Small, shardedOpts(64, 1));
  bool ThreadsDeterministic =
      sameTree(Sharded1, clusterUsageChangesSharded(Small, shardedOpts(64, 2))) &&
      sameTree(Sharded1, clusterUsageChangesSharded(Small, shardedOpts(64, 8)));

  W.key("verify_n").value(static_cast<std::uint64_t>(VerifyN));
  W.key("unlimited_cap_identical").value(UnlimitedIdentical);
  W.key("threads_deterministic").value(ThreadsDeterministic);
  W.key("all_under_memory_bar").value(AllUnderBar);
  W.endObject();

  std::string Json = W.take();
  std::printf("%s\n", Json.c_str());
  std::ofstream Out(OutPath);
  if (Out)
    Out << Json << "\n";
  else
    std::fprintf(stderr, "warning: cannot write %s\n", OutPath);

  if (!UnlimitedIdentical) {
    std::fprintf(stderr, "FAIL: unlimited-cap sharded run differs from the "
                         "dense engine\n");
    return 1;
  }
  if (!ThreadsDeterministic) {
    std::fprintf(stderr, "FAIL: sharded dendrogram depends on thread count\n");
    return 1;
  }
  if (!AllUnderBar) {
    std::fprintf(stderr, "FAIL: a sharded configuration exceeded the 200 MiB "
                         "matrix budget\n");
    return 1;
  }
  return 0;
}
