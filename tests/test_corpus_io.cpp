//===- tests/test_corpus_io.cpp - Corpus persistence tests -----------------===//

#include "corpus/CorpusIO.h"

#include "corpus/CorpusGenerator.h"
#include "corpus/Miner.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

namespace fs = std::filesystem;

using namespace diffcode;
using namespace diffcode::corpus;

namespace {

class CorpusIOTest : public ::testing::Test {
protected:
  void SetUp() override {
    Root = fs::temp_directory_path() /
           ("diffcode-corpusio-" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "-" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    fs::remove_all(Root);
  }
  void TearDown() override { fs::remove_all(Root); }

  fs::path Root;
};

Corpus smallCorpus(std::uint64_t Seed = 13) {
  CorpusOptions Opts;
  Opts.Seed = Seed;
  Opts.NumProjects = 4;
  Opts.MinCommits = 3;
  Opts.MaxCommits = 6;
  return CorpusGenerator(Opts).generate();
}

} // namespace

TEST_F(CorpusIOTest, RoundTripPreservesEverything) {
  Corpus Original = smallCorpus();
  std::string Error;
  ASSERT_TRUE(writeCorpus(Original, Root.string(), &Error)) << Error;

  std::optional<Corpus> Loaded = readCorpus(Root.string(), &Error);
  ASSERT_TRUE(Loaded.has_value()) << Error;
  ASSERT_EQ(Loaded->Projects.size(), Original.Projects.size());

  // readCorpus orders projects lexicographically; compare by name.
  for (const Project &Want : Original.Projects) {
    const Project *Got = nullptr;
    for (const Project &P : Loaded->Projects)
      if (P.Name == Want.Name)
        Got = &P;
    ASSERT_NE(Got, nullptr) << Want.Name;
    EXPECT_EQ(Got->Meta.IsAndroid, Want.Meta.IsAndroid);
    EXPECT_EQ(Got->Meta.MinSdkVersion, Want.Meta.MinSdkVersion);
    EXPECT_EQ(Got->Meta.HasLinuxPrngFix, Want.Meta.HasLinuxPrngFix);
    ASSERT_EQ(Got->Files.size(), Want.Files.size());
    ASSERT_EQ(Got->History.size(), Want.History.size());
    for (std::size_t I = 0; I < Want.History.size(); ++I) {
      EXPECT_EQ(Got->History[I].Kind, Want.History[I].Kind);
      EXPECT_EQ(Got->History[I].FileName, Want.History[I].FileName);
      EXPECT_EQ(Got->History[I].OldCode, Want.History[I].OldCode);
      EXPECT_EQ(Got->History[I].NewCode, Want.History[I].NewCode);
      EXPECT_EQ(Got->History[I].CommitIndex, Want.History[I].CommitIndex);
    }
    for (const ProjectFile &File : Want.Files) {
      bool Found = false;
      for (const ProjectFile &Candidate : Got->Files)
        Found = Found || (Candidate.Name == File.Name &&
                          Candidate.Code == File.Code);
      EXPECT_TRUE(Found) << File.Name;
    }
  }
}

TEST_F(CorpusIOTest, ReadMissingDirectoryFails) {
  std::string Error;
  EXPECT_FALSE(readCorpus((Root / "nope").string(), &Error).has_value());
  EXPECT_FALSE(Error.empty());
}

TEST_F(CorpusIOTest, EmptyCorpusRoundTrips) {
  Corpus Empty;
  std::string Error;
  ASSERT_TRUE(writeCorpus(Empty, Root.string(), &Error)) << Error;
  std::optional<Corpus> Loaded = readCorpus(Root.string(), &Error);
  ASSERT_TRUE(Loaded.has_value());
  EXPECT_TRUE(Loaded->Projects.empty());
}

TEST_F(CorpusIOTest, HandLaidOutProjectLoads) {
  // A minimal hand-written layout (what a git exporter would produce).
  fs::create_directories(Root / "myproj" / "commits" / "c0001");
  fs::create_directories(Root / "myproj" / "head");
  {
    std::ofstream(Root / "myproj" / "project.meta")
        << "isAndroid=true\nminSdkVersion=21\nhasLinuxPrngFix=false\n";
    std::ofstream(Root / "myproj" / "head" / "A.java")
        << "class A { }";
    std::ofstream(Root / "myproj" / "commits" / "c0001" / "old.java")
        << "class A { Cipher c; }";
    std::ofstream(Root / "myproj" / "commits" / "c0001" / "new.java")
        << "class A { }";
    std::ofstream(Root / "myproj" / "commits" / "c0001" / "file.txt")
        << "A.java\n";
  }
  std::string Error;
  std::optional<Corpus> Loaded = readCorpus(Root.string(), &Error);
  ASSERT_TRUE(Loaded.has_value()) << Error;
  ASSERT_EQ(Loaded->Projects.size(), 1u);
  const Project &P = Loaded->Projects[0];
  EXPECT_EQ(P.Name, "myproj");
  EXPECT_TRUE(P.Meta.IsAndroid);
  EXPECT_EQ(P.Meta.MinSdkVersion, 21);
  ASSERT_EQ(P.History.size(), 1u);
  EXPECT_EQ(P.History[0].CommitIndex, 1u);
  EXPECT_EQ(P.History[0].FileName, "A.java");
  EXPECT_TRUE(P.History[0].Kind.empty()); // no kind.txt -> mined change
  EXPECT_NE(P.History[0].OldCode.find("Cipher"), std::string::npos);
}

TEST_F(CorpusIOTest, LoadedCorpusMinesIdentically) {
  Corpus Original = smallCorpus(29);
  std::string Error;
  ASSERT_TRUE(writeCorpus(Original, Root.string(), &Error)) << Error;
  std::optional<Corpus> Loaded = readCorpus(Root.string(), &Error);
  ASSERT_TRUE(Loaded.has_value());

  Miner M(apimodel::CryptoApiModel::javaCryptoApi());
  EXPECT_EQ(M.mine(Original).size(), M.mine(*Loaded).size());
}
