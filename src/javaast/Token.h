//===- javaast/Token.h - Java token definitions ----------------------------===//
//
// Part of the DiffCode project, a reproduction of "Inferring Crypto API
// Rules from Code Changes" (PLDI'18).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Token kinds for the Java subset the DiffCode frontend understands. The
/// subset covers the constructs that appear around Java Crypto API usages
/// in real commits (Figure 2 of the paper is representative).
///
//===----------------------------------------------------------------------===//

#ifndef DIFFCODE_JAVAAST_TOKEN_H
#define DIFFCODE_JAVAAST_TOKEN_H

#include "javaast/SourceLocation.h"

#include <cstring>
#include <string>
#include <string_view>

namespace diffcode {
namespace java {

/// Lexical classes. Keywords get dedicated kinds so the parser can switch
/// on them directly.
enum class TokenKind {
  EndOfFile,
  Unknown,

  Identifier,
  IntLiteral,
  LongLiteral,
  StringLiteral,
  CharLiteral,

  // Keywords.
  KwAbstract,
  KwAssert,
  KwBoolean,
  KwBreak,
  KwByte,
  KwCase,
  KwCatch,
  KwChar,
  KwClass,
  KwContinue,
  KwDefault,
  KwDo,
  KwDouble,
  KwElse,
  KwExtends,
  KwFalse,
  KwFinal,
  KwFinally,
  KwFloat,
  KwFor,
  KwIf,
  KwImplements,
  KwImport,
  KwInstanceof,
  KwInt,
  KwInterface,
  KwLong,
  KwNew,
  KwNull,
  KwPackage,
  KwPrivate,
  KwProtected,
  KwPublic,
  KwReturn,
  KwShort,
  KwStatic,
  KwSuper,
  KwSwitch,
  KwSynchronized,
  KwThis,
  KwThrow,
  KwThrows,
  KwTrue,
  KwTry,
  KwVoid,
  KwWhile,

  // Punctuation and operators.
  LBrace,
  RBrace,
  LParen,
  RParen,
  LBracket,
  RBracket,
  Semi,
  Comma,
  Dot,
  Ellipsis,
  At,
  Question,
  Colon,
  ColonColon,
  Arrow,

  Assign,
  PlusAssign,
  MinusAssign,
  StarAssign,
  SlashAssign,

  Plus,
  Minus,
  Star,
  Slash,
  Percent,
  PlusPlus,
  MinusMinus,

  Not,
  Tilde,
  Amp,
  AmpAmp,
  Pipe,
  PipePipe,
  Caret,

  Less,
  Greater,
  LessEqual,
  GreaterEqual,
  EqualEqual,
  NotEqual,
  Shl,
  Shr,
};

/// A lexed token: kind, spelling, and position. Text is a non-owning view:
/// identifiers, numbers, and escape-free literals view directly into the
/// source buffer; literals that needed decoding (escapes resolved, quotes
/// stripped) view into the TokenStream's decode storage. Tokens are only
/// valid while both the source buffer and the owning TokenStream live.
struct Token {
  TokenKind Kind = TokenKind::Unknown;
  SourceLocation Loc;
  std::string_view Text;

  bool is(TokenKind K) const { return Kind == K; }
  bool isNot(TokenKind K) const { return Kind != K; }

  /// True for any keyword token.
  bool isKeyword() const {
    return Kind >= TokenKind::KwAbstract && Kind <= TokenKind::KwWhile;
  }
};

/// Human-readable token-kind name for diagnostics ("identifier", "'{'").
std::string_view tokenKindName(TokenKind Kind);

namespace detail {

/// One keyword candidate; length and first byte already matched by the
/// caller's switch, so only the remaining bytes are compared.
inline TokenKind tryKeyword(std::string_view Spelling, const char *Candidate,
                            TokenKind Kind) {
  return std::memcmp(Spelling.data() + 1, Candidate + 1,
                     Spelling.size() - 1) == 0
             ? Kind
             : TokenKind::Identifier;
}

} // namespace detail

/// Maps identifier spelling to a keyword kind; returns
/// TokenKind::Identifier when \p Spelling is not a keyword.
///
/// Defined inline: the lexer calls this once per identifier, which makes
/// it part of the scan hot path — the branch on (length, first byte)
/// leaves at most two constant-length memcmp candidates, so the common
/// miss (an ordinary identifier) costs a couple of comparisons and no
/// hashing.
inline TokenKind lookupKeyword(std::string_view Spelling) {
  using detail::tryKeyword;
  if (Spelling.size() < 2 || Spelling.size() > 12)
    return TokenKind::Identifier;
  char First = Spelling[0];
  switch (Spelling.size()) {
  case 2:
    if (First == 'd' && Spelling[1] == 'o')
      return TokenKind::KwDo;
    if (First == 'i' && Spelling[1] == 'f')
      return TokenKind::KwIf;
    return TokenKind::Identifier;
  case 3:
    switch (First) {
    case 'f':
      return tryKeyword(Spelling, "for", TokenKind::KwFor);
    case 'i':
      return tryKeyword(Spelling, "int", TokenKind::KwInt);
    case 'n':
      return tryKeyword(Spelling, "new", TokenKind::KwNew);
    case 't':
      return tryKeyword(Spelling, "try", TokenKind::KwTry);
    }
    return TokenKind::Identifier;
  case 4:
    switch (First) {
    case 'b':
      return tryKeyword(Spelling, "byte", TokenKind::KwByte);
    case 'c':
      if (Spelling[1] == 'a')
        return tryKeyword(Spelling, "case", TokenKind::KwCase);
      return tryKeyword(Spelling, "char", TokenKind::KwChar);
    case 'e':
      return tryKeyword(Spelling, "else", TokenKind::KwElse);
    case 'l':
      return tryKeyword(Spelling, "long", TokenKind::KwLong);
    case 'n':
      return tryKeyword(Spelling, "null", TokenKind::KwNull);
    case 't':
      if (Spelling[1] == 'h')
        return tryKeyword(Spelling, "this", TokenKind::KwThis);
      return tryKeyword(Spelling, "true", TokenKind::KwTrue);
    case 'v':
      return tryKeyword(Spelling, "void", TokenKind::KwVoid);
    }
    return TokenKind::Identifier;
  case 5:
    switch (First) {
    case 'b':
      return tryKeyword(Spelling, "break", TokenKind::KwBreak);
    case 'c':
      if (Spelling[1] == 'a')
        return tryKeyword(Spelling, "catch", TokenKind::KwCatch);
      return tryKeyword(Spelling, "class", TokenKind::KwClass);
    case 'f':
      if (Spelling[1] == 'a')
        return tryKeyword(Spelling, "false", TokenKind::KwFalse);
      if (Spelling[1] == 'i')
        return tryKeyword(Spelling, "final", TokenKind::KwFinal);
      return tryKeyword(Spelling, "float", TokenKind::KwFloat);
    case 's':
      if (Spelling[1] == 'h')
        return tryKeyword(Spelling, "short", TokenKind::KwShort);
      return tryKeyword(Spelling, "super", TokenKind::KwSuper);
    case 't':
      return tryKeyword(Spelling, "throw", TokenKind::KwThrow);
    case 'w':
      return tryKeyword(Spelling, "while", TokenKind::KwWhile);
    }
    return TokenKind::Identifier;
  case 6:
    switch (First) {
    case 'a':
      return tryKeyword(Spelling, "assert", TokenKind::KwAssert);
    case 'd':
      return tryKeyword(Spelling, "double", TokenKind::KwDouble);
    case 'i':
      return tryKeyword(Spelling, "import", TokenKind::KwImport);
    case 'p':
      return tryKeyword(Spelling, "public", TokenKind::KwPublic);
    case 'r':
      return tryKeyword(Spelling, "return", TokenKind::KwReturn);
    case 's':
      if (Spelling[1] == 't')
        return tryKeyword(Spelling, "static", TokenKind::KwStatic);
      return tryKeyword(Spelling, "switch", TokenKind::KwSwitch);
    case 't':
      return tryKeyword(Spelling, "throws", TokenKind::KwThrows);
    }
    return TokenKind::Identifier;
  case 7:
    switch (First) {
    case 'b':
      return tryKeyword(Spelling, "boolean", TokenKind::KwBoolean);
    case 'd':
      return tryKeyword(Spelling, "default", TokenKind::KwDefault);
    case 'e':
      return tryKeyword(Spelling, "extends", TokenKind::KwExtends);
    case 'f':
      return tryKeyword(Spelling, "finally", TokenKind::KwFinally);
    case 'p':
      if (Spelling[1] == 'a')
        return tryKeyword(Spelling, "package", TokenKind::KwPackage);
      return tryKeyword(Spelling, "private", TokenKind::KwPrivate);
    }
    return TokenKind::Identifier;
  case 8:
    switch (First) {
    case 'a':
      return tryKeyword(Spelling, "abstract", TokenKind::KwAbstract);
    case 'c':
      return tryKeyword(Spelling, "continue", TokenKind::KwContinue);
    }
    return TokenKind::Identifier;
  case 9:
    if (First == 'i')
      return tryKeyword(Spelling, "interface", TokenKind::KwInterface);
    if (First == 'p')
      return tryKeyword(Spelling, "protected", TokenKind::KwProtected);
    return TokenKind::Identifier;
  case 10:
    if (First != 'i')
      return TokenKind::Identifier;
    if (Spelling[1] == 'n')
      return tryKeyword(Spelling, "instanceof", TokenKind::KwInstanceof);
    return tryKeyword(Spelling, "implements", TokenKind::KwImplements);
  case 12:
    if (First == 's')
      return tryKeyword(Spelling, "synchronized", TokenKind::KwSynchronized);
    return TokenKind::Identifier;
  }
  return TokenKind::Identifier;
}

} // namespace java
} // namespace diffcode

#endif // DIFFCODE_JAVAAST_TOKEN_H
