//===- cluster/HierarchicalClustering.cpp ----------------------------------===//

#include "cluster/HierarchicalClustering.h"

#include "cluster/DistanceCache.h"
#include "cluster/ShardedClustering.h"
#include "support/FaultInjection.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <limits>

using namespace diffcode;
using namespace diffcode::cluster;

void Dendrogram::collectLeaves(int Index, std::vector<std::size_t> &Out) const {
  const Node &N = Nodes[Index];
  if (N.isLeaf()) {
    Out.push_back(N.Item);
    return;
  }
  collectLeaves(N.Left, Out);
  collectLeaves(N.Right, Out);
}

std::vector<std::vector<std::size_t>> Dendrogram::cut(double Threshold) const {
  std::vector<std::vector<std::size_t>> Clusters;
  if (Nodes.empty())
    return Clusters;

  // Walk down from the root; a subtree whose merge height is within the
  // threshold becomes one flat cluster.
  std::vector<int> Work = {Root};
  while (!Work.empty()) {
    int Index = Work.back();
    Work.pop_back();
    const Node &N = Nodes[Index];
    if (N.isLeaf() || N.Height <= Threshold) {
      Clusters.emplace_back();
      collectLeaves(Index, Clusters.back());
      continue;
    }
    Work.push_back(N.Left);
    Work.push_back(N.Right);
  }
  std::stable_sort(Clusters.begin(), Clusters.end(),
                   [](const auto &A, const auto &B) {
                     return A.size() > B.size();
                   });
  return Clusters;
}

std::string Dendrogram::render(
    const std::function<std::string(std::size_t)> &LeafLabel) const {
  std::string Out;
  if (Nodes.empty())
    return Out;

  std::function<void(int, std::string, bool)> Walk =
      [&](int Index, std::string Prefix, bool IsLast) {
        const Node &N = Nodes[Index];
        std::string Branch = Prefix + (IsLast ? "`-- " : "|-- ");
        std::string ChildPrefix = Prefix + (IsLast ? "    " : "|   ");
        if (N.isLeaf()) {
          std::string Label = LeafLabel(N.Item);
          // Indent continuation lines of multi-line labels.
          bool First = true;
          std::size_t Start = 0;
          while (Start <= Label.size()) {
            std::size_t End = Label.find('\n', Start);
            std::string Line =
                Label.substr(Start, End == std::string::npos
                                        ? std::string::npos
                                        : End - Start);
            if (!Line.empty() || First)
              Out += (First ? Branch : ChildPrefix) + Line + "\n";
            First = false;
            if (End == std::string::npos)
              break;
            Start = End + 1;
          }
          return;
        }
        char Buf[32];
        std::snprintf(Buf, sizeof(Buf), "%.3f", N.Height);
        Out += Branch + "[" + Buf + "]\n";
        Walk(N.Left, ChildPrefix, false);
        Walk(N.Right, ChildPrefix, true);
      };
  Walk(Root, "", true);
  return Out;
}

namespace {

/// Canonical strict total order on active cluster pairs: distance first,
/// then the clusters' representatives (each cluster's minimum leaf id).
/// Distinct pairs never compare equal — the pair of representatives is
/// unique — so the complete-linkage dendrogram is unique under this
/// order, and both agglomeration engines below reproduce it exactly
/// (see DESIGN.md "Clustering engine" for the argument).
struct MergeKey {
  double Dist;
  std::size_t A; ///< Smaller representative.
  std::size_t B; ///< Larger representative.

  bool operator<(const MergeKey &Other) const {
    if (Dist != Other.Dist)
      return Dist < Other.Dist;
    if (A != Other.A)
      return A < Other.A;
    return B < Other.B;
  }
};

/// One merge: the two cluster representatives (A < B) and the linkage.
struct MergeStep {
  std::size_t A;
  std::size_t B;
  double Height;
};

/// Nearest-neighbor-chain agglomeration over \p D (row-major N x N,
/// mutated in place by Lance-Williams max updates). Complete linkage is
/// reducible — D(X u Y, Z) = max(D(X,Z), D(Y,Z)) >= min(D(X,Z), D(Y,Z))
/// — so every merge of mutual nearest neighbours belongs to the unique
/// canonical dendrogram. O(n^2) total: each chain step is an O(n) scan,
/// and there are at most 3(n-1) steps (each either grows the chain or
/// consumes two of its elements).
std::vector<MergeStep> nnChainMerges(std::size_t N, std::vector<double> &D) {
  std::vector<MergeStep> Steps;
  Steps.reserve(N - 1);
  std::vector<char> Alive(N, 1);
  std::vector<std::size_t> Chain;
  Chain.reserve(N);
  while (Steps.size() + 1 < N) {
    if (Chain.empty()) {
      // Start from the smallest alive representative (leaf 0 is always
      // alive: merged clusters keep their smaller representative).
      std::size_t Start = 0;
      while (!Alive[Start])
        ++Start;
      Chain.push_back(Start);
    }
    std::size_t Top = Chain.back();
    // Unique nearest neighbour of Top under the canonical key.
    MergeKey Best{std::numeric_limits<double>::infinity(), N, N};
    std::size_t BestK = N;
    const double *Row = D.data() + Top * N;
    for (std::size_t K = 0; K < N; ++K) {
      if (!Alive[K] || K == Top)
        continue;
      MergeKey Key{Row[K], std::min(Top, K), std::max(Top, K)};
      if (Key < Best) {
        Best = Key;
        BestK = K;
      }
    }
    if (Chain.size() >= 2 && BestK == Chain[Chain.size() - 2]) {
      // Mutual nearest neighbours: merge, keeping the smaller
      // representative; update its distances to all survivors.
      std::size_t A = std::min(Top, BestK);
      std::size_t B = std::max(Top, BestK);
      Steps.push_back({A, B, D[A * N + B]});
      Chain.pop_back();
      Chain.pop_back();
      Alive[B] = 0;
      for (std::size_t K = 0; K < N; ++K) {
        if (!Alive[K] || K == A)
          continue;
        double Max = std::max(D[A * N + K], D[B * N + K]);
        D[A * N + K] = D[K * N + A] = Max;
      }
    } else {
      Chain.push_back(BestK);
    }
  }
  return Steps;
}

/// The O(n^3) greedy reference: every step recomputes all pairwise
/// linkages as max over member items of the raw distance matrix and
/// merges the canonical minimum. Deliberately independent arithmetic
/// from nnChainMerges (no Lance-Williams updates) so the differential
/// test exercises two genuinely different code paths.
std::vector<MergeStep> naiveMerges(std::size_t N,
                                   const std::vector<double> &D) {
  struct Cluster {
    std::size_t MinItem;
    std::vector<std::size_t> Members;
  };
  std::vector<Cluster> Active;
  Active.reserve(N);
  for (std::size_t I = 0; I < N; ++I)
    Active.push_back({I, {I}});

  std::vector<MergeStep> Steps;
  Steps.reserve(N - 1);
  while (Active.size() > 1) {
    MergeKey Best{std::numeric_limits<double>::infinity(), N, N};
    std::size_t BestI = 0, BestJ = 1;
    for (std::size_t I = 0; I < Active.size(); ++I)
      for (std::size_t J = I + 1; J < Active.size(); ++J) {
        double Linkage = 0.0;
        for (std::size_t A : Active[I].Members)
          for (std::size_t B : Active[J].Members)
            Linkage = std::max(Linkage, D[A * N + B]);
        MergeKey Key{Linkage,
                     std::min(Active[I].MinItem, Active[J].MinItem),
                     std::max(Active[I].MinItem, Active[J].MinItem)};
        if (Key < Best) {
          Best = Key;
          BestI = I;
          BestJ = J;
        }
      }

    Steps.push_back({Best.A, Best.B, Best.Dist});
    Cluster Combined;
    Combined.MinItem = Best.A;
    Combined.Members = std::move(Active[BestI].Members);
    Combined.Members.insert(Combined.Members.end(),
                            Active[BestJ].Members.begin(),
                            Active[BestJ].Members.end());
    Active.erase(Active.begin() + BestJ);
    Active.erase(Active.begin() + BestI);
    Active.push_back(std::move(Combined));
  }
  return Steps;
}

} // namespace

Dendrogram diffcode::cluster::agglomerateDistanceMatrix(
    std::size_t NumItems, std::vector<double> Matrix,
    ClusteringOptions::Algorithm Algo) {
  Dendrogram Tree;
  Tree.NumLeaves = NumItems;
  if (NumItems == 0)
    return Tree;
  assert(Matrix.size() == NumItems * NumItems && "matrix shape mismatch");

  for (std::size_t I = 0; I < NumItems; ++I) {
    Dendrogram::Node Leaf;
    Leaf.Item = I;
    Tree.Nodes.push_back(Leaf);
  }
  if (NumItems == 1) {
    Tree.Root = 0;
    return Tree;
  }

  std::vector<MergeStep> Steps =
      Algo == ClusteringOptions::Algorithm::Naive
          ? naiveMerges(NumItems, Matrix)
          : nnChainMerges(NumItems, Matrix);

  // Canonical merge order: the greedy reference emits merges with
  // strictly increasing keys, so sorting the chain-discovered merges by
  // key reproduces its sequence exactly (keys are distinct — each merge
  // retires its larger representative for good).
  std::sort(Steps.begin(), Steps.end(),
            [](const MergeStep &X, const MergeStep &Y) {
              return MergeKey{X.Height, X.A, X.B} <
                     MergeKey{Y.Height, Y.A, Y.B};
            });

  // Replay: map each representative to its current subtree.
  std::vector<int> NodeOf(NumItems);
  for (std::size_t I = 0; I < NumItems; ++I)
    NodeOf[I] = static_cast<int>(I);
  std::size_t MergeIndex = 0;
  for (const MergeStep &Step : Steps) {
    // Fault-injection point: merge ordinal + item count form a stable key
    // (the merge sequence is canonical, so this fires identically on
    // every thread count).
    support::throwIfFault(support::FaultSite::Clustering,
                          (static_cast<std::uint64_t>(NumItems) << 32) |
                              MergeIndex++);
    Dendrogram::Node Merge;
    Merge.Left = NodeOf[Step.A];
    Merge.Right = NodeOf[Step.B];
    Merge.Height = Step.Height;
    NodeOf[Step.A] = static_cast<int>(Tree.Nodes.size());
    Tree.Nodes.push_back(Merge);
  }
  Tree.Root = NodeOf[0];
  return Tree;
}

std::vector<double> diffcode::cluster::pairwiseDistanceMatrix(
    std::size_t NumItems,
    const std::function<double(std::size_t, std::size_t)> &Dist,
    support::ThreadPool *Pool) {
  std::vector<double> D(NumItems * NumItems, 0.0);
  auto FillRow = [&](std::size_t I) {
    for (std::size_t J = I + 1; J < NumItems; ++J)
      D[I * NumItems + J] = D[J * NumItems + I] = Dist(I, J);
  };
  if (Pool)
    // Chunk size 1: rows shrink towards the end of the triangle, and
    // dynamic claiming keeps the load balanced.
    Pool->parallelForChunked(NumItems, 1,
                             [&](std::size_t Begin, std::size_t Stop) {
                               for (std::size_t I = Begin; I < Stop; ++I)
                                 FillRow(I);
                             });
  else
    for (std::size_t I = 0; I < NumItems; ++I)
      FillRow(I);
  return D;
}

Dendrogram diffcode::cluster::agglomerativeCluster(
    std::size_t NumItems,
    const std::function<double(std::size_t, std::size_t)> &Dist,
    const ClusteringOptions &Opts) {
  if (NumItems == 0)
    return agglomerateDistanceMatrix(0, {}, Opts.Algo);
  support::ThreadPool Pool(Opts.Threads);
  return agglomerateDistanceMatrix(
      NumItems, pairwiseDistanceMatrix(NumItems, Dist, &Pool), Opts.Algo);
}

Dendrogram diffcode::cluster::clusterUsageChanges(
    const std::vector<usage::UsageChange> &Changes,
    const ClusteringOptions &Opts) {
  if (Opts.Sharding.Enabled)
    return clusterUsageChangesSharded(Changes, Opts);
  std::size_t N = Changes.size();
  if (N == 0)
    return agglomerateDistanceMatrix(0, {}, Opts.Algo);
  support::ThreadPool Pool(Opts.Threads);
  UsageDistCache Cache(Changes, &Pool);
  std::vector<double> D = pairwiseDistanceMatrix(
      N, [&Cache](std::size_t I, std::size_t J) { return Cache(I, J); },
      &Pool);
  return agglomerateDistanceMatrix(N, std::move(D), Opts.Algo);
}
