//===- support/ThreadPool.h - Reusable worker pool -------------------------===//
//
// Part of the DiffCode project, a reproduction of "Inferring Crypto API
// Rules from Code Changes" (PLDI'18).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small reusable thread pool built around data-parallel index loops.
/// The pipeline (core/DiffCode) and the clustering engine (cluster/*) both
/// split embarrassingly-parallel work over item indices; workers claim
/// chunks from a shared atomic cursor, so results written to per-index
/// slots are deterministic regardless of the thread count.
///
/// The pool owns ThreadCount-1 worker threads; the calling thread
/// participates in every loop, so ThreadPool(1) spawns no threads and
/// parallelFor degenerates to a plain serial loop.
///
/// Error containment: the first exception a Body throws is captured and
/// rethrown on the calling thread after the loop drains; once an error is
/// recorded, unclaimed chunks are skipped so a poisoned batch fails fast
/// instead of grinding through the remaining work. The pool itself stays
/// usable after a throwing batch. Workers also inherit the caller's
/// fault-injection context (support/FaultInjection.h), so seeded fault
/// campaigns behave identically on every thread count.
///
//===----------------------------------------------------------------------===//

#ifndef DIFFCODE_SUPPORT_THREADPOOL_H
#define DIFFCODE_SUPPORT_THREADPOOL_H

#include "support/FaultInjection.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace diffcode {
namespace support {

/// Canonical resolution of every "Threads" knob in the system
/// (PipelineConfig::Threads, ClusteringOptions::Threads,
/// ShardingOptions::Threads): 0 means one thread per hardware thread
/// (at least 1), any other value is taken literally (1 = serial).
/// ThreadPool's constructor applies it, so passing a raw knob through is
/// always correct; call it directly only to pre-compute the count.
unsigned resolveThreads(unsigned Requested);

class ThreadPool {
public:
  /// Utilization accounting a stats-collecting pool accumulates across
  /// batches. The pool lives in the support layer and cannot depend on
  /// obs/, so this is a plain struct; core copies it into the metrics
  /// registry after each batch. All values are scheduling-dependent
  /// (PerRun in obs terms) except Batches.
  struct Stats {
    /// parallelFor/parallelForChunked invocations, including ones that
    /// took the serial fast path.
    std::uint64_t Batches = 0;
    /// Chunks executed. Differs between the serial fast path (one chunk
    /// covering [0, N)) and threaded execution (N/ChunkSize claims).
    std::uint64_t Chunks = 0;
    /// Total nanoseconds workers spent between a batch being published
    /// and their first chunk claim of that batch (the caller contributes
    /// zero — it starts claiming immediately).
    std::uint64_t QueueWaitNs = 0;
    /// Per-thread nanoseconds spent inside batches; index 0 is the
    /// calling thread, 1.. are the pool's workers.
    std::vector<std::uint64_t> WorkerBusyNs;
  };

  /// \p ThreadCount total threads including the caller; 0 = one per
  /// hardware thread. With \p CollectStats the pool times every batch
  /// into a Stats block (see statsSnapshot()); off by default so
  /// unobserved loops pay nothing.
  explicit ThreadPool(unsigned ThreadCount = 0, bool CollectStats = false);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Total threads that execute a loop (workers + calling thread).
  unsigned threadCount() const {
    return static_cast<unsigned>(Workers.size()) + 1;
  }

  bool collectingStats() const { return Collect; }

  /// Copy of the accumulated utilization stats (empty unless constructed
  /// with CollectStats). Call between batches, not from a Body.
  Stats statsSnapshot() const;

  /// Runs Body(I) for every I in [0, N); blocks until all indices are
  /// done. The first exception thrown by Body is rethrown here; once one
  /// is captured, remaining unclaimed indices may be skipped. Not
  /// reentrant: Body must not call back into the same pool.
  void parallelFor(std::size_t N,
                   const std::function<void(std::size_t)> &Body);

  /// Chunked variant: Body(Begin, End) over disjoint ranges covering
  /// [0, N). Chunks are claimed dynamically, which balances loops whose
  /// per-index cost varies (e.g. triangular distance matrices).
  void parallelForChunked(
      std::size_t N, std::size_t ChunkSize,
      const std::function<void(std::size_t, std::size_t)> &Body);

private:
  void workerLoop(unsigned Worker);
  void runChunks(const std::function<void(std::size_t, std::size_t)> &Body,
                 unsigned Worker, std::uint64_t QueueWaitNs);

  std::vector<std::thread> Workers;
  mutable std::mutex Mutex;
  std::condition_variable WakeCV; ///< Workers wait here for a new batch.
  std::condition_variable DoneCV; ///< The caller waits here for workers.

  // Current batch; Body/End/Chunk are set before Generation is bumped
  // under the mutex, so workers observing the new generation see them.
  const std::function<void(std::size_t, std::size_t)> *Body = nullptr;
  std::atomic<std::size_t> Cursor{0};
  std::size_t End = 0;
  std::size_t Chunk = 1;
  std::uint64_t Generation = 0;
  unsigned Busy = 0;
  std::exception_ptr FirstError;
  std::atomic<bool> Failed{false}; ///< Set with FirstError; aborts the batch.
  FaultContext BatchFaults;        ///< Caller's context, mirrored in workers.
  bool ShuttingDown = false;

  // Utilization accounting (only touched when Collect).
  bool Collect = false;
  Stats Accounting; ///< Guarded by Mutex.
  std::chrono::steady_clock::time_point BatchPublish; ///< Guarded by Mutex.
};

} // namespace support
} // namespace diffcode

#endif // DIFFCODE_SUPPORT_THREADPOOL_H
