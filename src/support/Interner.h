//===- support/Interner.h - Corpus-wide label & path interning -------------===//
//
// Part of the DiffCode project, a reproduction of "Inferring Crypto API
// Rules from Code Changes" (PLDI'18).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The interned corpus data model (DESIGN.md "Interned data model"). At
/// paper scale the pipeline's working set is dominated by duplicated
/// strings: every FeaturePath owns copies of method names, type names,
/// and string constants, even though the vocabulary across a corpus is
/// tiny. This interner stores each distinct NodeLabel and each distinct
/// label sequence exactly once and hands out dense 32-bit ids, so
///
///   * label and path equality are single integer compares,
///   * strict-prefix tests are integer-sequence compares,
///   * the Levenshtein unit vector of every label (the expensive split
///     the clustering metric needs) is computed once at intern time,
///   * a usage change is two small id vectors instead of a tree of
///     heap-allocated strings.
///
/// Interning is *structural*: id equality coincides exactly with
/// NodeLabel::operator== (which includes ValueIsString), the property
/// the memoised distance cache relies on.
///
/// Thread-safety contract: the interner is append-only behind a
/// std::shared_mutex — intern calls take the exclusive lock, lookups
/// take the shared lock, and storage lives in std::deque arenas whose
/// chunked allocation never moves an element, so references returned by
/// labelAt()/labelsOf()/unitsOf() stay valid for the interner's lifetime
/// even while other threads keep interning.
///
/// Determinism contract: id *values* depend on intern order, which is
/// racy when pipeline workers intern concurrently. No output may
/// therefore depend on id values — only on id equality — and every
/// consumer (shortest-path elimination, filters, distance cache, shard
/// keys) is written to be id-value independent. That is why reports stay
/// byte-identical across thread counts and vs the string-based engine.
///
//===----------------------------------------------------------------------===//

#ifndef DIFFCODE_SUPPORT_INTERNER_H
#define DIFFCODE_SUPPORT_INTERNER_H

#include "usage/UsageDag.h"

#include <cstdint>
#include <deque>
#include <map>
#include <shared_mutex>
#include <string>
#include <vector>

namespace diffcode {
namespace support {

/// Dense id of one distinct NodeLabel.
using LabelId = std::uint32_t;
/// Dense id of one distinct FeaturePath (a label-id sequence).
using PathId = std::uint32_t;

/// Thread-safe append-only string/label/path interner.
class Interner {
public:
  Interner() = default;
  Interner(const Interner &) = delete;
  Interner &operator=(const Interner &) = delete;

  /// Interns \p Label (idempotent); returns its dense id.
  LabelId label(const usage::NodeLabel &Label);

  /// Interns \p Path; returns its dense id. Equal paths (element-wise
  /// NodeLabel::operator==) always receive equal ids.
  PathId path(const usage::FeaturePath &Path);

  /// Interns a pre-converted label-id sequence (ids must come from this
  /// interner).
  PathId path(std::vector<LabelId> Labels);

  /// The label behind \p Id. Reference stays valid forever (arena
  /// storage never moves).
  const usage::NodeLabel &labelAt(LabelId Id) const;

  /// The label-id sequence behind \p Id; same lifetime guarantee.
  const std::vector<LabelId> &labelsOf(PathId Id) const;

  /// Precomputed Levenshtein units of \p Id's label (Section 4.3: string
  /// constants split per character; type names, method signatures and
  /// other values are atomic). Computed once at intern time.
  const std::vector<std::string> &unitsOf(LabelId Id) const;

  /// Rebuilds the owning FeaturePath (display/compat use only).
  usage::FeaturePath materialize(PathId Id) const;

  /// Display form, byte-identical to pathToString(materialize(Id)).
  std::string pathString(PathId Id) const;

  std::size_t labelCount() const;
  std::size_t pathCount() const;

  /// Approximate resident bytes of the table (labels, units, paths,
  /// lookup maps) for the memory benchmark.
  std::size_t memoryBytes() const;

  /// Splits \p Label into the clustering metric's Levenshtein units; the
  /// single source of truth also used by cluster::labelUnits.
  static std::vector<std::string> labelUnits(const usage::NodeLabel &Label);

private:
  mutable std::shared_mutex Mutex;
  // Arena storage: deque chunks never move elements, so post-intern
  // references are stable without per-element allocations.
  std::deque<usage::NodeLabel> Labels;
  std::deque<std::vector<std::string>> Units; ///< Parallel to Labels.
  std::deque<std::vector<LabelId>> Paths;
  std::map<usage::NodeLabel, LabelId> LabelIds;
  std::map<std::vector<LabelId>, PathId> PathIds;
};

} // namespace support
} // namespace diffcode

#endif // DIFFCODE_SUPPORT_INTERNER_H
