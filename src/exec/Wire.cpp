//===- exec/Wire.cpp -------------------------------------------------------===//

#include "exec/Wire.h"

#include <cstring>

using namespace diffcode;
using namespace diffcode::exec;

std::uint32_t diffcode::exec::wireChecksum(std::string_view Bytes) {
  std::uint32_t H = 0x811c9dc5u;
  for (char C : Bytes) {
    H ^= static_cast<unsigned char>(C);
    H *= 0x01000193u;
  }
  return H;
}

void WireWriter::u32(std::uint32_t V) {
  char B[4] = {static_cast<char>(V), static_cast<char>(V >> 8),
               static_cast<char>(V >> 16), static_cast<char>(V >> 24)};
  Buf.append(B, 4);
}

void WireWriter::u64(std::uint64_t V) {
  u32(static_cast<std::uint32_t>(V));
  u32(static_cast<std::uint32_t>(V >> 32));
}

void WireWriter::str(std::string_view S) {
  u32(static_cast<std::uint32_t>(S.size()));
  Buf.append(S.data(), S.size());
}

bool WireReader::take(std::size_t N, const char *&Out) {
  if (!Ok || Buf.size() - Pos < N) {
    Ok = false;
    return false;
  }
  Out = Buf.data() + Pos;
  Pos += N;
  return true;
}

std::uint8_t WireReader::u8() {
  const char *P;
  if (!take(1, P))
    return 0;
  return static_cast<std::uint8_t>(*P);
}

std::uint32_t WireReader::u32() {
  const char *P;
  if (!take(4, P))
    return 0;
  return static_cast<std::uint32_t>(static_cast<unsigned char>(P[0])) |
         static_cast<std::uint32_t>(static_cast<unsigned char>(P[1])) << 8 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(P[2])) << 16 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(P[3])) << 24;
}

std::uint64_t WireReader::u64() {
  std::uint64_t Lo = u32();
  std::uint64_t Hi = u32();
  return Lo | (Hi << 32);
}

std::string_view WireReader::str() {
  std::uint32_t Len = u32();
  const char *P;
  if (!take(Len, P))
    return {};
  return std::string_view(P, Len);
}

void diffcode::exec::appendFrame(std::string &Out, std::uint32_t Type,
                                 std::string_view Payload) {
  Out.reserve(Out.size() + WireHeaderBytes + Payload.size());
  auto PutU32 = [&Out](std::uint32_t V) {
    char B[4] = {static_cast<char>(V), static_cast<char>(V >> 8),
                 static_cast<char>(V >> 16), static_cast<char>(V >> 24)};
    Out.append(B, 4);
  };
  PutU32(WireMagic);
  PutU32(Type);
  PutU32(static_cast<std::uint32_t>(Payload.size()));
  PutU32(wireChecksum(Payload));
  Out.append(Payload.data(), Payload.size());
}

std::string diffcode::exec::encodeFrame(std::uint32_t Type,
                                        std::string_view Payload) {
  std::string Out;
  appendFrame(Out, Type, Payload);
  return Out;
}

void FrameDecoder::feed(const char *Data, std::size_t Size) {
  if (Bad)
    return;
  // Compact lazily so a long-lived stream does not grow without bound.
  if (Pos > 0 && Pos == Buf.size()) {
    Buf.clear();
    Pos = 0;
  } else if (Pos > (1u << 20)) {
    Buf.erase(0, Pos);
    Pos = 0;
  }
  Buf.append(Data, Size);
}

std::optional<FrameView> FrameDecoder::nextView() {
  if (Bad || Buf.size() - Pos < WireHeaderBytes)
    return std::nullopt;
  WireReader Header(std::string_view(Buf).substr(Pos, WireHeaderBytes));
  std::uint32_t Magic = Header.u32();
  std::uint32_t Type = Header.u32();
  std::uint32_t Length = Header.u32();
  std::uint32_t Check = Header.u32();
  if (Magic != WireMagic) {
    Bad = true;
    Error = "bad frame magic";
    return std::nullopt;
  }
  if (Length > MaxFramePayload) {
    Bad = true;
    Error = "oversized frame";
    return std::nullopt;
  }
  if (Buf.size() - Pos < WireHeaderBytes + Length)
    return std::nullopt; // incomplete: wait for more bytes
  std::string_view Payload(Buf.data() + Pos + WireHeaderBytes, Length);
  if (wireChecksum(Payload) != Check) {
    Bad = true;
    Error = "bad frame checksum";
    return std::nullopt;
  }
  Pos += WireHeaderBytes + Length;
  return FrameView{Type, Payload};
}

std::optional<Frame> FrameDecoder::next() {
  std::optional<FrameView> V = nextView();
  if (!V)
    return std::nullopt;
  Frame Out;
  Out.Type = V->Type;
  Out.Payload.assign(V->Payload.data(), V->Payload.size());
  return Out;
}
