
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_usage_dag.cpp" "tests/CMakeFiles/test_usage_dag.dir/test_usage_dag.cpp.o" "gcc" "tests/CMakeFiles/test_usage_dag.dir/test_usage_dag.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/diffcode_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/diffcode_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/corpus/CMakeFiles/diffcode_corpus.dir/DependInfo.cmake"
  "/root/repo/build/src/rules/CMakeFiles/diffcode_rules.dir/DependInfo.cmake"
  "/root/repo/build/src/usage/CMakeFiles/diffcode_usage.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/diffcode_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/javaast/CMakeFiles/diffcode_javaast.dir/DependInfo.cmake"
  "/root/repo/build/src/apimodel/CMakeFiles/diffcode_apimodel.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/diffcode_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
