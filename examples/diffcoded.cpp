//===- examples/diffcoded.cpp - The incremental analysis daemon ------------===//
//
// Part of the DiffCode project, a reproduction of "Inferring Crypto API
// Rules from Code Changes" (PLDI'18).
//
//===----------------------------------------------------------------------===//
//
// The long-lived service front end (DESIGN.md "Service mode and the
// session API"):
//
//   diffcoded <socket-path> [--threads <n>] [--max-cached <n>]
//
// binds a UNIX socket, keeps one AnalysisSession alive, and answers
// framed Ingest/Query/Snapshot/Shutdown requests until a client asks it
// to stop. Clients are `diffcode_cli connect <socket-path> ...` or
// anything speaking service/Protocol.h over the socket. Connections are
// served sequentially — the session's incremental caches are the point,
// not concurrency — so a corpus streamed in commit-sized ingests
// re-analyzes only what each commit touched.
//
//===----------------------------------------------------------------------===//

#include "service/Server.h"

#include <cstdio>
#include <cstring>
#include <string>

using namespace diffcode;

int main(int argc, char **argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: diffcoded <socket-path> [--threads <n>] "
                 "[--max-cached <n>]\n");
    return 2;
  }
  std::string SocketPath = argv[1];
  service::SessionOptions Opts;
  Opts.Config.Threads = 0; // one analysis worker per hardware thread
  for (int I = 2; I < argc; ++I) {
    if (std::strcmp(argv[I], "--threads") == 0 && I + 1 < argc) {
      Opts.Config.Threads =
          static_cast<unsigned>(std::strtoul(argv[++I], nullptr, 10));
    } else if (std::strcmp(argv[I], "--max-cached") == 0 && I + 1 < argc) {
      Opts.MaxCachedChanges = std::strtoull(argv[++I], nullptr, 10);
    } else {
      std::fprintf(stderr, "error: unknown flag %s\n", argv[I]);
      return 2;
    }
  }

  std::string Error;
  int ListenFd = service::listenUnix(SocketPath, &Error);
  if (ListenFd < 0) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 1;
  }
  service::Server S(apimodel::CryptoApiModel::javaCryptoApi(),
                    std::move(Opts));
  std::fprintf(stderr, "diffcoded: serving on %s\n", SocketPath.c_str());
  int Code = service::serveUnix(S, ListenFd);
  std::remove(SocketPath.c_str());
  return Code;
}
