# Empty compiler generated dependencies file for diffcode_rules.
# This may be replaced when dependencies are built.
