file(REMOVE_RECURSE
  "libdiffcode_cluster.a"
)
