# Empty dependencies file for fig6_filter_stages.
# This may be replaced when dependencies are built.
