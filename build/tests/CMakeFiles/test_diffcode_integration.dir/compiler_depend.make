# Empty compiler generated dependencies file for test_diffcode_integration.
# This may be replaced when dependencies are built.
