# Empty dependencies file for diffcode_javaast.
# This may be replaced when dependencies are built.
