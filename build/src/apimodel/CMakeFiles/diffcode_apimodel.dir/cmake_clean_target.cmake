file(REMOVE_RECURSE
  "libdiffcode_apimodel.a"
)
