//===- tests/test_misc_coverage.cpp - Cross-cutting coverage ---------------===//

#include "analysis/AbstractInterpreter.h"
#include "javaast/Parser.h"
#include "rules/BuiltinRules.h"
#include "rules/RuleSuggestion.h"
#include "rules/TlsRules.h"
#include "usage/UsageDag.h"

#include <gtest/gtest.h>

using namespace diffcode;
using namespace diffcode::analysis;

namespace {

AnalysisResult analyze(std::string_view Source) {
  java::AstContext Ctx;
  java::DiagnosticsEngine Diags;
  java::CompilationUnit *Unit = java::parseJava(Source, Ctx, Diags);
  EXPECT_FALSE(Diags.hasErrors())
      << (Diags.all().empty() ? "" : Diags.all().front().str());
  AbstractInterpreter Interp(apimodel::CryptoApiModel::javaCryptoApi());
  return Interp.analyze(Unit);
}

bool hasEvent(const AnalysisResult &R, const std::string &Type,
              const std::string &SigPrefix) {
  UsageLog Merged = R.mergedLog();
  for (const auto &[ObjId, Events] : Merged) {
    if (R.Objects.get(ObjId).TypeName != Type)
      continue;
    for (const UsageEvent &Event : Events)
      if (Event.MethodSig.rfind(SigPrefix, 0) == 0)
        return true;
  }
  return false;
}

} // namespace

//===----------------------------------------------------------------------===//
// Interpreter: inheritance, static initializers, synchronized, instanceof
//===----------------------------------------------------------------------===//

TEST(InterpreterCoverage, InheritedHelperMethodInlined) {
  AnalysisResult R = analyze(
      "class Base { protected Cipher create(String algo) throws Exception { "
      "return Cipher.getInstance(algo); } } "
      "class Derived extends Base { "
      "void m(Key k) throws Exception { "
      "Cipher c = create(\"DES\"); c.init(Cipher.ENCRYPT_MODE, k); } }");
  EXPECT_TRUE(hasEvent(R, "Cipher", "Cipher.getInstance"));
  EXPECT_TRUE(hasEvent(R, "Cipher", "Cipher.init"));
}

TEST(InterpreterCoverage, InheritedFieldTypeKnown) {
  AnalysisResult R = analyze(
      "class Base { protected String algorithm = \"SHA-1\"; } "
      "class Derived extends Base { "
      "void m() throws Exception { "
      "MessageDigest d = MessageDigest.getInstance(algorithm); } }");
  // The field is declared in the superclass; its initializer runs in
  // Base's context, so Derived sees the declared-type top.
  EXPECT_TRUE(hasEvent(R, "MessageDigest", "MessageDigest.getInstance"));
}

TEST(InterpreterCoverage, StaticInitializerBlockAnalyzed) {
  AnalysisResult R = analyze(
      "class A { static SecureRandom shared; "
      "static { shared = new SecureRandom(); } }");
  EXPECT_TRUE(hasEvent(R, "SecureRandom", "SecureRandom.<init>"));
}

TEST(InterpreterCoverage, SynchronizedBlockBodyAnalyzed) {
  AnalysisResult R = analyze(
      "class A { Object lock; void m() throws Exception { "
      "synchronized (lock) { Cipher c = Cipher.getInstance(\"AES\"); } } }");
  EXPECT_TRUE(hasEvent(R, "Cipher", "Cipher.getInstance"));
}

TEST(InterpreterCoverage, ForEachBodyAnalyzed) {
  AnalysisResult R = analyze(
      "class A { void m(String[] algos) throws Exception { "
      "for (String algo : algos) { "
      "MessageDigest d = MessageDigest.getInstance(algo); } } }");
  EXPECT_TRUE(hasEvent(R, "MessageDigest", "MessageDigest.getInstance"));
}

TEST(InterpreterCoverage, CastPreservesObjectIdentity) {
  AnalysisResult R = analyze(
      "class A { void m(Key k) throws Exception { "
      "Object o = Cipher.getInstance(\"AES\"); "
      "Cipher c = (Cipher) o; "
      "c.init(Cipher.ENCRYPT_MODE, k); } }");
  EXPECT_TRUE(hasEvent(R, "Cipher", "Cipher.init"));
}

TEST(InterpreterCoverage, KeyGeneratorChainTyped) {
  AnalysisResult R = analyze(
      "class A { byte[] m(byte[] iv, byte[] data) throws Exception { "
      "KeyGenerator kg = KeyGenerator.getInstance(\"AES\"); "
      "kg.init(256); "
      "SecretKey key = kg.generateKey(); "
      "Cipher c = Cipher.getInstance(\"AES/GCM/NoPadding\"); "
      "c.init(Cipher.ENCRYPT_MODE, key, new IvParameterSpec(iv)); "
      "return c.doFinal(data); } }");
  EXPECT_TRUE(hasEvent(R, "KeyGenerator", "KeyGenerator.init"));
  EXPECT_TRUE(hasEvent(R, "Cipher", "Cipher.init"));
}

//===----------------------------------------------------------------------===//
// UsageDag rendering
//===----------------------------------------------------------------------===//

TEST(UsageDagStr, RendersIndentedTree) {
  AnalysisResult R = analyze(
      "class A { void m(Key k) throws Exception { "
      "Cipher c = Cipher.getInstance(\"AES\"); "
      "c.init(Cipher.ENCRYPT_MODE, k); } }");
  unsigned CipherId = 0;
  bool Found = false;
  for (const AbstractObject &Obj : R.Objects.all())
    if (Obj.TypeName == "Cipher") {
      CipherId = Obj.Id;
      Found = true;
    }
  ASSERT_TRUE(Found);
  usage::UsageDag Dag =
      usage::UsageDag::build(R.Objects, R.mergedLog(), CipherId);
  std::string Out = Dag.str();
  EXPECT_EQ(Out.rfind("Cipher\n", 0), 0u);
  EXPECT_NE(Out.find("  Cipher.getInstance\n"), std::string::npos);
  EXPECT_NE(Out.find("    arg1:AES\n"), std::string::npos);
  EXPECT_NE(Out.find("    arg1:ENCRYPT_MODE\n"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Rule descriptions
//===----------------------------------------------------------------------===//

TEST(RuleDescriptions, EveryBuiltinRuleDescribable) {
  auto CheckSet = [](const std::vector<rules::Rule> &Rules) {
    for (const rules::Rule &R : Rules) {
      std::string Text = rules::describeRule(R);
      EXPECT_EQ(Text.rfind(R.Id + ":", 0), 0u) << Text;
      EXPECT_GT(Text.size(), R.Id.size() + 5) << Text;
      EXPECT_FALSE(R.Description.empty()) << R.Id;
    }
  };
  CheckSet(rules::elicitedRules());
  CheckSet(rules::cryptoLintRules());
  CheckSet(rules::tlsRules());
}

TEST(RuleDescriptions, FormulaKindsRendered) {
  std::string R3 = rules::describeRule(*rules::findRule("R3"));
  EXPECT_NE(R3.find("∨"), std::string::npos); // Or formula
  std::string R13 = rules::describeRule(*rules::findRule("R13"));
  EXPECT_NE(R13.find("∧"), std::string::npos); // clause conjunction
  EXPECT_NE(R13.find("startsWith"), std::string::npos);
  std::string R2 = rules::describeRule(*rules::findRule("R2"));
  EXPECT_NE(R2.find("< 1000"), std::string::npos);
}
