file(REMOVE_RECURSE
  "libdiffcode_core.a"
)
