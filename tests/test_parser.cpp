//===- tests/test_parser.cpp - Java parser unit tests ----------------------===//

#include "javaast/AstPrinter.h"
#include "javaast/Parser.h"

#include "support/Casting.h"

#include <gtest/gtest.h>

using namespace diffcode;
using namespace diffcode::java;

namespace {

struct Parsed {
  AstContext Ctx;
  DiagnosticsEngine Diags;
  CompilationUnit *Unit = nullptr;
};

std::unique_ptr<Parsed> parse(std::string_view Source) {
  auto P = std::make_unique<Parsed>();
  P->Unit = parseJava(Source, P->Ctx, P->Diags);
  return P;
}

std::unique_ptr<Parsed> parseClean(std::string_view Source) {
  auto P = parse(Source);
  EXPECT_FALSE(P->Diags.hasErrors())
      << (P->Diags.all().empty() ? "" : P->Diags.all().front().str());
  return P;
}

/// Extracts the single statement list of the single method of the single
/// class.
const std::vector<Stmt *> &bodyOf(const Parsed &P) {
  EXPECT_EQ(P.Unit->Types.size(), 1u);
  EXPECT_GE(P.Unit->Types[0]->Methods.size(), 1u);
  return P.Unit->Types[0]->Methods[0]->Body->Stmts;
}

std::string wrap(const std::string &Stmts) {
  return "class T { void m() { " + Stmts + " } }";
}

} // namespace

//===----------------------------------------------------------------------===//
// Declarations
//===----------------------------------------------------------------------===//

TEST(Parser, PackageAndImports) {
  auto P = parseClean("package com.example.app;\n"
                      "import javax.crypto.Cipher;\n"
                      "import java.util.*;\n"
                      "import static java.lang.Math.max;\n"
                      "class A {}");
  EXPECT_EQ(P->Unit->PackageName, "com.example.app");
  ASSERT_EQ(P->Unit->Imports.size(), 3u);
  EXPECT_EQ(P->Unit->Imports[0], "javax.crypto.Cipher");
  EXPECT_EQ(P->Unit->Imports[1], "java.util.*");
  EXPECT_EQ(P->Unit->Imports[2], "java.lang.Math.max");
}

TEST(Parser, ClassModifiersAndHeritage) {
  auto P = parseClean(
      "public final class A extends Base implements I1, I2 {}");
  ASSERT_EQ(P->Unit->Types.size(), 1u);
  const ClassDecl *A = P->Unit->Types[0];
  EXPECT_TRUE(A->Modifiers & ModPublic);
  EXPECT_TRUE(A->Modifiers & ModFinal);
  EXPECT_EQ(A->SuperClass, "Base");
  ASSERT_EQ(A->Interfaces.size(), 2u);
  EXPECT_EQ(A->Interfaces[0], "I1");
}

TEST(Parser, InterfaceDecl) {
  auto P = parseClean("public interface Listener { void onEvent(int code); }");
  ASSERT_EQ(P->Unit->Types.size(), 1u);
  EXPECT_TRUE(P->Unit->Types[0]->IsInterface);
  ASSERT_EQ(P->Unit->Types[0]->Methods.size(), 1u);
  EXPECT_EQ(P->Unit->Types[0]->Methods[0]->Body, nullptr);
}

TEST(Parser, FieldsWithInitializers) {
  auto P = parseClean("class A {\n"
                      "  private static final String ALGO = \"AES\";\n"
                      "  int x = 1, y = 2;\n"
                      "  byte[] buf;\n"
                      "}");
  const ClassDecl *A = P->Unit->Types[0];
  ASSERT_EQ(A->Fields.size(), 4u);
  EXPECT_EQ(A->Fields[0]->Name, "ALGO");
  EXPECT_TRUE(A->Fields[0]->Modifiers & ModStatic);
  ASSERT_NE(A->Fields[0]->Init, nullptr);
  EXPECT_TRUE(isa<StringLiteralExpr>(A->Fields[0]->Init));
  EXPECT_EQ(A->Fields[1]->Name, "x");
  EXPECT_EQ(A->Fields[2]->Name, "y");
  EXPECT_EQ(A->Fields[3]->Type.ArrayDims, 1u);
}

TEST(Parser, MethodsAndParams) {
  auto P = parseClean(
      "class A { protected byte[] run(String s, byte[] data) throws "
      "Exception { return data; } }");
  const MethodDecl *M = P->Unit->Types[0]->Methods[0];
  EXPECT_EQ(M->Name, "run");
  EXPECT_FALSE(M->IsConstructor);
  EXPECT_EQ(M->ReturnType.str(), "byte[]");
  ASSERT_EQ(M->Params.size(), 2u);
  EXPECT_EQ(M->Params[0].Type.Name, "String");
  EXPECT_EQ(M->Params[1].Type.ArrayDims, 1u);
  ASSERT_EQ(M->Throws.size(), 1u);
  EXPECT_EQ(M->Throws[0].Name, "Exception");
}

TEST(Parser, Constructor) {
  auto P = parseClean("class A { A(int x) { this.x = x; } int x; }");
  const MethodDecl *M = P->Unit->Types[0]->Methods[0];
  EXPECT_TRUE(M->IsConstructor);
  EXPECT_EQ(M->Name, "A");
}

TEST(Parser, NestedClass) {
  auto P = parseClean("class A { class B { int y; } int x; }");
  ASSERT_EQ(P->Unit->Types[0]->NestedClasses.size(), 1u);
  EXPECT_EQ(P->Unit->Types[0]->NestedClasses[0]->Name, "B");
}

TEST(Parser, AnnotationsSkipped) {
  auto P = parseClean("@SuppressWarnings(\"all\")\n"
                      "class A { @Override public void m(@Nullable String s) "
                      "{ } }");
  EXPECT_EQ(P->Unit->Types.size(), 1u);
  EXPECT_EQ(P->Unit->Types[0]->Methods.size(), 1u);
}

TEST(Parser, GenericsDiscarded) {
  auto P = parseClean(
      "class A { Map<String, List<Integer>> cache; "
      "List<String> names() { return null; } }");
  const ClassDecl *A = P->Unit->Types[0];
  ASSERT_EQ(A->Fields.size(), 1u);
  EXPECT_EQ(A->Fields[0]->Type.Name, "Map");
  EXPECT_EQ(A->Methods[0]->ReturnType.Name, "List");
}

TEST(Parser, StaticInitializerBecomesSyntheticMethod) {
  auto P = parseClean("class A { static { setup(); } }");
  ASSERT_EQ(P->Unit->Types[0]->Methods.size(), 1u);
  EXPECT_EQ(P->Unit->Types[0]->Methods[0]->Name.rfind("$init", 0), 0u);
}

TEST(Parser, VarargsParam) {
  auto P = parseClean("class A { void log(String fmt, Object... args) {} }");
  ASSERT_EQ(P->Unit->Types[0]->Methods[0]->Params.size(), 2u);
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

TEST(Parser, LocalVarDeclForms) {
  auto P = parseClean(wrap("int a; int b = 2; byte[] c = {1, 2}; "
                           "String d = \"x\", e = \"y\";"));
  const auto &Stmts = bodyOf(*P);
  // d,e split into a block of two declarations.
  ASSERT_EQ(Stmts.size(), 4u);
  EXPECT_TRUE(isa<LocalVarDeclStmt>(Stmts[0]));
  EXPECT_TRUE(isa<LocalVarDeclStmt>(Stmts[1]));
  const auto *C = cast<LocalVarDeclStmt>(Stmts[2]);
  EXPECT_EQ(C->Type.ArrayDims, 1u);
  EXPECT_TRUE(isa<ArrayInitExpr>(C->Init));
  EXPECT_TRUE(isa<Block>(Stmts[3]));
  EXPECT_EQ(cast<Block>(Stmts[3])->Stmts.size(), 2u);
}

TEST(Parser, IfElseChain) {
  auto P = parseClean(wrap("if (a) x = 1; else if (b) x = 2; else x = 3;"));
  const auto *If = cast<IfStmt>(bodyOf(*P)[0]);
  ASSERT_NE(If->Else, nullptr);
  EXPECT_TRUE(isa<IfStmt>(If->Else));
}

TEST(Parser, WhileAndDoWhile) {
  auto P = parseClean(wrap("while (x > 0) x = x - 1; do { y(); } while (b);"));
  EXPECT_TRUE(isa<WhileStmt>(bodyOf(*P)[0]));
  EXPECT_TRUE(isa<DoStmt>(bodyOf(*P)[1]));
}

TEST(Parser, ClassicFor) {
  auto P = parseClean(wrap("for (int i = 0; i < 10; i++) total = total + i;"));
  const auto *For = cast<ForStmt>(bodyOf(*P)[0]);
  EXPECT_NE(For->Init, nullptr);
  EXPECT_NE(For->Cond, nullptr);
  EXPECT_NE(For->Update, nullptr);
}

TEST(Parser, ForWithEmptyHeader) {
  auto P = parseClean(wrap("for (;;) { break; }"));
  const auto *For = cast<ForStmt>(bodyOf(*P)[0]);
  EXPECT_EQ(For->Init, nullptr);
  EXPECT_EQ(For->Cond, nullptr);
  EXPECT_EQ(For->Update, nullptr);
}

TEST(Parser, EnhancedForDesugarsToDeclPlusLoop) {
  auto P = parseClean(wrap("for (String s : names) use(s);"));
  const auto *Lowered = cast<Block>(bodyOf(*P)[0]);
  ASSERT_EQ(Lowered->Stmts.size(), 2u);
  const auto *Decl = cast<LocalVarDeclStmt>(Lowered->Stmts[0]);
  EXPECT_EQ(Decl->Name, "s");
  EXPECT_TRUE(isa<MethodCallExpr>(Decl->Init));
  EXPECT_TRUE(isa<WhileStmt>(Lowered->Stmts[1]));
}

TEST(Parser, TryCatchFinally) {
  auto P = parseClean(wrap("try { risky(); } catch (IOException e) { a(); } "
                           "catch (RuntimeException | Error e2) { b(); } "
                           "finally { c(); }"));
  const auto *Try = cast<TryStmt>(bodyOf(*P)[0]);
  ASSERT_EQ(Try->Catches.size(), 2u);
  EXPECT_EQ(Try->Catches[0].Types[0].Name, "IOException");
  EXPECT_EQ(Try->Catches[1].Types.size(), 2u);
  EXPECT_NE(Try->Finally, nullptr);
}

TEST(Parser, TryWithResources) {
  auto P = parseClean(
      wrap("try (InputStream in = open()) { read(in); } catch (Exception e) "
           "{ }"));
  const auto *Try = cast<TryStmt>(bodyOf(*P)[0]);
  // The resource declaration is hoisted into the body block.
  ASSERT_GE(Try->Body->Stmts.size(), 2u);
  EXPECT_TRUE(isa<LocalVarDeclStmt>(Try->Body->Stmts[0]));
}

TEST(Parser, SwitchLowersToIfChain) {
  auto P = parseClean(wrap("switch (mode) { case 1: a(); break; case 2: b(); "
                           "break; default: c(); }"));
  const auto *Lowered = cast<Block>(bodyOf(*P)[0]);
  ASSERT_EQ(Lowered->Stmts.size(), 2u);
  const auto *Chain = cast<IfStmt>(Lowered->Stmts[1]);
  ASSERT_NE(Chain->Else, nullptr);
  EXPECT_TRUE(isa<IfStmt>(Chain->Else));
}

TEST(Parser, SynchronizedStatement) {
  auto P = parseClean(wrap("synchronized (lock) { counter = counter + 1; }"));
  EXPECT_TRUE(isa<Block>(bodyOf(*P)[0]));
}

TEST(Parser, ReturnThrowBreakContinue) {
  auto P = parseClean(wrap(
      "if (a) return; if (b) return x; if (c) throw new Error(); "
      "while (d) { if (e) break; continue; }"));
  EXPECT_EQ(bodyOf(*P).size(), 4u);
}

TEST(Parser, LabeledBreakAccepted) {
  auto P = parseClean(wrap("while (a) { break out; }"));
  EXPECT_FALSE(P->Diags.hasErrors());
}

TEST(Parser, LabeledStatementSkipsLabel) {
  auto P = parseClean(wrap("outer: while (a) { inner: for (;;) { break inner; } continue outer; }"));
  EXPECT_TRUE(isa<WhileStmt>(bodyOf(*P)[0]));
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

TEST(Parser, PrecedenceMulOverAdd) {
  auto P = parseClean(wrap("x = a + b * c;"));
  const auto *Assign =
      cast<AssignExpr>(cast<ExprStmt>(bodyOf(*P)[0])->E);
  const auto *Add = cast<BinaryExpr>(Assign->Rhs);
  EXPECT_EQ(Add->Op, BinaryOp::Add);
  EXPECT_EQ(cast<BinaryExpr>(Add->Rhs)->Op, BinaryOp::Mul);
}

TEST(Parser, PrecedenceCompareOverLogical) {
  auto P = parseClean(wrap("x = a < b && c > d || e == f;"));
  const auto *Assign = cast<AssignExpr>(cast<ExprStmt>(bodyOf(*P)[0])->E);
  EXPECT_EQ(cast<BinaryExpr>(Assign->Rhs)->Op, BinaryOp::Or);
}

TEST(Parser, ParensOverridePrecedence) {
  auto P = parseClean(wrap("x = (a + b) * c;"));
  const auto *Assign = cast<AssignExpr>(cast<ExprStmt>(bodyOf(*P)[0])->E);
  EXPECT_EQ(cast<BinaryExpr>(Assign->Rhs)->Op, BinaryOp::Mul);
}

TEST(Parser, QualifiedStaticCall) {
  auto P = parseClean(wrap("Cipher c = Cipher.getInstance(\"AES\");"));
  const auto *Decl = cast<LocalVarDeclStmt>(bodyOf(*P)[0]);
  const auto *Call = cast<MethodCallExpr>(Decl->Init);
  EXPECT_EQ(Call->Name, "getInstance");
  EXPECT_TRUE(isa<NameExpr>(Call->Base));
  ASSERT_EQ(Call->Args.size(), 1u);
  EXPECT_TRUE(isa<StringLiteralExpr>(Call->Args[0]));
}

TEST(Parser, ChainedCalls) {
  auto P = parseClean(wrap("String s = b.append(\"x\").append(y).toString();"));
  const auto *Decl = cast<LocalVarDeclStmt>(bodyOf(*P)[0]);
  const auto *ToString = cast<MethodCallExpr>(Decl->Init);
  EXPECT_EQ(ToString->Name, "toString");
  EXPECT_TRUE(isa<MethodCallExpr>(ToString->Base));
}

TEST(Parser, FieldAccessChain) {
  auto P = parseClean(wrap("int m = Cipher.ENCRYPT_MODE;"));
  const auto *Decl = cast<LocalVarDeclStmt>(bodyOf(*P)[0]);
  const auto *Access = cast<FieldAccessExpr>(Decl->Init);
  EXPECT_EQ(Access->Name, "ENCRYPT_MODE");
}

TEST(Parser, NewObjectAndArrays) {
  auto P = parseClean(wrap("Object o = new Foo(1, \"x\"); "
                           "byte[] b = new byte[16]; "
                           "int[] i = new int[] {1, 2, 3}; "
                           "byte[][] m = new byte[2][8];"));
  const auto *NewFoo =
      cast<NewObjectExpr>(cast<LocalVarDeclStmt>(bodyOf(*P)[0])->Init);
  EXPECT_EQ(NewFoo->Type.Name, "Foo");
  EXPECT_EQ(NewFoo->Args.size(), 2u);
  const auto *NewByte =
      cast<NewArrayExpr>(cast<LocalVarDeclStmt>(bodyOf(*P)[1])->Init);
  EXPECT_EQ(NewByte->DimExprs.size(), 1u);
  const auto *NewInt =
      cast<NewArrayExpr>(cast<LocalVarDeclStmt>(bodyOf(*P)[2])->Init);
  ASSERT_NE(NewInt->Init, nullptr);
  EXPECT_EQ(cast<ArrayInitExpr>(NewInt->Init)->Elements.size(), 3u);
  const auto *NewMatrix =
      cast<NewArrayExpr>(cast<LocalVarDeclStmt>(bodyOf(*P)[3])->Init);
  EXPECT_EQ(NewMatrix->DimExprs.size(), 2u);
}

TEST(Parser, CastVsParenExpr) {
  auto P = parseClean(wrap("x = (byte) v; y = (a) + b; z = (Cipher) o;"));
  const auto &Stmts = bodyOf(*P);
  EXPECT_TRUE(isa<CastExpr>(
      cast<AssignExpr>(cast<ExprStmt>(Stmts[0])->E)->Rhs));
  EXPECT_TRUE(isa<BinaryExpr>(
      cast<AssignExpr>(cast<ExprStmt>(Stmts[1])->E)->Rhs));
  EXPECT_TRUE(isa<CastExpr>(
      cast<AssignExpr>(cast<ExprStmt>(Stmts[2])->E)->Rhs));
}

TEST(Parser, ConditionalExpr) {
  auto P = parseClean(wrap("x = flag ? a : b;"));
  EXPECT_TRUE(isa<ConditionalExpr>(
      cast<AssignExpr>(cast<ExprStmt>(bodyOf(*P)[0])->E)->Rhs));
}

TEST(Parser, UnaryOperators) {
  auto P = parseClean(wrap("x = -a; y = !b; z = ~c; i++; --j;"));
  EXPECT_EQ(bodyOf(*P).size(), 5u);
}

TEST(Parser, InstanceofExpr) {
  auto P = parseClean(wrap("boolean b = o instanceof Cipher;"));
  EXPECT_TRUE(isa<InstanceofExpr>(cast<LocalVarDeclStmt>(bodyOf(*P)[0])->Init));
}

TEST(Parser, ArrayAccessAndAssignment) {
  auto P = parseClean(wrap("arr[0] = arr[i + 1];"));
  const auto *Assign = cast<AssignExpr>(cast<ExprStmt>(bodyOf(*P)[0])->E);
  EXPECT_TRUE(isa<ArrayAccessExpr>(Assign->Lhs));
  EXPECT_TRUE(isa<ArrayAccessExpr>(Assign->Rhs));
}

TEST(Parser, ThisAndSuperCalls) {
  auto P = parseClean("class A extends B { A() { super(); } "
                      "A(int x) { this(); this.y = x; } int y; }");
  EXPECT_EQ(P->Unit->Types[0]->Methods.size(), 2u);
}

TEST(Parser, StringConcatenation) {
  auto P = parseClean(wrap("String s = \"a\" + x + \"b\";"));
  EXPECT_TRUE(isa<BinaryExpr>(cast<LocalVarDeclStmt>(bodyOf(*P)[0])->Init));
}

TEST(Parser, AnonymousClassBodySkipped) {
  auto P = parseClean(wrap(
      "Runnable r = new Runnable() { public void run() { work(); } };"));
  const auto *Decl = cast<LocalVarDeclStmt>(bodyOf(*P)[0]);
  EXPECT_TRUE(isa<NewObjectExpr>(Decl->Init));
}

//===----------------------------------------------------------------------===//
// Error recovery (partial programs, Section 5.1)
//===----------------------------------------------------------------------===//

TEST(ParserRecovery, MissingSemicolonStillParsesRest) {
  auto P = parse("class A { void m() { int x = 1 int y = 2; } }");
  EXPECT_TRUE(P->Diags.hasErrors());
  EXPECT_EQ(P->Unit->Types.size(), 1u);
}

TEST(ParserRecovery, GarbageMemberSkipped) {
  auto P = parse("class A { ??? int ok; void m() { } }");
  EXPECT_TRUE(P->Diags.hasErrors());
  const ClassDecl *A = P->Unit->Types[0];
  EXPECT_EQ(A->Methods.size(), 1u);
}

TEST(ParserRecovery, UnclosedClassDoesNotLoopForever) {
  auto P = parse("class A { void m() { if (x) ");
  EXPECT_TRUE(P->Diags.hasErrors());
  EXPECT_EQ(P->Unit->Types.size(), 1u);
}

TEST(ParserRecovery, EmptyInputYieldsEmptyUnit) {
  auto P = parseClean("");
  EXPECT_TRUE(P->Unit->Types.empty());
}

TEST(ParserRecovery, TopLevelGarbage) {
  auto P = parse("what is this; class A {}");
  EXPECT_TRUE(P->Diags.hasErrors());
  ASSERT_EQ(P->Unit->Types.size(), 1u);
  EXPECT_EQ(P->Unit->Types[0]->Name, "A");
}

//===----------------------------------------------------------------------===//
// Modern Java constructs (lambdas, method refs, assert, literal syntax)
//===----------------------------------------------------------------------===//

TEST(ParserModern, AssertStatementLowered) {
  auto P = parseClean(wrap("assert x > 0; assert y != null : \"message\";"));
  EXPECT_EQ(bodyOf(*P).size(), 2u);
  EXPECT_TRUE(isa<Block>(bodyOf(*P)[0]));
}

TEST(ParserModern, NumericUnderscores) {
  auto P = parseClean(wrap("int big = 1_000_000; int hex = 0xFF_EC; "
                           "long l = 10_000L; int bin = 0b1010_1010;"));
  const auto *Big = cast<LocalVarDeclStmt>(bodyOf(*P)[0]);
  EXPECT_EQ(cast<IntLiteralExpr>(Big->Init)->Spelling, "1_000_000");
}

TEST(ParserModern, SingleParamLambdaOpaque) {
  auto P = parseClean(wrap("Runnable r = x -> x.run();"));
  const auto *Decl = cast<LocalVarDeclStmt>(bodyOf(*P)[0]);
  const auto *Name = dyn_cast<NameExpr>(Decl->Init);
  ASSERT_NE(Name, nullptr);
  EXPECT_EQ(Name->Name, "$lambda");
}

TEST(ParserModern, ParenLambdaFormsOpaque) {
  auto P = parseClean(wrap(
      "exec(() -> { work(); }); "
      "map(list, (a, b) -> a + b); "
      "Runnable r = (x) -> x;"));
  EXPECT_EQ(bodyOf(*P).size(), 3u);
}

TEST(ParserModern, MethodReferenceOpaque) {
  auto P = parseClean(wrap("use(String::valueOf); use(obj::toString); "
                           "use(ArrayList::new);"));
  EXPECT_EQ(bodyOf(*P).size(), 3u);
}

TEST(ParserModern, LambdaInsideCryptoCodeDoesNotBreakAnalysisShape) {
  auto P = parseClean(wrap(
      "byte[] out = runSafely(() -> cipher.doFinal(data)); "
      "Cipher c = Cipher.getInstance(\"AES\");"));
  // The crypto statement after the lambda still parses.
  const auto *Decl = cast<LocalVarDeclStmt>(bodyOf(*P)[1]);
  EXPECT_TRUE(isa<MethodCallExpr>(Decl->Init));
}

TEST(ParserModern, CastStillWorksDespiteLambdaLookahead) {
  // `(byte) v` must not be mistaken for a lambda parameter list.
  auto P = parseClean(wrap("x = (byte) v; y = (Foo) w;"));
  EXPECT_TRUE(isa<CastExpr>(
      cast<AssignExpr>(cast<ExprStmt>(bodyOf(*P)[0])->E)->Rhs));
  EXPECT_TRUE(isa<CastExpr>(
      cast<AssignExpr>(cast<ExprStmt>(bodyOf(*P)[1])->E)->Rhs));
}

//===----------------------------------------------------------------------===//
// Arena lifetime: AstContext reset/reuse across files
//===----------------------------------------------------------------------===//

TEST(ParserArena, ResetReleasesNodesAndReusesSlabs) {
  const std::string Source = wrap(
      "Cipher c = Cipher.getInstance(\"AES/CBC/PKCS5Padding\"); "
      "c.init(Cipher.ENCRYPT_MODE, key); byte[] out = c.doFinal(data);");
  AstContext Ctx;
  DiagnosticsEngine FirstDiags;
  CompilationUnit *First = parseJava(Source, Ctx, FirstDiags);
  ASSERT_NE(First, nullptr);
  EXPECT_GT(Ctx.size(), 0u);
  EXPECT_GT(Ctx.arenaBytes(), 0u);
  std::string FirstPrinted = AstPrinter().print(First);

  Ctx.reset();
  EXPECT_EQ(Ctx.size(), 0u);
  EXPECT_EQ(Ctx.arenaBytes(), 0u);
  // Slabs are retained across reset, so capacity survives.
  EXPECT_GT(Ctx.arenaCapacity(), 0u);

  // Reparsing into the recycled arena yields a byte-identical tree.
  DiagnosticsEngine SecondDiags;
  CompilationUnit *Second = parseJava(Source, Ctx, SecondDiags);
  ASSERT_NE(Second, nullptr);
  EXPECT_EQ(AstPrinter().print(Second), FirstPrinted);
  EXPECT_FALSE(SecondDiags.hasErrors());
}

TEST(ParserArena, RepeatedReuseReachesSteadyStateCapacity) {
  // processChange recycles one AstContext across every file of a change;
  // after the first few cycles the arena must stop growing.
  const std::string Source = wrap(
      "for (int i = 0; i < n; i++) { sb.append(items[i]); } "
      "Mac m = Mac.getInstance(\"HmacSHA256\"); m.update(data);");
  AstContext Ctx;
  std::size_t CapacityAfterWarmup = 0;
  for (int Cycle = 0; Cycle < 10; ++Cycle) {
    Ctx.reset();
    DiagnosticsEngine Diags;
    ASSERT_NE(parseJava(Source, Ctx, Diags), nullptr) << "cycle " << Cycle;
    if (Cycle == 1)
      CapacityAfterWarmup = Ctx.arenaCapacity();
    else if (Cycle > 1)
      EXPECT_EQ(Ctx.arenaCapacity(), CapacityAfterWarmup)
          << "arena still growing at cycle " << Cycle;
  }
}

TEST(ParserArena, ReuseAcrossDifferentFilesKeepsTreesIndependent) {
  // The AST of file N must not depend on what file N-1 left in the arena.
  const std::string A = wrap("int x = 1; String s = \"alpha\";");
  const std::string B = wrap("Cipher c = Cipher.getInstance(\"DES\");");

  auto PrintFresh = [](const std::string &Source) {
    AstContext Fresh;
    DiagnosticsEngine Diags;
    CompilationUnit *Unit = parseJava(Source, Fresh, Diags);
    EXPECT_NE(Unit, nullptr);
    return Unit ? AstPrinter().print(Unit) : std::string();
  };
  const std::string WantA = PrintFresh(A);
  const std::string WantB = PrintFresh(B);

  AstContext Shared;
  for (int Round = 0; Round < 4; ++Round) {
    const std::string &Source = Round % 2 == 0 ? A : B;
    const std::string &Want = Round % 2 == 0 ? WantA : WantB;
    Shared.reset();
    DiagnosticsEngine Diags;
    CompilationUnit *Unit = parseJava(Source, Shared, Diags);
    ASSERT_NE(Unit, nullptr) << "round " << Round;
    EXPECT_EQ(AstPrinter().print(Unit), Want) << "round " << Round;
  }
}
