file(REMOVE_RECURSE
  "CMakeFiles/check_project.dir/check_project.cpp.o"
  "CMakeFiles/check_project.dir/check_project.cpp.o.d"
  "check_project"
  "check_project.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/check_project.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
