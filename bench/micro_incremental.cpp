//===- bench/micro_incremental.cpp - Session append vs cold batch ---------===//
//
// Part of the DiffCode project, a reproduction of "Inferring Crypto API
// Rules from Code Changes" (PLDI'18).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The point of service mode (DESIGN.md "Service mode and the session
/// API"): when one commit lands on an already-analyzed corpus, an
/// AnalysisSession re-analyzes only what the commit touched and repairs
/// the affected dendrograms from its persisted pair-distance tables,
/// where a batch pipeline re-runs everything. This bench measures that
/// gap at corpus scale and gates on it.
///
/// Scenario: mine a generated corpus down to n changes, split off the
/// final commit's changes (the "append"), then time
///
///   * cold:        DiffCode::run over all n changes (what a batch CLI
///                  invocation re-does when the corpus grows by one
///                  commit), and
///   * incremental: session.ingest(tail) on a session pre-warmed with
///                  the first n - tail changes (warm-up untimed — it is
///                  the one-time cost the service amortizes away).
///
/// Each side is min-of-N with a fresh pre-warmed session per
/// incremental rep, since ingest mutates the session and replaying the
/// same tail would time the all-hits path instead of a novel commit.
///
/// Self-verifying:
///
///   * byte-identity: the warmed-then-appended session's snapshot JSON
///     equals the cold batch report byte for byte (the session
///     contract);
///   * bookkeeping: the session holds exactly n changes and the append
///     ingested exactly the tail;
///   * speedup: cold wall time over incremental wall time is at least
///     5x (the ISSUE acceptance bar; at n=10k the observed ratio is
///     orders of magnitude higher, so the bar has slack for noise).
///
///   micro_incremental [n] [seed] [out.json]   (defaults: 10000 42
///                                             BENCH_incremental.json)
///
//===----------------------------------------------------------------------===//

#include "core/DiffCode.h"
#include "core/ReportWriter.h"
#include "corpus/CorpusGenerator.h"
#include "corpus/Miner.h"
#include "service/AnalysisSession.h"
#include "support/JsonWriter.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

using namespace diffcode;
using namespace diffcode::core;

namespace {

constexpr double SpeedupBar = 5.0;
constexpr unsigned Reps = 3;

const apimodel::CryptoApiModel &api() {
  return apimodel::CryptoApiModel::javaCryptoApi();
}

std::uint64_t nanosSince(std::chrono::steady_clock::time_point Start) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - Start)
          .count());
}

} // namespace

int main(int argc, char **argv) {
  long long N = argc > 1 ? std::atoll(argv[1]) : 10000;
  if (N < 2) {
    std::fprintf(stderr,
                 "usage: micro_incremental [n >= 2] [seed] [out.json]"
                 "   (defaults: 10000 42 BENCH_incremental.json)\n");
    return 2;
  }
  std::uint64_t Seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 42;
  const char *OutPath = argc > 3 ? argv[3] : "BENCH_incremental.json";

  //===--------------------------------------------------------------------===//
  // Corpus: grow until the miner yields at least n changes, then trim
  //===--------------------------------------------------------------------===//

  // ~16-20 mined changes per generated project at the default knobs;
  // start from that estimate and double on a shortfall.
  unsigned Projects = static_cast<unsigned>((N + 15) / 16);
  if (Projects < 8)
    Projects = 8;
  corpus::Corpus C;
  corpus::Miner M(api());
  std::vector<const corpus::CodeChange *> Mined;
  for (unsigned Attempt = 0; Attempt < 6; ++Attempt) {
    corpus::CorpusOptions Opts;
    Opts.NumProjects = Projects;
    Opts.Seed = Seed;
    C = corpus::CorpusGenerator(Opts).generate();
    Mined = M.mine(C);
    if (Mined.size() >= static_cast<std::size_t>(N))
      break;
    Projects *= 2;
  }
  if (Mined.size() < static_cast<std::size_t>(N)) {
    std::fprintf(stderr, "error: only mined %zu of %lld requested changes\n",
                 Mined.size(), N);
    return 2;
  }
  Mined.resize(static_cast<std::size_t>(N));

  // The appended "commit": the trailing run of changes sharing the last
  // change's (project, commit) identity — what one push delivers.
  std::size_t Head = Mined.size();
  while (Head > 0 &&
         Mined[Head - 1]->ProjectName == Mined.back()->ProjectName &&
         Mined[Head - 1]->CommitIndex == Mined.back()->CommitIndex)
    --Head;
  if (Head == 0) {
    std::fprintf(stderr, "error: corpus collapsed into a single commit\n");
    return 2;
  }
  std::vector<corpus::CodeChange> HeadChanges, TailChanges;
  HeadChanges.reserve(Head);
  TailChanges.reserve(Mined.size() - Head);
  for (std::size_t I = 0; I < Mined.size(); ++I)
    (I < Head ? HeadChanges : TailChanges).push_back(*Mined[I]);
  std::fprintf(stderr,
               "incremental bench: %lld changes (seed %llu, %u projects), "
               "append = last commit of %zu changes\n",
               N, static_cast<unsigned long long>(Seed), Projects,
               TailChanges.size());

  PipelineConfig Config; // Threads = 0: hardware width on both sides
  DiffCode System(api(), Config);
  PipelineRequest All;
  All.Changes = Mined;
  All.TargetClasses = api().targetClasses();

  service::SessionOptions SessOpts;
  SessOpts.Config = Config;
  auto warmedSession = [&] {
    auto S = std::make_unique<service::AnalysisSession>(api(), SessOpts);
    S->ingest(HeadChanges);
    return S;
  };

  //===--------------------------------------------------------------------===//
  // Byte-identity + bookkeeping
  //===--------------------------------------------------------------------===//

  std::string ColdJson = corpusReportToJson(System.run(All));
  auto Probe = warmedSession();
  service::IngestStats TailStats = Probe->ingest(TailChanges);
  std::string SessionJson = Probe->reportJson();
  bool ByteIdentical = !ColdJson.empty() && ColdJson == SessionJson;
  bool BookkeepingOk = Probe->size() == Mined.size() &&
                       TailStats.Ingested == TailChanges.size() &&
                       TailStats.CacheHits + TailStats.CacheMisses ==
                           TailChanges.size();
  Probe.reset();

  //===--------------------------------------------------------------------===//
  // Throughput: min-of-N, fresh warmed session per incremental rep
  //===--------------------------------------------------------------------===//

  std::uint64_t ColdWallNs = ~std::uint64_t(0);
  std::uint64_t IncrWallNs = ~std::uint64_t(0);
  std::size_t Sink = 0; // keeps the timed runs observable
  for (unsigned Rep = 0; Rep < Reps; ++Rep) {
    auto Session = warmedSession(); // untimed: the amortized one-time cost
    auto IncrStart = std::chrono::steady_clock::now();
    Sink += Session->ingest(TailChanges).Ingested;
    std::uint64_t Incr = nanosSince(IncrStart);
    if (Incr < IncrWallNs)
      IncrWallNs = Incr;

    auto ColdStart = std::chrono::steady_clock::now();
    Sink += System.run(All).Changes.size();
    std::uint64_t Cold = nanosSince(ColdStart);
    if (Cold < ColdWallNs)
      ColdWallNs = Cold;
  }
  double Speedup =
      static_cast<double>(ColdWallNs) / static_cast<double>(IncrWallNs);
  bool SpeedupOk = Speedup >= SpeedupBar;
  std::fprintf(stderr,
               "  cold batch   %10.2f ms (all %zu changes)\n"
               "  append       %10.2f ms (%zu changes, %llu pairs reused)\n"
               "  speedup      %10.1fx (bar %.0fx)\n",
               ColdWallNs / 1e6, Mined.size(), IncrWallNs / 1e6,
               TailChanges.size(),
               static_cast<unsigned long long>(TailStats.PairsReused), Speedup,
               SpeedupBar);

  //===--------------------------------------------------------------------===//
  // Report
  //===--------------------------------------------------------------------===//

  JsonWriter W;
  W.beginObject();
  W.key("bench").value("micro_incremental");
  W.key("n").value(static_cast<std::uint64_t>(Mined.size()));
  W.key("seed").value(Seed);
  W.key("projects").value(static_cast<std::uint64_t>(Projects));
  W.key("append_changes").value(static_cast<std::uint64_t>(TailChanges.size()));
  W.key("reps").value(static_cast<std::uint64_t>(Reps));
  W.key("cold_wall_ns_min").value(ColdWallNs);
  W.key("incremental_wall_ns_min").value(IncrWallNs);
  W.key("speedup").value(Speedup);
  W.key("speedup_bar").value(SpeedupBar);
  W.key("append_ingest").beginObject();
  W.key("cache_hits").value(static_cast<std::uint64_t>(TailStats.CacheHits));
  W.key("cache_misses")
      .value(static_cast<std::uint64_t>(TailStats.CacheMisses));
  W.key("classes_repaired")
      .value(static_cast<std::uint64_t>(TailStats.ClassesRepaired));
  W.key("classes_reused")
      .value(static_cast<std::uint64_t>(TailStats.ClassesReused));
  W.key("pairs_computed").value(TailStats.PairsComputed);
  W.key("pairs_reused").value(TailStats.PairsReused);
  W.endObject();
  W.key("byte_identical").value(ByteIdentical);
  W.key("bookkeeping_ok").value(BookkeepingOk);
  W.key("speedup_ok").value(SpeedupOk);
  bool Pass = ByteIdentical && BookkeepingOk && SpeedupOk && Sink > 0;
  W.key("pass").value(Pass);
  W.endObject();

  std::string Json = W.take();
  std::printf("%s\n", Json.c_str());
  std::ofstream Out(OutPath);
  if (Out)
    Out << Json << "\n";
  else
    std::fprintf(stderr, "warning: cannot write %s\n", OutPath);

  if (!ByteIdentical)
    std::fprintf(stderr,
                 "FAIL: warmed session snapshot differs from cold batch\n");
  if (!BookkeepingOk)
    std::fprintf(stderr, "FAIL: session bookkeeping inconsistent\n");
  if (!SpeedupOk)
    std::fprintf(stderr, "FAIL: append speedup %.2fx below %.0fx bar\n",
                 Speedup, SpeedupBar);
  std::fprintf(stderr, "  %s\n", Pass ? "PASS" : "FAIL");
  return Pass ? 0 : 1;
}
