file(REMOVE_RECURSE
  "CMakeFiles/test_abstract_value.dir/test_abstract_value.cpp.o"
  "CMakeFiles/test_abstract_value.dir/test_abstract_value.cpp.o.d"
  "test_abstract_value"
  "test_abstract_value.pdb"
  "test_abstract_value[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_abstract_value.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
