//===- tests/test_rules.cpp - Rule language & builtin rule tests -----------===//

#include "rules/BuiltinRules.h"
#include "rules/CryptoChecker.h"

#include "analysis/AbstractInterpreter.h"
#include "javaast/Parser.h"

#include <gtest/gtest.h>

#include <memory>

using namespace diffcode;
using namespace diffcode::analysis;
using namespace diffcode::rules;

namespace {

AnalysisResult analyze(std::string_view Source) {
  java::AstContext Ctx;
  java::DiagnosticsEngine Diags;
  java::CompilationUnit *Unit = java::parseJava(Source, Ctx, Diags);
  EXPECT_FALSE(Diags.hasErrors())
      << (Diags.all().empty() ? "" : Diags.all().front().str());
  AbstractInterpreter Interp(apimodel::CryptoApiModel::javaCryptoApi());
  return Interp.analyze(Unit);
}

bool matchesRule(const char *RuleId, std::string_view Source,
                 ProjectMetadata Meta = ProjectMetadata()) {
  const Rule *R = findRule(RuleId);
  EXPECT_NE(R, nullptr) << RuleId;
  AnalysisResult Result = analyze(Source);
  UnitFacts Facts = UnitFacts::from(Result);
  return ruleMatches(*R, {Facts}, Meta);
}

} // namespace

//===----------------------------------------------------------------------===//
// ArgConstraint unit tests
//===----------------------------------------------------------------------===//

TEST(ArgConstraint, StrEquals) {
  ArgConstraint C;
  C.K = ArgConstraint::Kind::StrEquals;
  C.Values = {"SHA-1", "SHA1"};
  EXPECT_TRUE(C.matches(AbstractValue::strConst("SHA-1")));
  EXPECT_TRUE(C.matches(AbstractValue::strConst("SHA1")));
  EXPECT_FALSE(C.matches(AbstractValue::strConst("SHA-256")));
  EXPECT_FALSE(C.matches(AbstractValue::strTop()));
  EXPECT_FALSE(C.matches(AbstractValue::intConst(1)));
}

TEST(ArgConstraint, StrNotEqualsTreatsUnknownAsViolating) {
  ArgConstraint C;
  C.K = ArgConstraint::Kind::StrNotEquals;
  C.Values = {"BC"};
  EXPECT_FALSE(C.matches(AbstractValue::strConst("BC")));
  EXPECT_TRUE(C.matches(AbstractValue::strConst("SunJCE")));
  EXPECT_TRUE(C.matches(AbstractValue::strTop()));
}

TEST(ArgConstraint, StrStartsWith) {
  ArgConstraint C;
  C.K = ArgConstraint::Kind::StrStartsWith;
  C.Values = {"AES/CBC"};
  EXPECT_TRUE(C.matches(AbstractValue::strConst("AES/CBC/PKCS5Padding")));
  EXPECT_TRUE(C.matches(AbstractValue::strConst("AES/CBC")));
  EXPECT_FALSE(C.matches(AbstractValue::strConst("AES/GCM/NoPadding")));
  EXPECT_FALSE(C.matches(AbstractValue::strTop()));
}

TEST(ArgConstraint, IntComparisons) {
  ArgConstraint Less;
  Less.K = ArgConstraint::Kind::IntLess;
  Less.IntBound = 1000;
  EXPECT_TRUE(Less.matches(AbstractValue::intConst(100)));
  EXPECT_FALSE(Less.matches(AbstractValue::intConst(1000)));
  EXPECT_FALSE(Less.matches(AbstractValue::intTop()));

  ArgConstraint Eq;
  Eq.K = ArgConstraint::Kind::IntEquals;
  Eq.IntBound = 16;
  EXPECT_TRUE(Eq.matches(AbstractValue::intConst(16)));
  EXPECT_FALSE(Eq.matches(AbstractValue::intConst(17)));
}

TEST(ArgConstraint, Constancy) {
  ArgConstraint Const;
  Const.K = ArgConstraint::Kind::IsConstant;
  EXPECT_TRUE(Const.matches(AbstractValue::byteArrayConst()));
  EXPECT_FALSE(Const.matches(AbstractValue::byteArrayTop()));

  ArgConstraint Top;
  Top.K = ArgConstraint::Kind::IsTop;
  EXPECT_FALSE(Top.matches(AbstractValue::byteArrayConst()));
  EXPECT_TRUE(Top.matches(AbstractValue::byteArrayTop()));
}

//===----------------------------------------------------------------------===//
// CallPattern
//===----------------------------------------------------------------------===//

TEST(CallPattern, MatchesSignatureParts) {
  CallPattern P;
  P.ClassName = "Cipher";
  P.MethodName = "getInstance";
  UsageEvent Match{"Cipher.getInstance/1", {AbstractValue::strConst("AES")}};
  UsageEvent WrongClass{"Mac.getInstance/1",
                        {AbstractValue::strConst("AES")}};
  UsageEvent WrongName{"Cipher.init/1", {AbstractValue::strConst("AES")}};
  EXPECT_TRUE(P.matchesEvent(Match));
  EXPECT_FALSE(P.matchesEvent(WrongClass));
  EXPECT_FALSE(P.matchesEvent(WrongName));
}

TEST(CallPattern, ArityFilter) {
  CallPattern P;
  P.MethodName = "getInstance";
  P.Arity = 2;
  UsageEvent One{"Cipher.getInstance/1", {AbstractValue::strConst("AES")}};
  UsageEvent Two{"Cipher.getInstance/2",
                 {AbstractValue::strConst("AES"),
                  AbstractValue::strConst("BC")}};
  EXPECT_FALSE(P.matchesEvent(One));
  EXPECT_TRUE(P.matchesEvent(Two));
}

TEST(CallPattern, MissingArgumentFailsConstraint) {
  CallPattern P;
  P.MethodName = "init";
  ArgConstraint C;
  C.Index = 3;
  C.K = ArgConstraint::Kind::Any;
  P.Args = {C};
  UsageEvent TwoArgs{"Cipher.init/2",
                     {AbstractValue::intConst(1), AbstractValue::unknown()}};
  EXPECT_FALSE(P.matchesEvent(TwoArgs));
}

//===----------------------------------------------------------------------===//
// ObjectFormula
//===----------------------------------------------------------------------===//

TEST(ObjectFormula, ExistsAndNotExists) {
  CallPattern P;
  P.MethodName = "setSeed";
  std::vector<UsageEvent> WithSeed = {
      {"SecureRandom.setSeed/1", {AbstractValue::byteArrayConst()}}};
  std::vector<UsageEvent> WithoutSeed = {
      {"SecureRandom.nextBytes/1", {AbstractValue::byteArrayTop()}}};
  EXPECT_TRUE(ObjectFormula::exists(P).eval(WithSeed));
  EXPECT_FALSE(ObjectFormula::exists(P).eval(WithoutSeed));
  EXPECT_FALSE(ObjectFormula::notExists(P).eval(WithSeed));
  EXPECT_TRUE(ObjectFormula::notExists(P).eval(WithoutSeed));
}

TEST(ObjectFormula, AndOrComposition) {
  CallPattern GetInstance;
  GetInstance.MethodName = "getInstance";
  CallPattern Init;
  Init.MethodName = "init";
  std::vector<UsageEvent> Both = {{"Cipher.getInstance/1", {}},
                                  {"Cipher.init/2", {}}};
  std::vector<UsageEvent> OnlyGet = {{"Cipher.getInstance/1", {}}};
  ObjectFormula AndF = ObjectFormula::all(
      {ObjectFormula::exists(GetInstance), ObjectFormula::exists(Init)});
  ObjectFormula OrF = ObjectFormula::any(
      {ObjectFormula::exists(GetInstance), ObjectFormula::exists(Init)});
  EXPECT_TRUE(AndF.eval(Both));
  EXPECT_FALSE(AndF.eval(OnlyGet));
  EXPECT_TRUE(OrF.eval(OnlyGet));
  EXPECT_FALSE(OrF.eval({}));
}

//===----------------------------------------------------------------------===//
// Builtin rules against real Java snippets
//===----------------------------------------------------------------------===//

TEST(BuiltinRules, AllRulesPresent) {
  EXPECT_EQ(elicitedRules().size(), 13u);
  EXPECT_EQ(cryptoLintRules().size(), 5u);
  for (int I = 1; I <= 13; ++I)
    EXPECT_NE(findRule("R" + std::to_string(I)), nullptr) << I;
  for (int I = 1; I <= 5; ++I)
    EXPECT_NE(findRule("CL" + std::to_string(I)), nullptr) << I;
  EXPECT_EQ(findRule("R99"), nullptr);
}

TEST(BuiltinRules, R1_Sha1Digest) {
  EXPECT_TRUE(matchesRule("R1",
      "class A { void m() throws Exception { "
      "MessageDigest d = MessageDigest.getInstance(\"SHA-1\"); } }"));
  EXPECT_TRUE(matchesRule("R1",
      "class A { void m() throws Exception { "
      "MessageDigest d = MessageDigest.getInstance(\"MD5\"); } }"));
  EXPECT_FALSE(matchesRule("R1",
      "class A { void m() throws Exception { "
      "MessageDigest d = MessageDigest.getInstance(\"SHA-256\"); } }"));
}

TEST(BuiltinRules, R2_LowIterations) {
  EXPECT_TRUE(matchesRule("R2",
      "class A { void m(char[] p, byte[] s) { "
      "PBEKeySpec k = new PBEKeySpec(p, s, 100, 128); } }"));
  EXPECT_FALSE(matchesRule("R2",
      "class A { void m(char[] p, byte[] s) { "
      "PBEKeySpec k = new PBEKeySpec(p, s, 10000, 128); } }"));
}

TEST(BuiltinRules, R3_SecureRandomAlgorithm) {
  EXPECT_TRUE(matchesRule("R3",
      "class A { void m() { SecureRandom r = new SecureRandom(); } }"));
  EXPECT_TRUE(matchesRule("R3",
      "class A { void m() throws Exception { "
      "SecureRandom r = SecureRandom.getInstance(\"NativePRNG\"); } }"));
  EXPECT_FALSE(matchesRule("R3",
      "class A { void m() throws Exception { "
      "SecureRandom r = SecureRandom.getInstance(\"SHA1PRNG\"); } }"));
}

TEST(BuiltinRules, R4_GetInstanceStrong) {
  EXPECT_TRUE(matchesRule("R4",
      "class A { void m() throws Exception { "
      "SecureRandom r = SecureRandom.getInstanceStrong(); } }"));
  EXPECT_FALSE(matchesRule("R4",
      "class A { void m() throws Exception { "
      "SecureRandom r = SecureRandom.getInstance(\"SHA1PRNG\"); } }"));
}

TEST(BuiltinRules, R5_BouncyCastleProvider) {
  EXPECT_TRUE(matchesRule("R5",
      "class A { void m() throws Exception { "
      "Cipher c = Cipher.getInstance(\"AES/CBC/PKCS5Padding\"); } }"));
  EXPECT_TRUE(matchesRule("R5",
      "class A { void m() throws Exception { "
      "Cipher c = Cipher.getInstance(\"AES/CBC/PKCS5Padding\", "
      "\"SunJCE\"); } }"));
  EXPECT_FALSE(matchesRule("R5",
      "class A { void m() throws Exception { "
      "Cipher c = Cipher.getInstance(\"AES/CBC/PKCS5Padding\", \"BC\"); } "
      "}"));
}

TEST(BuiltinRules, R6_AndroidPrngGuards) {
  const char *Source =
      "class A { void m() { SecureRandom r = new SecureRandom(); } }";
  ProjectMetadata Vulnerable;
  Vulnerable.IsAndroid = true;
  Vulnerable.MinSdkVersion = 17;
  Vulnerable.HasLinuxPrngFix = false;
  EXPECT_TRUE(matchesRule("R6", Source, Vulnerable));

  ProjectMetadata OldSdk = Vulnerable;
  OldSdk.MinSdkVersion = 14;
  EXPECT_FALSE(matchesRule("R6", Source, OldSdk));

  ProjectMetadata Patched = Vulnerable;
  Patched.HasLinuxPrngFix = true;
  EXPECT_FALSE(matchesRule("R6", Source, Patched));

  ProjectMetadata ServerSide = Vulnerable;
  ServerSide.IsAndroid = false;
  EXPECT_FALSE(matchesRule("R6", Source, ServerSide));
}

TEST(BuiltinRules, R7_EcbMode) {
  EXPECT_TRUE(matchesRule("R7",
      "class A { void m() throws Exception { "
      "Cipher c = Cipher.getInstance(\"AES\"); } }"));
  EXPECT_TRUE(matchesRule("R7",
      "class A { void m() throws Exception { "
      "Cipher c = Cipher.getInstance(\"AES/ECB/PKCS5Padding\"); } }"));
  EXPECT_FALSE(matchesRule("R7",
      "class A { void m() throws Exception { "
      "Cipher c = Cipher.getInstance(\"AES/CBC/PKCS5Padding\"); } }"));
}

TEST(BuiltinRules, R8_Des) {
  EXPECT_TRUE(matchesRule("R8",
      "class A { void m() throws Exception { "
      "Cipher c = Cipher.getInstance(\"DES\"); } }"));
  EXPECT_TRUE(matchesRule("R8",
      "class A { void m() throws Exception { "
      "Cipher c = Cipher.getInstance(\"DES/CBC/PKCS5Padding\"); } }"));
  EXPECT_FALSE(matchesRule("R8",
      "class A { void m() throws Exception { "
      "Cipher c = Cipher.getInstance(\"AES/CBC/PKCS5Padding\"); } }"));
}

TEST(BuiltinRules, R9_StaticIv) {
  EXPECT_TRUE(matchesRule("R9",
      "class A { void m() { IvParameterSpec iv = new IvParameterSpec("
      "\"0123456789abcdef\".getBytes()); } }"));
  EXPECT_FALSE(matchesRule("R9",
      "class A { void m(byte[] raw) { "
      "IvParameterSpec iv = new IvParameterSpec(raw); } }"));
}

TEST(BuiltinRules, R10_StaticKey) {
  EXPECT_TRUE(matchesRule("R10",
      "class A { void m() { SecretKeySpec k = new SecretKeySpec("
      "\"sixteen-byte-key\".getBytes(), \"AES\"); } }"));
  EXPECT_FALSE(matchesRule("R10",
      "class A { void m(byte[] raw) { "
      "SecretKeySpec k = new SecretKeySpec(raw, \"AES\"); } }"));
}

TEST(BuiltinRules, R11_StaticSalt) {
  EXPECT_TRUE(matchesRule("R11",
      "class A { void m(char[] p) { byte[] salt = \"fixed\".getBytes(); "
      "PBEKeySpec k = new PBEKeySpec(p, salt, 10000, 128); } }"));
  EXPECT_FALSE(matchesRule("R11",
      "class A { void m(char[] p, byte[] salt) { "
      "PBEKeySpec k = new PBEKeySpec(p, salt, 10000, 128); } }"));
}

TEST(BuiltinRules, R12_StaticSeed) {
  EXPECT_TRUE(matchesRule("R12",
      "class A { void m() throws Exception { "
      "SecureRandom r = SecureRandom.getInstance(\"SHA1PRNG\"); "
      "r.setSeed(\"notrandom\".getBytes()); } }"));
  EXPECT_FALSE(matchesRule("R12",
      "class A { void m() throws Exception { "
      "SecureRandom r = SecureRandom.getInstance(\"SHA1PRNG\"); "
      "r.setSeed(r.generateSeed(16)); } }"));
}

TEST(BuiltinRules, R13_MissingIntegrity) {
  const char *NoMac =
      "class A { void m(Key rsa, SecretKey k, byte[] d, byte[] ivb) throws "
      "Exception { "
      "Cipher w = Cipher.getInstance(\"RSA/ECB/PKCS1Padding\"); "
      "w.init(Cipher.WRAP_MODE, rsa); "
      "Cipher a = Cipher.getInstance(\"AES/CBC/PKCS5Padding\"); "
      "a.init(Cipher.ENCRYPT_MODE, k, new IvParameterSpec(ivb)); } }";
  EXPECT_TRUE(matchesRule("R13", NoMac));

  const char *WithMac =
      "class A { void m(Key rsa, SecretKey k, byte[] d, byte[] ivb) throws "
      "Exception { "
      "Cipher w = Cipher.getInstance(\"RSA/ECB/PKCS1Padding\"); "
      "w.init(Cipher.WRAP_MODE, rsa); "
      "Cipher a = Cipher.getInstance(\"AES/CBC/PKCS5Padding\"); "
      "a.init(Cipher.ENCRYPT_MODE, k, new IvParameterSpec(ivb)); "
      "Mac m2 = Mac.getInstance(\"HmacSHA256\"); m2.init(k); } }";
  EXPECT_FALSE(matchesRule("R13", WithMac));

  // AES-only code (no RSA) is not flagged.
  EXPECT_FALSE(matchesRule("R13",
      "class A { void m(SecretKey k, byte[] ivb) throws Exception { "
      "Cipher a = Cipher.getInstance(\"AES/CBC/PKCS5Padding\"); "
      "a.init(Cipher.ENCRYPT_MODE, k, new IvParameterSpec(ivb)); } }"));
}

//===----------------------------------------------------------------------===//
// Applicability & CryptoChecker
//===----------------------------------------------------------------------===//

TEST(Rules, ApplicabilityRequiresTypePresence) {
  const Rule *R1 = findRule("R1");
  AnalysisResult NoDigest = analyze(
      "class A { void m() throws Exception { "
      "Cipher c = Cipher.getInstance(\"AES\"); } }");
  UnitFacts Facts = UnitFacts::from(NoDigest);
  EXPECT_FALSE(ruleApplicable(*R1, {Facts}));
  EXPECT_FALSE(ruleMatches(*R1, {Facts}));
}

TEST(Rules, CompositeApplicabilityNeedsPositiveClauses) {
  const Rule *R13 = findRule("R13");
  std::vector<std::string> Types = R13->applicableTypes();
  ASSERT_EQ(Types.size(), 1u); // Cipher twice dedupes; Mac is negated
  EXPECT_EQ(Types[0], "Cipher");
}

TEST(Rules, MultiUnitProjectsCombineFacts) {
  // The AES/CBC cipher and the RSA cipher live in different files; R13
  // must still fire across them.
  AnalysisResult UnitA = analyze(
      "class A { void m(SecretKey k, byte[] ivb) throws Exception { "
      "Cipher a = Cipher.getInstance(\"AES/CBC/PKCS5Padding\"); "
      "a.init(Cipher.ENCRYPT_MODE, k, new IvParameterSpec(ivb)); } }");
  AnalysisResult UnitB = analyze(
      "class B { void m(Key rsa) throws Exception { "
      "Cipher w = Cipher.getInstance(\"RSA\"); "
      "w.init(Cipher.WRAP_MODE, rsa); } }");
  UnitFacts FactsA = UnitFacts::from(UnitA);
  UnitFacts FactsB = UnitFacts::from(UnitB);
  EXPECT_TRUE(ruleMatches(*findRule("R13"), {FactsA, FactsB}));
}

TEST(CryptoChecker, ReportsViolationSites) {
  AnalysisResult Result = analyze(
      "class A {\n"
      "  void m() throws Exception {\n"
      "    Cipher c = Cipher.getInstance(\"DES\");\n"
      "  }\n"
      "}");
  UnitFacts Facts = UnitFacts::from(Result);
  CryptoChecker Checker;
  ProjectReport Report = Checker.checkProject({Facts});
  EXPECT_TRUE(Report.anyMatch());
  bool FoundR8 = false;
  for (const RuleVerdict &V : Report.verdicts()) {
    if (Report.text(V.Rule) != "R8")
      continue;
    FoundR8 = true;
    EXPECT_TRUE(V.Matched);
    ASSERT_FALSE(V.Violations.empty());
    EXPECT_EQ(Report.text(V.Violations[0].Type), "Cipher");
    EXPECT_EQ(Report.text(V.Violations[0].Site), "l3");
  }
  EXPECT_TRUE(FoundR8);
}

TEST(CryptoChecker, CleanProjectPasses) {
  AnalysisResult Result = analyze(
      "class A { int add(int a, int b) { return a + b; } }");
  UnitFacts Facts = UnitFacts::from(Result);
  CryptoChecker Checker;
  ProjectReport Report = Checker.checkProject({Facts});
  EXPECT_FALSE(Report.anyMatch());
  for (const RuleVerdict &V : Report.verdicts())
    EXPECT_FALSE(V.Applicable);
}

TEST(CryptoChecker, CustomRuleSet) {
  CryptoChecker Checker({*findRule("R8")});
  EXPECT_EQ(Checker.rules().size(), 1u);
  EXPECT_EQ(Checker.rules()[0].Id, "R8");
}

TEST(ProjectReport, AnyMatchIsCachedAtInsertion) {
  auto Symbols = std::make_shared<ScanSymbols>();
  ProjectReport Report;
  Report.Symbols = Symbols;
  RuleVerdict Quiet;
  Quiet.Rule = Symbols->intern("R1");
  Quiet.Applicable = true;
  Report.addVerdict(Quiet);
  EXPECT_FALSE(Report.anyMatch());
  RuleVerdict Loud;
  Loud.Rule = Symbols->intern("R8");
  Loud.Applicable = true;
  Loud.Matched = true;
  Report.addVerdict(Loud);
  EXPECT_TRUE(Report.anyMatch());
  // A later quiet verdict must not reset the cached bit.
  RuleVerdict Tail;
  Tail.Rule = Symbols->intern("R9");
  Report.addVerdict(Tail);
  EXPECT_TRUE(Report.anyMatch());
}

TEST(ProjectReport, DedupeDropsRepeatedSitesWithinAUnit) {
  ScanSymbols Symbols;
  Violation A{Symbols.intern("R8"), Symbols.intern("Cipher"),
              Symbols.intern("l3"), 0};
  Violation SameSiteAgain = A;
  Violation OtherUnit = A;
  OtherUnit.UnitIndex = 1;
  Violation OtherSite = A;
  OtherSite.Site = Symbols.intern("l9");
  std::vector<Violation> Violations{A, SameSiteAgain, OtherUnit, OtherSite,
                                    SameSiteAgain};
  dedupeViolations(Violations);
  ASSERT_EQ(Violations.size(), 3u);
  // First-occurrence order is preserved.
  EXPECT_EQ(Violations[0].UnitIndex, 0u);
  EXPECT_EQ(Symbols.text(Violations[0].Site), "l3");
  EXPECT_EQ(Violations[1].UnitIndex, 1u);
  EXPECT_EQ(Symbols.text(Violations[2].Site), "l9");
}

TEST(ProjectReport, DuplicateEventsYieldOneViolationPerSite) {
  // Two misuses on one line share a site label ("l1") and collapse to a
  // single reported violation; moving one to its own line splits them.
  AnalysisResult SameLine = analyze(
      "class A { void m() throws Exception { "
      "MessageDigest d = MessageDigest.getInstance(\"MD5\"); "
      "MessageDigest e = MessageDigest.getInstance(\"MD5\"); } }");
  AnalysisResult TwoLines = analyze(
      "class A { void m() throws Exception {\n"
      "MessageDigest d = MessageDigest.getInstance(\"MD5\");\n"
      "MessageDigest e = MessageDigest.getInstance(\"MD5\"); } }");
  CryptoChecker Checker;
  UnitFacts Merged = UnitFacts::from(SameLine);
  UnitFacts Split = UnitFacts::from(TwoLines);
  ProjectReport MergedReport = Checker.checkProject({Merged});
  ProjectReport SplitReport = Checker.checkProject({Split});
  bool Seen = false;
  for (const RuleVerdict &V : MergedReport.verdicts())
    if (MergedReport.text(V.Rule) == "R1") {
      Seen = true;
      ASSERT_EQ(V.Violations.size(), 1u);
      EXPECT_EQ(MergedReport.text(V.Violations[0].Site), "l1");
    }
  EXPECT_TRUE(Seen);
  for (const RuleVerdict &V : SplitReport.verdicts())
    if (SplitReport.text(V.Rule) == "R1") {
      ASSERT_EQ(V.Violations.size(), 2u);
      EXPECT_NE(V.Violations[0].Site, V.Violations[1].Site);
    }
}
