//===- examples/tls_generality.cpp - The approach on a different API -------===//
//
// Part of the DiffCode project, a reproduction of "Inferring Crypto API
// Rules from Code Changes" (PLDI'18).
//
//===----------------------------------------------------------------------===//
//
// The paper's closing remark: "while we focus on crypto APIs, the
// approach is general and can be applied to other types of APIs." This
// example swaps in the JSSE/TLS API model and runs the identical
// pipeline — abstraction, usage-DAG diffing, rule suggestion, checking —
// on a realistic TLS hardening commit (SSLv3 -> TLSv1.2).
//
//===----------------------------------------------------------------------===//

#include "apimodel/TlsApiModel.h"
#include "core/DiffCode.h"
#include "rules/CryptoChecker.h"
#include "rules/RuleSuggestion.h"
#include "rules/TlsRules.h"

#include <cstdio>

using namespace diffcode;

namespace {

const char *OldVersion = R"java(
class SecureChannel {
    public SSLSocketFactory open(KeyManager[] kms, TrustManager[] tms)
            throws Exception {
        SSLContext ctx = SSLContext.getInstance("SSLv3");
        SecureRandom rng = new SecureRandom();
        ctx.init(kms, tms, rng);
        return ctx.getSocketFactory();
    }
}
)java";

const char *NewVersion = R"java(
class SecureChannel {
    public SSLSocketFactory open(KeyManager[] kms, TrustManager[] tms)
            throws Exception {
        SSLContext ctx = SSLContext.getInstance("TLSv1.2");
        SecureRandom rng = new SecureRandom();
        ctx.init(kms, tms, rng);
        return ctx.getSocketFactory();
    }
}
)java";

} // namespace

int main() {
  // Everything below is the standard pipeline — only the API model and
  // the rule set change.
  const apimodel::CryptoApiModel &TlsApi = apimodel::javaTlsApi();
  core::DiffCode System(TlsApi);

  std::printf("== generality demo: the DiffCode pipeline on the JSSE/TLS "
              "API ==\n\n");

  corpus::CodeChange Change;
  Change.ProjectName = "tls-demo";
  Change.OldCode = OldVersion;
  Change.NewCode = NewVersion;

  std::printf("usage change for SSLContext (SSLv3 -> TLSv1.2 commit):\n");
  std::vector<usage::UsageChange> Changes =
      System.usageChangesFor(Change, "SSLContext");
  for (const usage::UsageChange &C : Changes)
    std::printf("%s", C.str().c_str());
  if (Changes.empty()) {
    std::printf("no usage change derived\n");
    return 1;
  }

  if (auto Suggested = rules::suggestRule(Changes.front(), "tls-suggested"))
    std::printf("\nauto-suggested rule:\n  %s\n",
                rules::describeRule(*Suggested).c_str());

  // Check both versions with the curated TLS rule set.
  rules::CryptoChecker Checker(rules::tlsRules());
  analysis::AnalysisResult OldResult = System.analyzeSourceChecked(OldVersion).Result;
  analysis::AnalysisResult NewResult = System.analyzeSourceChecked(NewVersion).Result;
  rules::UnitFacts OldFacts = rules::UnitFacts::from(OldResult);
  rules::UnitFacts NewFacts = rules::UnitFacts::from(NewResult);

  std::printf("\nCryptoChecker with the TLS rule set:\n");
  rules::ProjectReport OldReport = Checker.checkProject({OldFacts});
  for (const rules::RuleVerdict &V : OldReport.verdicts())
    std::printf("  old version, %s: %s\n", OldReport.text(V.Rule).c_str(),
                V.Matched ? "VIOLATED" : "ok");
  rules::ProjectReport NewReport = Checker.checkProject({NewFacts});
  for (const rules::RuleVerdict &V : NewReport.verdicts())
    std::printf("  new version, %s: %s\n", NewReport.text(V.Rule).c_str(),
                V.Matched ? "VIOLATED" : "ok");
  return 0;
}
