file(REMOVE_RECURSE
  "CMakeFiles/mine_and_cluster.dir/mine_and_cluster.cpp.o"
  "CMakeFiles/mine_and_cluster.dir/mine_and_cluster.cpp.o.d"
  "mine_and_cluster"
  "mine_and_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mine_and_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
