//===- tests/test_supervised_exec.cpp - Supervised execution differential -===//
//
// The byte-identity contract of the supervised engine: with no faults
// firing, a report produced by forked worker subprocesses is
// byte-identical to the in-process engine's, at every worker count and
// batch size. Also covers the supervision bookkeeping (SupervisionStats
// on a clean run), the DiffCode::run dispatch, edge cases (empty
// corpus, more workers than units), and the CLI surface (--workers,
// --fail-on-degraded).
//
//===----------------------------------------------------------------------===//

#include "core/DiffCode.h"
#include "core/ReportWriter.h"
#include "corpus/CorpusGenerator.h"
#include "corpus/Miner.h"
#include "exec/Supervisor.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <sys/wait.h>
#include <vector>

using namespace diffcode;
using namespace diffcode::core;

namespace {

const apimodel::CryptoApiModel &api() {
  return apimodel::CryptoApiModel::javaCryptoApi();
}

/// Shared corpus + in-process baseline, built once for the whole suite.
struct Env {
  corpus::Corpus C;
  std::vector<const corpus::CodeChange *> Mined;
  CorpusReport Baseline;
  std::string BaselineJson;
};

const Env &env() {
  static Env *E = [] {
    Env *Out = new Env;
    corpus::CorpusOptions Opts;
    Opts.Seed = 61;
    Opts.NumProjects = 8;
    Out->C = corpus::CorpusGenerator(Opts).generate();
    corpus::Miner M(api());
    Out->Mined = M.mine(Out->C);
    Out->Baseline = DiffCode(api()).run(
        {.Changes = Out->Mined, .TargetClasses = api().targetClasses()});
    Out->BaselineJson = corpusReportToJson(Out->Baseline);
    return Out;
  }();
  return *E;
}

CorpusReport runSupervised(unsigned Workers, std::size_t BatchSize) {
  ExecutionPolicy Exec;
  Exec.Mode = ExecutionMode::Supervised;
  Exec.Workers = Workers;
  Exec.BatchSize = BatchSize;
  DiffCode System(api());
  return System.run({.Changes = env().Mined,
                     .TargetClasses = api().targetClasses(),
                     .Exec = Exec});
}

#ifdef DIFFCODE_CLI_PATH
std::string readWholeFile(const std::string &Path) {
  std::ifstream In(Path);
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  return Buffer.str();
}

int runCli(const std::string &Args, const std::string &StdoutFile) {
  std::string Cmd = std::string(DIFFCODE_CLI_PATH) + " " + Args + " > " +
                    StdoutFile + " 2>/dev/null";
  int Rc = std::system(Cmd.c_str());
  return WIFEXITED(Rc) ? WEXITSTATUS(Rc) : -1;
}
#endif

} // namespace

TEST(SupervisedExec, ByteIdenticalAcrossWorkersAndBatchSizes) {
  for (unsigned Workers : {1u, 2u, 4u})
    for (std::size_t Batch : {std::size_t(1), std::size_t(3), std::size_t(8)})
      EXPECT_EQ(env().BaselineJson,
                corpusReportToJson(runSupervised(Workers, Batch)))
          << Workers << " workers, batch " << Batch;
}

TEST(SupervisedExec, CleanRunBookkeeping) {
  exec::SupervisionStats Stats;
  ExecutionPolicy Exec;
  Exec.Mode = ExecutionMode::Supervised;
  Exec.Workers = 2;
  Exec.BatchSize = 4;
  DiffCode System(api());
  std::vector<ChangeRecord> Records = exec::superviseChanges(
      System,
      {.Changes = env().Mined, .TargetClasses = api().targetClasses(),
       .Exec = Exec},
      &Stats);

  ASSERT_EQ(Records.size(), env().Mined.size());
  // One unit per contiguous batch; a clean run never retries, bisects,
  // restarts, kills, falls back inline, or stamps a terminal status.
  std::uint64_t N = env().Mined.size();
  EXPECT_EQ(Stats.UnitsDispatched, (N + 3) / 4);
  EXPECT_EQ(Stats.Retries, 0u);
  EXPECT_EQ(Stats.Bisections, 0u);
  EXPECT_EQ(Stats.WorkerRestarts, 0u);
  EXPECT_EQ(Stats.DeadlineKills, 0u);
  EXPECT_EQ(Stats.InlineFallbacks, 0u);
  for (std::size_t I = 0; I < NumChangeStatuses; ++I)
    EXPECT_EQ(Stats.TerminalStatus[I], 0u) << changeStatusName(
        static_cast<ChangeStatus>(I));
  // Results did flow over the wire.
  EXPECT_GE(Stats.FramesReceived, N);
  EXPECT_GT(Stats.BytesReceived, 0u);
}

TEST(SupervisedExec, InProcessModeDispatchesUnchanged) {
  DiffCode System(api());
  CorpusReport R = System.run(
      {.Changes = env().Mined, .TargetClasses = api().targetClasses()});
  EXPECT_EQ(env().BaselineJson, corpusReportToJson(R));
}

TEST(SupervisedExec, EmptyAndOverprovisionedRuns) {
  DiffCode System(api());
  ExecutionPolicy Exec;
  Exec.Mode = ExecutionMode::Supervised;
  Exec.Workers = 4;

  // Empty corpus: no workers needed, report still well-formed.
  exec::SupervisionStats Stats;
  std::vector<ChangeRecord> None = exec::superviseChanges(
      System, {.Changes = {}, .TargetClasses = api().targetClasses(),
               .Exec = Exec},
      &Stats);
  EXPECT_TRUE(None.empty());
  EXPECT_EQ(Stats.UnitsDispatched, 0u);
  EXPECT_EQ(Stats.WorkerRestarts, 0u);

  // Far more workers than units: the pool clamps, the report matches.
  Exec.Workers = 16;
  Exec.BatchSize = 64; // one unit per 64 changes -> 1-2 units total
  CorpusReport R = System.run(
      {.Changes = env().Mined, .TargetClasses = api().targetClasses(),
       .Exec = Exec});
  EXPECT_EQ(env().BaselineJson, corpusReportToJson(R));
}

#ifdef DIFFCODE_CLI_PATH
TEST(SupervisedCli, WorkersFlagIsByteIdentical) {
  std::string Dir = testing::TempDir();
  std::string Corpus = DIFFCODE_SMOKE_CORPUS;
  ASSERT_EQ(runCli("pipeline " + Corpus + " --json", Dir + "/inproc.json"), 0);
  ASSERT_EQ(runCli("pipeline " + Corpus + " --workers 2 --json",
                   Dir + "/supervised.json"),
            0);
  std::string InProc = readWholeFile(Dir + "/inproc.json");
  ASSERT_FALSE(InProc.empty());
  EXPECT_EQ(InProc, readWholeFile(Dir + "/supervised.json"));
}

TEST(SupervisedCli, FailOnDegradedThreshold) {
  // The smoke corpus is 1 ok + 1 degraded = 50% non-ok. Above a 10%
  // threshold the run must fail with the distinguished exit code 3;
  // above 60% it is within budget and exits 0. Both runs still print
  // the full report (the tripwire gates the exit code, not the output).
  std::string Dir = testing::TempDir();
  std::string Corpus = DIFFCODE_SMOKE_CORPUS;
  EXPECT_EQ(runCli("pipeline " + Corpus + " --fail-on-degraded 10",
                   Dir + "/strict.txt"),
            3);
  EXPECT_NE(readWholeFile(Dir + "/strict.txt").find("corpus health"),
            std::string::npos);
  EXPECT_EQ(runCli("pipeline " + Corpus + " --fail-on-degraded 60",
                   Dir + "/lenient.txt"),
            0);
  // The tripwire composes with supervised mode.
  EXPECT_EQ(runCli("pipeline " + Corpus + " --workers 2 --fail-on-degraded 10",
                   Dir + "/strict2.txt"),
            3);
  EXPECT_EQ(runCli("pipeline " + Corpus + " --workers 2 --fail-on-degraded 60",
                   Dir + "/lenient2.txt"),
            0);
}
#endif
