# Empty dependencies file for diffcode_apimodel.
# This may be replaced when dependencies are built.
