//===- tests/test_exec_chaos.cpp - Seeded chaos campaign -------------------===//
//
// The supervisor under deliberate process-level abuse: workers that
// crash, hang, OOM-exit, start slowly, or corrupt their result streams
// — each injected deterministically through the seeded fault plan's
// Proc* sites. The campaign asserts three things the robustness story
// stands on:
//
//   * containment: every change keeps its report slot; a misbehaving
//     worker costs one incarnation, never the run;
//   * classification: each failure mode lands on its own ChangeStatus
//     with an actionable detail string;
//   * determinism: fault decisions are pure in (seed, change, site,
//     attempt), so per-status counts and the full report JSON are
//     identical across worker counts, batch sizes, and repeat runs —
//     zero coordinator crashes anywhere.
//
//===----------------------------------------------------------------------===//

#include "core/DiffCode.h"
#include "core/ReportWriter.h"
#include "corpus/CorpusGenerator.h"
#include "corpus/Miner.h"
#include "exec/Supervisor.h"
#include "support/FaultInjection.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

using namespace diffcode;
using namespace diffcode::core;

namespace {

const apimodel::CryptoApiModel &api() {
  return apimodel::CryptoApiModel::javaCryptoApi();
}

/// Shared corpus + clean in-process baseline, built once.
struct Env {
  corpus::Corpus C;
  std::vector<const corpus::CodeChange *> Mined;
  std::string BaselineJson;
};

const Env &env() {
  static Env *E = [] {
    Env *Out = new Env;
    corpus::CorpusOptions Opts;
    Opts.Seed = 61;
    Opts.NumProjects = 8;
    Out->C = corpus::CorpusGenerator(Opts).generate();
    corpus::Miner M(api());
    Out->Mined = M.mine(Out->C);
    Out->BaselineJson = corpusReportToJson(DiffCode(api()).run(
        {.Changes = Out->Mined, .TargetClasses = api().targetClasses()}));
    return Out;
  }();
  return *E;
}

/// A small prefix of the mined corpus — chaos campaigns pay a fork +
/// respawn per injected death, so the suites run on a dozen changes.
std::vector<const corpus::CodeChange *> fewChanges(std::size_t N) {
  const auto &All = env().Mined;
  return {All.begin(), All.begin() + std::min(N, All.size())};
}

struct ChaosRun {
  std::vector<ChangeRecord> Records;
  exec::SupervisionStats Stats;
};

ChaosRun runCampaign(const support::FaultPlan &Plan, ExecutionPolicy Exec,
                     const std::vector<const corpus::CodeChange *> &Changes) {
  PipelineConfig Opts;
  Opts.Faults = Plan;
  DiffCode System(api(), Opts);
  Exec.Mode = ExecutionMode::Supervised;
  ChaosRun Out;
  Out.Records = exec::superviseChanges(
      System,
      {.Changes = Changes, .TargetClasses = api().targetClasses(),
       .Exec = Exec},
      &Out.Stats);
  return Out;
}

support::FaultPlan soloSite(support::FaultSite Site, std::uint64_t Seed) {
  support::FaultPlan Plan;
  Plan.Seed = Seed;
  Plan.Rate = 1.0;
  Plan.SiteMask = support::faultSiteBit(Site);
  return Plan;
}

} // namespace

TEST(Chaos, KilledWorkersBecomeWorkerCrash) {
  // Every attempt of every change raises SIGKILL before processing, so
  // with a zero retry budget each change terminates as WorkerCrash after
  // bisection isolates it. The coordinator survives every death.
  ExecutionPolicy Exec;
  Exec.Workers = 2;
  Exec.BatchSize = 8;
  Exec.MaxRetries = 0;
  auto Changes = fewChanges(12);
  ChaosRun Run = runCampaign(soloSite(support::FaultSite::ProcKill, 7), Exec,
                             Changes);
  ASSERT_EQ(Run.Records.size(), Changes.size());
  for (std::size_t I = 0; I < Run.Records.size(); ++I) {
    const ChangeRecord &R = Run.Records[I];
    EXPECT_EQ(R.Status, ChangeStatus::WorkerCrash) << R.StatusDetail;
    EXPECT_EQ(R.Origin, Changes[I]->origin());
    EXPECT_NE(R.StatusDetail.find("killed by signal"), std::string::npos)
        << R.StatusDetail;
    EXPECT_NE(R.StatusDetail.find("(1 attempts)"), std::string::npos)
        << R.StatusDetail;
    EXPECT_TRUE(R.PerClass.empty());
  }
  EXPECT_EQ(Run.Stats.terminal(ChangeStatus::WorkerCrash), Changes.size());
  EXPECT_GT(Run.Stats.Bisections, 0u); // batches had to be split apart
  EXPECT_GT(Run.Stats.WorkerRestarts, 0u);
  EXPECT_EQ(Run.Stats.DeadlineKills, 0u);
}

TEST(Chaos, OomExitsBecomeWorkerOom) {
  ExecutionPolicy Exec;
  Exec.Workers = 2;
  Exec.BatchSize = 4;
  Exec.MaxRetries = 0;
  auto Changes = fewChanges(8);
  ChaosRun Run = runCampaign(soloSite(support::FaultSite::ProcOomExit, 7),
                             Exec, Changes);
  ASSERT_EQ(Run.Records.size(), Changes.size());
  for (const ChangeRecord &R : Run.Records) {
    EXPECT_EQ(R.Status, ChangeStatus::WorkerOom) << R.StatusDetail;
    EXPECT_NE(R.StatusDetail.find("memory limit"), std::string::npos);
  }
  EXPECT_EQ(Run.Stats.terminal(ChangeStatus::WorkerOom), Changes.size());
}

TEST(Chaos, HangsAreKilledByTheDeadlineWatchdog) {
  ExecutionPolicy Exec;
  Exec.Workers = 2;
  Exec.BatchSize = 1; // singleton units: one hang = one terminal record
  Exec.MaxRetries = 0;
  Exec.UnitDeadlineMs = 200;
  auto Changes = fewChanges(4);
  ChaosRun Run = runCampaign(soloSite(support::FaultSite::ProcHang, 7), Exec,
                             Changes);
  ASSERT_EQ(Run.Records.size(), Changes.size());
  for (const ChangeRecord &R : Run.Records) {
    EXPECT_EQ(R.Status, ChangeStatus::WorkerTimeout) << R.StatusDetail;
    EXPECT_NE(R.StatusDetail.find("deadline of 200 ms exceeded"),
              std::string::npos)
        << R.StatusDetail;
  }
  EXPECT_EQ(Run.Stats.terminal(ChangeStatus::WorkerTimeout), Changes.size());
  EXPECT_EQ(Run.Stats.DeadlineKills, Changes.size());
}

TEST(Chaos, CorruptResultStreamsAreDetected) {
  // Both corruption flavors (checksum flip, mid-frame truncation) must
  // be caught by the frame layer and classified as WorkerCrash with a
  // stream-level diagnostic — never decoded into a bogus record.
  ExecutionPolicy Exec;
  Exec.Workers = 2;
  Exec.BatchSize = 1;
  Exec.MaxRetries = 0;
  auto Changes = fewChanges(8);
  ChaosRun Run = runCampaign(
      soloSite(support::FaultSite::ProcFrameCorrupt, 7), Exec, Changes);
  ASSERT_EQ(Run.Records.size(), Changes.size());
  std::size_t Flipped = 0, Truncated = 0;
  for (const ChangeRecord &R : Run.Records) {
    EXPECT_EQ(R.Status, ChangeStatus::WorkerCrash) << R.StatusDetail;
    if (R.StatusDetail.find("result stream corrupt") != std::string::npos)
      ++Flipped;
    else if (R.StatusDetail.find("truncated result stream") !=
             std::string::npos)
      ++Truncated;
    else
      ADD_FAILURE() << "unexpected detail: " << R.StatusDetail;
  }
  // The flavor is faultMix(index) parity — both occur across 8 changes.
  EXPECT_GT(Flipped, 0u);
  EXPECT_GT(Truncated, 0u);
  EXPECT_EQ(Run.Stats.terminal(ChangeStatus::WorkerCrash), Changes.size());
}

TEST(Chaos, SlowStartIsLatencyOnly) {
  // Delayed handshakes cost time, not correctness: the report is still
  // byte-identical to the clean in-process baseline.
  ExecutionPolicy Exec;
  Exec.Workers = 4;
  Exec.BatchSize = 3;
  PipelineConfig Opts;
  Opts.Faults = soloSite(support::FaultSite::ProcSlowStart, 7);
  DiffCode System(api(), Opts);
  Exec.Mode = ExecutionMode::Supervised;
  CorpusReport R = System.run(
      {.Changes = env().Mined, .TargetClasses = api().targetClasses(),
       .Exec = Exec});
  EXPECT_EQ(env().BaselineJson, corpusReportToJson(R));
}

TEST(Chaos, RetryBudgetRecoversTransientFailures) {
  // Proc sites key on the attempt number, so a change that fails at
  // attempt 0 can deterministically succeed at attempt 1 — that is the
  // scenario the retry budget exists for. At rate 0.5 with retries
  // allowed, some changes must recover to Ok; with the budget at zero,
  // the same campaign strands strictly more changes in terminal states.
  support::FaultPlan Plan;
  Plan.Seed = 21;
  Plan.Rate = 0.5;
  Plan.SiteMask = support::faultSiteBit(support::FaultSite::ProcKill);

  ExecutionPolicy Exec;
  Exec.Workers = 2;
  Exec.BatchSize = 2;
  Exec.MaxRetries = 3;
  Exec.BackoffBaseMs = 1;
  auto Changes = fewChanges(10);
  ChaosRun WithRetries = runCampaign(Plan, Exec, Changes);
  Exec.MaxRetries = 0;
  ChaosRun NoRetries = runCampaign(Plan, Exec, Changes);

  auto CountOk = [](const ChaosRun &Run) {
    std::size_t N = 0;
    for (const ChangeRecord &R : Run.Records)
      N += R.Status == ChangeStatus::Ok;
    return N;
  };
  EXPECT_GT(CountOk(WithRetries), CountOk(NoRetries));
  EXPECT_GT(WithRetries.Stats.Retries, 0u);
}

TEST(Chaos, ObservedCampaignKeepsTelemetryCoherent) {
  // The ProcKill campaign rerun with an observer attached: incarnations
  // die mid-run, yet the stitched trace and the merged worker metrics
  // must stay coherent. Each incarnation gets a fresh pipe and decoder,
  // so a frame from a dead incarnation can never arrive — the
  // stale-incarnation counter existing but staying zero is exactly the
  // invariant this campaign locks down (the wire guard is insurance
  // against a confused sender, not a path honest workers can hit).
  support::FaultPlan Plan;
  Plan.Seed = 21;
  Plan.Rate = 0.5;
  Plan.SiteMask = support::faultSiteBit(support::FaultSite::ProcKill);

  PipelineConfig Opts;
  Opts.Faults = Plan;
  DiffCode System(api(), Opts);
  ExecutionPolicy Exec;
  Exec.Mode = ExecutionMode::Supervised;
  Exec.Workers = 2;
  Exec.BatchSize = 2;
  Exec.MaxRetries = 3;
  Exec.BackoffBaseMs = 1;

  obs::Observer Obs;
  exec::SupervisionStats Stats;
  auto Changes = fewChanges(10);
  std::vector<ChangeRecord> Records = exec::superviseChanges(
      System,
      {.Changes = Changes, .TargetClasses = api().targetClasses(),
       .Metrics = &Obs, .Exec = Exec},
      &Stats);
  ASSERT_EQ(Records.size(), Changes.size());

  std::size_t Ok = 0;
  for (const ChangeRecord &R : Records)
    Ok += R.Status == ChangeStatus::Ok;
  ASSERT_GT(Ok, 0u); // retries recovered some changes (seed-stable)

  // Telemetry flowed from surviving incarnations; none of it was stale.
  EXPECT_GT(Stats.TelemetryFrames, 0u);
  EXPECT_EQ(Stats.StaleTelemetry, 0u);

  // Every committed change's span was stitched into the coordinator's
  // trace: a unit's telemetry frame precedes its UnitDone, so a span can
  // only be missing if the unit never committed.
  std::string Json = Obs.Trace.traceJson();
  std::size_t Spans = 0;
  for (std::size_t P = Json.find("\"name\":\"processChange\"");
       P != std::string::npos;
       P = Json.find("\"name\":\"processChange\"", P + 1))
    ++Spans;
  EXPECT_GE(Spans, Ok);

  // The worker registries were merged under the exec.worker.* namespace
  // and the transport counters made it into the summary.
  std::string Metrics = Obs.summarize().Metrics.json();
  EXPECT_NE(Metrics.find("\"exec.worker."), std::string::npos);
  EXPECT_NE(Metrics.find("\"exec.telemetry_frames\""), std::string::npos);
  EXPECT_NE(Metrics.find("\"exec.telemetry_stale\""), std::string::npos);
}

TEST(Chaos, MixedCampaignIsCompleteAndDeterministic) {
  // All five process-level sites armed at a moderate rate: the report
  // must stay complete (every change resolved, zero "supervision
  // aborted" records) and byte-identical across worker counts, batch
  // sizes, and a repeat run — the determinism bar that makes chaos
  // results diffable in CI.
  support::FaultPlan Plan;
  Plan.Seed = 13;
  Plan.Rate = 0.3;
  Plan.SiteMask = support::faultSiteBit(support::FaultSite::ProcKill) |
                  support::faultSiteBit(support::FaultSite::ProcHang) |
                  support::faultSiteBit(support::FaultSite::ProcSlowStart) |
                  support::faultSiteBit(support::FaultSite::ProcFrameCorrupt) |
                  support::faultSiteBit(support::FaultSite::ProcOomExit);

  auto Changes = fewChanges(10);
  auto Campaign = [&](unsigned Workers, std::size_t Batch) {
    ExecutionPolicy Exec;
    Exec.Workers = Workers;
    Exec.BatchSize = Batch;
    Exec.MaxRetries = 1;
    Exec.BackoffBaseMs = 1;
    Exec.UnitDeadlineMs = 200;
    return runCampaign(Plan, Exec, Changes);
  };

  ChaosRun Reference = Campaign(1, 2);
  ASSERT_EQ(Reference.Records.size(), Changes.size());
  std::string ReferenceJson;
  bool SawTerminal = false;
  for (std::size_t I = 0; I < Reference.Records.size(); ++I) {
    const ChangeRecord &R = Reference.Records[I];
    EXPECT_EQ(R.Origin, Changes[I]->origin());
    EXPECT_EQ(R.StatusDetail.find("supervision aborted"), std::string::npos);
    SawTerminal = SawTerminal || R.Status == ChangeStatus::WorkerCrash ||
                  R.Status == ChangeStatus::WorkerTimeout ||
                  R.Status == ChangeStatus::WorkerOom;
    ReferenceJson += changeRecordToJson(R);
    ReferenceJson += '\n';
  }
  EXPECT_TRUE(SawTerminal); // the campaign actually did damage

  for (auto [Workers, Batch] :
       {std::pair<unsigned, std::size_t>{2, 2}, {4, 2}, {2, 5}, {1, 2}}) {
    ChaosRun Run = Campaign(Workers, Batch);
    ASSERT_EQ(Run.Records.size(), Changes.size());
    std::string Json;
    for (const ChangeRecord &R : Run.Records) {
      Json += changeRecordToJson(R);
      Json += '\n';
    }
    EXPECT_EQ(ReferenceJson, Json)
        << Workers << " workers, batch " << Batch;
  }
}
