//===- core/ReportWriter.cpp -----------------------------------------------===//

#include "core/ReportWriter.h"

#include "support/JsonWriter.h"

using namespace diffcode;
using namespace diffcode::core;

namespace {

void emitPaths(JsonWriter &W, const char *Key, const usage::UsageChange &Change,
               const std::vector<support::PathId> &Paths) {
  // Ids resolve to strings only here, at the emission boundary;
  // Interner::pathString renders byte-identically to the old
  // pathToString over materialised paths.
  W.key(Key).beginArray();
  for (support::PathId Id : Paths)
    W.value(Change.Table->pathString(Id));
  W.endArray();
}

void emitUsageChange(JsonWriter &W, const usage::UsageChange &Change) {
  W.beginObject();
  W.key("type").value(Change.TypeName);
  W.key("origin").value(Change.Origin);
  emitPaths(W, "removed", Change, Change.Removed);
  emitPaths(W, "added", Change, Change.Added);
  W.endObject();
}

void emitChangeRecord(JsonWriter &W, const ChangeRecord &Record) {
  W.beginObject();
  W.key("origin").value(Record.Origin);
  W.key("kind").value(Record.GroundTruthKind);
  W.key("status").value(changeStatusName(Record.Status));
  W.key("detail").value(Record.StatusDetail);
  W.key("steps").value(static_cast<std::uint64_t>(Record.StepsUsed));
  W.key("perClass").beginArray();
  for (const auto &[Target, Changes] : Record.PerClass) {
    W.beginObject();
    W.key("target").value(Target);
    W.key("changes").beginArray();
    for (const usage::UsageChange &Change : Changes)
      emitUsageChange(W, Change);
    W.endArray();
    W.endObject();
  }
  W.endArray();
  W.key("classification").beginArray();
  for (const auto &[RuleId, Class] : Record.Classification) {
    W.beginObject();
    W.key("rule").value(RuleId);
    W.key("class").value(rules::changeClassName(Class));
    W.endObject();
  }
  W.endArray();
  W.endObject();
}

void emitHealth(JsonWriter &W, const CorpusHealth &Health) {
  W.beginObject();
  W.key("statuses").beginObject();
  for (std::size_t I = 0; I < NumChangeStatuses; ++I)
    W.key(changeStatusName(static_cast<ChangeStatus>(I)))
        .value(static_cast<std::uint64_t>(Health.StatusCounts[I]));
  W.endObject();
  W.key("clusteringFailures")
      .value(static_cast<std::uint64_t>(Health.ClusteringFailures));
  W.key("worstOffenders").beginArray();
  for (const WorstOffender &O : Health.WorstOffenders) {
    W.beginObject();
    W.key("origin").value(O.Origin);
    W.key("steps").value(O.Steps);
    // Deliberately no wall time here: the "health" block is part of the
    // byte-deterministic report surface; per-offender wall time lives in
    // the PerRun "metrics" block and the CLI table.
    W.key("status").value(changeStatusName(O.Status));
    W.endObject();
  }
  W.endArray();
  W.endObject();
}

/// The "metrics" block: the run summary plus per-offender wall times
/// (PerRun data whose only JSON home is this block).
void emitMetrics(JsonWriter &W, const CorpusReport &Report) {
  W.beginObject();
  W.key("counters").rawValue(Report.Metrics.Metrics.json());
  W.key("stages").beginArray();
  for (const obs::Tracer::StageTotal &S : Report.Metrics.Stages) {
    W.beginObject();
    W.key("name").value(S.Name);
    W.key("spans").value(S.Spans);
    W.key("totalNs").value(S.TotalNs);
    W.endObject();
  }
  W.endArray();
  W.key("worstOffenders").beginArray();
  for (const WorstOffender &O : Report.Health.WorstOffenders) {
    W.beginObject();
    W.key("origin").value(O.Origin);
    W.key("wallNs").value(O.WallNanos);
    W.endObject();
  }
  W.endArray();
  W.endObject();
}

} // namespace

std::string diffcode::core::usageChangeToJson(const usage::UsageChange &Change) {
  JsonWriter W;
  emitUsageChange(W, Change);
  return W.take();
}

std::string diffcode::core::changeRecordToJson(const ChangeRecord &Record) {
  JsonWriter W;
  emitChangeRecord(W, Record);
  return W.take();
}

std::string diffcode::core::corpusReportToJson(const CorpusReport &Report) {
  JsonWriter W;
  W.beginObject();
  W.key("classes").beginArray();
  for (const ClassReport &Class : Report.PerClass) {
    W.beginObject();
    W.key("target").value(Class.TargetClass);
    W.key("total").value(Class.Filtered.Total);
    W.key("afterFsame").value(Class.Filtered.AfterSame);
    W.key("afterFadd").value(Class.Filtered.AfterAdd);
    W.key("afterFrem").value(Class.Filtered.AfterRem);
    W.key("afterFdup").value(Class.Filtered.AfterDup);
    W.key("kept").beginArray();
    for (const usage::UsageChange &Change : Class.Filtered.Kept)
      emitUsageChange(W, Change);
    W.endArray();
    if (!Class.ClusteringError.empty())
      W.key("clusteringError").value(Class.ClusteringError);
    // Only present when the sharded engine ran, so reports from
    // unsharded runs stay byte-identical to earlier releases.
    if (Class.Sharding.NumShards > 0) {
      W.key("sharding").beginObject();
      W.key("shards").value(
          static_cast<std::uint64_t>(Class.Sharding.NumShards));
      W.key("largestShard")
          .value(static_cast<std::uint64_t>(Class.Sharding.LargestShard));
      W.key("representatives")
          .value(static_cast<std::uint64_t>(Class.Sharding.Representatives));
      W.key("peakMatrixBytes")
          .value(static_cast<std::uint64_t>(Class.Sharding.PeakMatrixBytes));
      W.endObject();
    }
    W.endObject();
  }
  W.endArray();
  W.key("changes").value(Report.Changes.size());
  W.key("health");
  emitHealth(W, Report.Health);
  // Last key, and only for observed runs: a metrics-off report is a
  // byte-for-byte prefix of the metrics-on report of the same corpus
  // (tests/test_metrics_differential.cpp relies on this).
  if (!Report.Metrics.empty()) {
    W.key("metrics");
    emitMetrics(W, Report);
  }
  W.endObject();
  return W.take();
}

std::string
diffcode::core::projectReportToJson(const rules::ProjectReport &Report) {
  JsonWriter W;
  W.beginObject();
  W.key("rules").beginArray();
  for (const rules::RuleVerdict &Verdict : Report.verdicts()) {
    W.beginObject();
    W.key("id").value(Report.text(Verdict.Rule));
    W.key("applicable").value(Verdict.Applicable);
    W.key("matched").value(Verdict.Matched);
    // Only refined runs can suppress; the key's absence keeps the
    // refine-off report byte-identical to the pre-refinement shape.
    if (Verdict.Suppressed > 0)
      W.key("suppressed").value(static_cast<std::uint64_t>(Verdict.Suppressed));
    W.key("violations").beginArray();
    for (const rules::Violation &V : Verdict.Violations) {
      W.beginObject();
      W.key("type").value(Report.text(V.Type));
      W.key("site").value(Report.text(V.Site));
      W.key("unit").value(static_cast<std::uint64_t>(V.UnitIndex));
      W.endObject();
    }
    W.endArray();
    W.endObject();
  }
  W.endArray();
  W.key("anyMatch").value(Report.anyMatch());
  W.endObject();
  return W.take();
}
