//===- bench/micro_scan.cpp - Streaming scanner vs the serial checker -----===//
//
// Part of the DiffCode project, a reproduction of "Inferring Crypto API
// Rules from Code Changes" (PLDI'18).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The rule-scanner pipeline (scan/Scanner.h) vs the retained serial
/// CryptoChecker loop, at 5x the Fig-10 corpus. The serial reference is
/// exactly bench/fig10_rule_violations.cpp's shape: per project, analyze
/// every HEAD file through the facade, build UnitFacts, run
/// CryptoChecker::checkProject.
///
/// The throughput gate measures the steady-state service scenario
/// (micro_incremental's shape, warm-up untimed): a warm scanner
/// re-answering a rule query over an already-digested corpus — every
/// unit a content-hash cache hit, only compiled-rule evaluation left —
/// against the batch loop, which re-parses and re-interprets every unit
/// on every invocation because CryptoChecker keeps nothing. That
/// re-digestion is the cost the scanner's cache amortizes away; a cold
/// single-thread scan is also timed and reported for reference (it pays
/// the same frontend cost and lands near 1x on a duplicate-free corpus).
///
/// Self-verifying:
///
///   * byte-identity: the scanner's report (refinement off), serialized
///     batch-style AND streamed through ScanReportWriter, equals a
///     reference ScanReport composed from the serial checker's outputs,
///     byte for byte, at 1, 2, and 8 threads;
///   * throughput: a warm 1-thread scan is at least 3x faster than the
///     serial loop (min-of-N both sides; the ISSUE acceptance bar);
///   * metrics: an observed scan's snapshot carries all four per-rule
///     counters for every rule in the set;
///   * refinement: with --refine semantics on, each verdict's violations
///     are a subset of the unrefined ones and Suppressed accounts for
///     the difference exactly.
///
///   micro_scan [projects] [seed] [out.json]   (defaults: 600 42
///                                             BENCH_scan.json)
///
//===----------------------------------------------------------------------===//

#include "core/DiffCode.h"
#include "corpus/CorpusGenerator.h"
#include "rules/BuiltinRules.h"
#include "rules/CryptoChecker.h"
#include "scan/ScanReportWriter.h"
#include "scan/Scanner.h"
#include "support/JsonWriter.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace diffcode;

namespace {

constexpr double SpeedupBar = 3.0;
constexpr unsigned Reps = 3;

const apimodel::CryptoApiModel &api() {
  return apimodel::CryptoApiModel::javaCryptoApi();
}

std::uint64_t nanosSince(std::chrono::steady_clock::time_point Start) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - Start)
          .count());
}

/// The serial baseline: fig10's per-project loop, composed into the same
/// ScanReport shape the scanner emits so the two serialize comparably.
scan::ScanReport serialReference(const corpus::Corpus &C,
                                 std::uint64_t *WallNs) {
  core::DiffCode System(api());
  rules::CryptoChecker Checker;

  scan::ScanReport Report;
  Report.Symbols = Checker.symbols();
  auto Start = std::chrono::steady_clock::now();
  for (const corpus::Project &P : C.Projects) {
    scan::ProjectScanRecord Rec;
    Rec.Project = P.Name;
    Rec.Units = static_cast<unsigned>(P.Files.size());
    // UnitFacts borrow the AnalysisResult's object table, so the results
    // must outlive checkProject (fig10's exact two-phase shape).
    std::vector<analysis::AnalysisResult> Results;
    for (const corpus::ProjectFile &File : P.Files) {
      core::DiffCode::SourceAnalysis SA = System.analyzeSourceChecked(File.Code);
      if (SA.Status > Rec.Status) {
        Rec.Status = SA.Status;
        Rec.Detail = std::move(SA.Detail);
      }
      Results.push_back(std::move(SA.Result));
    }
    std::vector<rules::UnitFacts> Units;
    for (const analysis::AnalysisResult &Result : Results)
      Units.push_back(rules::UnitFacts::from(Result));
    Rec.Report = Checker.checkProject(Units, P.Meta);
    Report.Projects.push_back(std::move(Rec));
  }
  if (WallNs)
    *WallNs = nanosSince(Start);

  for (const rules::Rule &R : Checker.rules())
    Report.Rules.push_back({Checker.symbols()->intern(R.Id), 0, 0, 0, 0});
  for (const scan::ProjectScanRecord &Rec : Report.Projects) {
    ++Report.StatusCounts[static_cast<unsigned>(Rec.Status)];
    if (Rec.Report.anyMatch())
      ++Report.ProjectsWithViolation;
    const std::vector<rules::RuleVerdict> &Verdicts = Rec.Report.verdicts();
    for (std::size_t J = 0; J < Verdicts.size(); ++J) {
      scan::RuleTotal &T = Report.Rules[J];
      T.Applicable += Verdicts[J].Applicable ? 1 : 0;
      T.Matched += Verdicts[J].Matched ? 1 : 0;
      T.Violations += Verdicts[J].Violations.size();
      T.Suppressed += Verdicts[J].Suppressed;
    }
  }
  return Report;
}

scan::ScanRequest requestOver(const corpus::Corpus &C, bool Refine) {
  scan::ScanRequest Request;
  for (const corpus::Project &P : C.Projects)
    Request.Projects.push_back(&P);
  Request.Refine = Refine;
  return Request;
}

} // namespace

int main(int argc, char **argv) {
  unsigned Projects = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 600;
  std::uint64_t Seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 42;
  const char *OutPath = argc > 3 ? argv[3] : "BENCH_scan.json";

  corpus::CorpusOptions Opts;
  Opts.NumProjects = Projects;
  Opts.Seed = Seed;
  corpus::Corpus C = corpus::CorpusGenerator(Opts).generate();
  std::size_t TotalUnits = 0;
  for (const corpus::Project &P : C.Projects)
    TotalUnits += P.Files.size();
  std::fprintf(stderr,
               "scan bench: %zu synthetic projects, %zu HEAD units "
               "(seed %llu)\n",
               C.Projects.size(), TotalUnits,
               static_cast<unsigned long long>(Seed));

  //===--------------------------------------------------------------------===//
  // Byte-identity: serial reference vs scanner, batch and streamed,
  // at 1 / 2 / 8 threads (refinement off)
  //===--------------------------------------------------------------------===//

  scan::ScanReport Reference = serialReference(C, nullptr);
  std::string ReferenceJson = scan::scanReportToJson(Reference);

  bool ByteIdentical = !ReferenceJson.empty();
  for (unsigned Threads : {1u, 2u, 8u}) {
    scan::ScanConfig Config;
    Config.Threads = Threads;
    scan::Scanner Scanner(api(), Config);
    std::ostringstream Streamed;
    scan::ScanReportWriter Writer(Streamed);
    scan::ScanReport Report =
        Scanner.scan(requestOver(C, /*Refine=*/false), &Writer);
    Writer.finish(Report);
    bool Ok = Streamed.str() == ReferenceJson &&
              scan::scanReportToJson(Report) == ReferenceJson;
    if (!Ok)
      std::fprintf(stderr, "FAIL: %u-thread scan diverges from the serial "
                           "reference\n",
                   Threads);
    ByteIdentical = ByteIdentical && Ok;
  }

  //===--------------------------------------------------------------------===//
  // Throughput: warm 1-thread scanner vs the serial loop, min-of-N
  //===--------------------------------------------------------------------===//

  std::uint64_t SerialWallNs = ~std::uint64_t(0);
  std::uint64_t ColdWallNs = ~std::uint64_t(0);
  std::uint64_t WarmWallNs = ~std::uint64_t(0);
  std::size_t Sink = 0;
  scan::Scanner Warm(api(), scan::ScanConfig());
  Sink += Warm.scan(requestOver(C, false)).Projects.size(); // warm-up, untimed
  for (unsigned Rep = 0; Rep < Reps; ++Rep) {
    std::uint64_t Wall = 0;
    Sink += serialReference(C, &Wall).Projects.size();
    if (Wall < SerialWallNs)
      SerialWallNs = Wall;

    scan::Scanner Cold(api(), scan::ScanConfig()); // fresh, empty cache
    auto Start = std::chrono::steady_clock::now();
    Sink += Cold.scan(requestOver(C, false)).Projects.size();
    Wall = nanosSince(Start);
    if (Wall < ColdWallNs)
      ColdWallNs = Wall;

    Start = std::chrono::steady_clock::now();
    Sink += Warm.scan(requestOver(C, false)).Projects.size();
    Wall = nanosSince(Start);
    if (Wall < WarmWallNs)
      WarmWallNs = Wall;
  }
  double Speedup =
      static_cast<double>(SerialWallNs) / static_cast<double>(WarmWallNs);
  double ColdRatio =
      static_cast<double>(SerialWallNs) / static_cast<double>(ColdWallNs);
  bool SpeedupOk = Speedup >= SpeedupBar;
  std::fprintf(stderr,
               "  serial checker %10.2f ms (re-digests every unit)\n"
               "  cold scan x1   %10.2f ms (%.2fx, reference)\n"
               "  warm scan x1   %10.2f ms\n"
               "  speedup        %10.2fx (bar %.0fx)\n",
               SerialWallNs / 1e6, ColdWallNs / 1e6, ColdRatio,
               WarmWallNs / 1e6, Speedup, SpeedupBar);

  //===--------------------------------------------------------------------===//
  // Per-rule metrics in the observed snapshot
  //===--------------------------------------------------------------------===//

  obs::Observer Obs;
  scan::ScanConfig Observed;
  Observed.Metrics = &Obs;
  scan::Scanner ObservedScanner(api(), Observed);
  scan::ScanReport ObservedReport =
      ObservedScanner.scan(requestOver(C, false));
  std::string Snapshot = ObservedReport.Metrics.json();
  bool MetricsOk = !ObservedReport.Metrics.empty();
  for (const rules::Rule &R : rules::elicitedRules())
    for (const char *Kind :
         {".applicable", ".matched", ".violations", ".suppressed"})
      MetricsOk = MetricsOk && Snapshot.find("scan.rule." + R.Id + Kind) !=
                                   std::string::npos;
  if (!MetricsOk)
    std::fprintf(stderr, "FAIL: per-rule counters missing from the observed "
                         "snapshot\n");

  //===--------------------------------------------------------------------===//
  // Refinement: violations shrink, never grow, and Suppressed accounts
  //===--------------------------------------------------------------------===//

  scan::Scanner Refiner(api(), scan::ScanConfig());
  scan::ScanReport Plain = Refiner.scan(requestOver(C, false));
  scan::ScanReport Refined = Refiner.scan(requestOver(C, true));
  bool RefineOk = Plain.Projects.size() == Refined.Projects.size();
  std::uint64_t SuppressedTotal = 0;
  for (std::size_t I = 0; RefineOk && I < Plain.Projects.size(); ++I) {
    const auto &Before = Plain.Projects[I].Report.verdicts();
    const auto &After = Refined.Projects[I].Report.verdicts();
    RefineOk = Before.size() == After.size();
    for (std::size_t J = 0; RefineOk && J < Before.size(); ++J) {
      const rules::RuleVerdict &B = Before[J], &A = After[J];
      SuppressedTotal += A.Suppressed;
      RefineOk = A.Applicable == B.Applicable &&
                 A.Violations.size() + A.Suppressed == B.Violations.size() &&
                 (A.Matched || !A.Violations.size());
      // Subset check: every surviving violation existed unrefined.
      for (const rules::Violation &V : A.Violations) {
        bool Found = false;
        for (const rules::Violation &U : B.Violations)
          Found = Found || (U.Type == V.Type && U.Site == V.Site &&
                            U.UnitIndex == V.UnitIndex);
        RefineOk = RefineOk && Found;
      }
    }
  }
  if (!RefineOk)
    std::fprintf(stderr, "FAIL: refinement broke the subset contract\n");

  //===--------------------------------------------------------------------===//
  // Report
  //===--------------------------------------------------------------------===//

  JsonWriter W;
  W.beginObject();
  W.key("bench").value("micro_scan");
  W.key("projects").value(static_cast<std::uint64_t>(C.Projects.size()));
  W.key("units").value(static_cast<std::uint64_t>(TotalUnits));
  W.key("seed").value(Seed);
  W.key("reps").value(static_cast<std::uint64_t>(Reps));
  W.key("serial_wall_ns_min").value(SerialWallNs);
  W.key("cold_scan_wall_ns_min").value(ColdWallNs);
  W.key("warm_scan_wall_ns_min").value(WarmWallNs);
  W.key("cold_ratio").value(ColdRatio);
  W.key("speedup").value(Speedup);
  W.key("speedup_bar").value(SpeedupBar);
  W.key("violating").value(
      static_cast<std::uint64_t>(Reference.ProjectsWithViolation));
  W.key("suppressed_refined").value(SuppressedTotal);
  W.key("byte_identical").value(ByteIdentical);
  W.key("metrics_ok").value(MetricsOk);
  W.key("refine_ok").value(RefineOk);
  bool Pass = ByteIdentical && SpeedupOk && MetricsOk && RefineOk && Sink > 0;
  W.key("pass").value(Pass);
  W.endObject();

  std::string Json = W.take();
  std::printf("%s\n", Json.c_str());
  std::ofstream Out(OutPath);
  if (Out)
    Out << Json << "\n";
  else
    std::fprintf(stderr, "warning: cannot write %s\n", OutPath);

  if (!SpeedupOk)
    std::fprintf(stderr, "FAIL: scan speedup %.2fx below %.0fx bar\n", Speedup,
                 SpeedupBar);
  std::fprintf(stderr, "  %s\n", Pass ? "PASS" : "FAIL");
  return Pass ? 0 : 1;
}
