//===- analysis/AbstractValue.cpp ------------------------------------------===//

#include "analysis/AbstractValue.h"

#include <cassert>

using namespace diffcode::analysis;

AbstractValue AbstractValue::unknownConst() {
  AbstractValue V;
  V.Kind = AVKind::UnknownConst;
  return V;
}

AbstractValue AbstractValue::null() {
  AbstractValue V;
  V.Kind = AVKind::Null;
  return V;
}

AbstractValue AbstractValue::intConst(std::int64_t Value, std::string Symbol) {
  AbstractValue V;
  V.Kind = AVKind::IntConst;
  V.IntValue = Value;
  V.Symbol = std::move(Symbol);
  return V;
}

AbstractValue AbstractValue::intTop() {
  AbstractValue V;
  V.Kind = AVKind::IntTop;
  return V;
}

AbstractValue
AbstractValue::intArrayConst(std::vector<std::int64_t> Elements) {
  AbstractValue V;
  V.Kind = AVKind::IntArrayConst;
  V.IntElems = std::move(Elements);
  return V;
}

AbstractValue AbstractValue::intArrayTop() {
  AbstractValue V;
  V.Kind = AVKind::IntArrayTop;
  return V;
}

AbstractValue AbstractValue::strConst(std::string Value) {
  AbstractValue V;
  V.Kind = AVKind::StrConst;
  V.StrValue = std::move(Value);
  return V;
}

AbstractValue AbstractValue::strTop() {
  AbstractValue V;
  V.Kind = AVKind::StrTop;
  return V;
}

AbstractValue
AbstractValue::strArrayConst(std::vector<std::string> Elements) {
  AbstractValue V;
  V.Kind = AVKind::StrArrayConst;
  V.StrElems = std::move(Elements);
  return V;
}

AbstractValue AbstractValue::strArrayTop() {
  AbstractValue V;
  V.Kind = AVKind::StrArrayTop;
  return V;
}

AbstractValue AbstractValue::byteConst() {
  AbstractValue V;
  V.Kind = AVKind::ByteConst;
  return V;
}

AbstractValue AbstractValue::byteTop() {
  AbstractValue V;
  V.Kind = AVKind::ByteTop;
  return V;
}

AbstractValue AbstractValue::byteArrayConst() {
  AbstractValue V;
  V.Kind = AVKind::ByteArrayConst;
  return V;
}

AbstractValue AbstractValue::byteArrayTop() {
  AbstractValue V;
  V.Kind = AVKind::ByteArrayTop;
  return V;
}

AbstractValue AbstractValue::object(unsigned Id, std::string TypeName) {
  AbstractValue V;
  V.Kind = AVKind::Object;
  V.ObjectId = Id;
  V.TypeName = std::move(TypeName);
  return V;
}

AbstractValue AbstractValue::topObject(std::string TypeName) {
  AbstractValue V;
  V.Kind = AVKind::TopObject;
  V.TypeName = std::move(TypeName);
  return V;
}

bool AbstractValue::isConstant() const {
  switch (Kind) {
  case AVKind::UnknownConst:
  case AVKind::Null:
  case AVKind::IntConst:
  case AVKind::IntArrayConst:
  case AVKind::StrConst:
  case AVKind::StrArrayConst:
  case AVKind::ByteConst:
  case AVKind::ByteArrayConst:
    return true;
  default:
    return false;
  }
}

std::string AbstractValue::label() const {
  switch (Kind) {
  case AVKind::Unknown:
    return "⊤";
  case AVKind::UnknownConst:
    return "const";
  case AVKind::Null:
    return "null";
  case AVKind::IntConst:
    return Symbol.empty() ? std::to_string(IntValue) : Symbol;
  case AVKind::IntTop:
    return "⊤int";
  case AVKind::IntArrayConst: {
    std::string Out = "[";
    for (std::size_t I = 0; I < IntElems.size(); ++I) {
      if (I != 0)
        Out += ',';
      Out += std::to_string(IntElems[I]);
    }
    return Out + "]";
  }
  case AVKind::IntArrayTop:
    return "⊤int[]";
  case AVKind::StrConst:
    return StrValue;
  case AVKind::StrTop:
    return "⊤str";
  case AVKind::StrArrayConst: {
    std::string Out = "[";
    for (std::size_t I = 0; I < StrElems.size(); ++I) {
      if (I != 0)
        Out += ',';
      Out += StrElems[I];
    }
    return Out + "]";
  }
  case AVKind::StrArrayTop:
    return "⊤str[]";
  case AVKind::ByteConst:
    return "constbyte";
  case AVKind::ByteTop:
    return "⊤byte";
  case AVKind::ByteArrayConst:
    return "constbyte[]";
  case AVKind::ByteArrayTop:
    return "⊤byte[]";
  case AVKind::Object:
  case AVKind::TopObject:
    return TypeName;
  }
  return "⊤";
}

AbstractValue AbstractValue::join(const AbstractValue &A,
                                  const AbstractValue &B) {
  if (A == B)
    return A;
  // Same domain, different values -> domain top.
  auto DomainTop = [](AVKind K) -> AbstractValue {
    switch (K) {
    case AVKind::IntConst:
    case AVKind::IntTop:
      return intTop();
    case AVKind::IntArrayConst:
    case AVKind::IntArrayTop:
      return intArrayTop();
    case AVKind::StrConst:
    case AVKind::StrTop:
      return strTop();
    case AVKind::StrArrayConst:
    case AVKind::StrArrayTop:
      return strArrayTop();
    case AVKind::ByteConst:
    case AVKind::ByteTop:
      return byteTop();
    case AVKind::ByteArrayConst:
    case AVKind::ByteArrayTop:
      return byteArrayTop();
    default:
      return unknown();
    }
  };
  if (A.isObjectLike() && B.isObjectLike())
    return A.TypeName == B.TypeName ? topObject(A.TypeName) : unknown();
  AbstractValue TopA = DomainTop(A.Kind);
  AbstractValue TopB = DomainTop(B.Kind);
  if (TopA == TopB && TopA.Kind != AVKind::Unknown)
    return TopA;
  return unknown();
}

bool AbstractValue::operator==(const AbstractValue &Other) const {
  if (Kind != Other.Kind)
    return false;
  switch (Kind) {
  case AVKind::IntConst:
    return IntValue == Other.IntValue && Symbol == Other.Symbol;
  case AVKind::IntArrayConst:
    return IntElems == Other.IntElems;
  case AVKind::StrConst:
    return StrValue == Other.StrValue;
  case AVKind::StrArrayConst:
    return StrElems == Other.StrElems;
  case AVKind::Object:
    return ObjectId == Other.ObjectId;
  case AVKind::TopObject:
    return TypeName == Other.TypeName;
  default:
    return true;
  }
}
