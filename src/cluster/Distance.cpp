//===- cluster/Distance.cpp ------------------------------------------------===//

#include "cluster/Distance.h"

#include "support/Hungarian.h"
#include "support/Interner.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <cassert>

using namespace diffcode;
using namespace diffcode::cluster;
using namespace diffcode::usage;

std::vector<std::string> diffcode::cluster::labelUnits(const NodeLabel &Label) {
  // Single source of truth lives next to the interner, which precomputes
  // these units per distinct label at intern time.
  return support::Interner::labelUnits(Label);
}

double diffcode::cluster::labelSimilarity(const NodeLabel &A,
                                          const NodeLabel &B) {
  return levenshteinRatio(labelUnits(A), labelUnits(B));
}

std::size_t diffcode::cluster::commonPrefixLen(const FeaturePath &A,
                                               const FeaturePath &B) {
  std::size_t N = std::min(A.size(), B.size());
  std::size_t I = 0;
  while (I < N && A[I] == B[I])
    ++I;
  return I;
}

double diffcode::cluster::pathDist(const FeaturePath &A,
                                   const FeaturePath &B) {
  if (A == B)
    return 0.0;
  std::size_t MaxLen = std::max(A.size(), B.size());
  if (MaxLen == 0)
    return 0.0;
  std::size_t J = commonPrefixLen(A, B);
  double Credit = static_cast<double>(J);
  // Partial credit for the first diverging pair of labels, when both
  // paths still have one.
  if (J < A.size() && J < B.size())
    Credit += labelSimilarity(A[J], B[J]);
  return 1.0 - Credit / static_cast<double>(MaxLen);
}

double diffcode::cluster::pathsDist(const std::vector<FeaturePath> &F1,
                                    const std::vector<FeaturePath> &F2) {
  if (F1.empty() && F2.empty())
    return 0.0;
  std::size_t N = std::max(F1.size(), F2.size());
  CostMatrix Costs(N, N);
  for (std::size_t R = 0; R < N; ++R)
    for (std::size_t C = 0; C < N; ++C) {
      if (R < F1.size() && C < F2.size())
        Costs.at(R, C) = pathDist(F1[R], F2[C]);
      else
        Costs.at(R, C) = 1.0; // unmatched path pairs with the empty path
    }
  Assignment Result = solveAssignment(Costs);
  return Result.TotalCost / static_cast<double>(N);
}

double diffcode::cluster::usageDist(const UsageChange &C1,
                                    const UsageChange &C2) {
  // The string-space reference metric: materialise and measure. The hot
  // path uses UsageDistCache, which computes the same value over ids.
  return (pathsDist(C1.removedPaths(), C2.removedPaths()) +
          pathsDist(C1.addedPaths(), C2.addedPaths())) /
         2.0;
}
