//===- javaast/Lexer.h - Java subset lexer ---------------------------------===//
//
// Part of the DiffCode project, a reproduction of "Inferring Crypto API
// Rules from Code Changes" (PLDI'18).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-written lexer for the Java subset. Comments (line and block) and
/// whitespace are skipped; malformed input produces diagnostics and an
/// Unknown token so the parser can attempt recovery.
///
//===----------------------------------------------------------------------===//

#ifndef DIFFCODE_JAVAAST_LEXER_H
#define DIFFCODE_JAVAAST_LEXER_H

#include "javaast/Diagnostics.h"
#include "javaast/Token.h"

#include <string_view>
#include <vector>

namespace diffcode {
namespace java {

/// Single-pass lexer over an in-memory buffer.
class Lexer {
public:
  Lexer(std::string_view Buffer, DiagnosticsEngine &Diags);

  /// Lexes and returns the next token; returns EndOfFile forever once the
  /// buffer is exhausted.
  Token next();

  /// Lexes the entire buffer. The trailing EndOfFile token is included.
  std::vector<Token> lexAll();

private:
  char peek(std::size_t Ahead = 0) const;
  char advance();
  bool match(char Expected);
  bool atEnd() const { return Pos >= Buffer.size(); }
  SourceLocation here() const;
  void skipTrivia();

  Token makeToken(TokenKind Kind, SourceLocation Loc, std::string Text);
  Token lexIdentifierOrKeyword(SourceLocation Loc);
  Token lexNumber(SourceLocation Loc);
  Token lexString(SourceLocation Loc);
  Token lexChar(SourceLocation Loc);
  /// Decodes one escape sequence after a backslash; returns the decoded
  /// character (best effort on invalid escapes).
  char lexEscape();

  std::string_view Buffer;
  DiagnosticsEngine &Diags;
  std::size_t Pos = 0;
  std::uint32_t Line = 1;
  std::uint32_t Col = 1;
};

} // namespace java
} // namespace diffcode

#endif // DIFFCODE_JAVAAST_LEXER_H
