file(REMOVE_RECURSE
  "CMakeFiles/test_visitor.dir/test_visitor.cpp.o"
  "CMakeFiles/test_visitor.dir/test_visitor.cpp.o.d"
  "test_visitor"
  "test_visitor.pdb"
  "test_visitor[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_visitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
