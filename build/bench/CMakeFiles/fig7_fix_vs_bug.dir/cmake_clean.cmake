file(REMOVE_RECURSE
  "CMakeFiles/fig7_fix_vs_bug.dir/fig7_fix_vs_bug.cpp.o"
  "CMakeFiles/fig7_fix_vs_bug.dir/fig7_fix_vs_bug.cpp.o.d"
  "fig7_fix_vs_bug"
  "fig7_fix_vs_bug.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_fix_vs_bug.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
