//===- support/Arena.h - Bump-pointer arena allocator ----------------------===//
//
// Part of the DiffCode project, a reproduction of "Inferring Crypto API
// Rules from Code Changes" (PLDI'18).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A bump-pointer slab allocator in the style of LLVM's BumpPtrAllocator.
/// Allocation is a pointer bump in the common case; nothing is freed
/// individually. reset() rewinds to the first slab while *retaining* the
/// slab memory, so a reused arena reaches a steady state with zero malloc
/// traffic — the property the front end relies on when one AstContext is
/// recycled across the old/new versions of every mined change.
///
/// The arena does not run destructors; owners that place non-trivially
/// destructible objects in it (see java::AstContext) must track and run
/// those destructors themselves before reset() or destruction.
///
//===----------------------------------------------------------------------===//

#ifndef DIFFCODE_SUPPORT_ARENA_H
#define DIFFCODE_SUPPORT_ARENA_H

#include <cstddef>
#include <cstring>
#include <string_view>
#include <vector>

namespace diffcode {
namespace support {

/// Bump-pointer slab allocator. Movable (slab addresses are stable across
/// moves, so views into the arena survive), not copyable.
class Arena {
public:
  Arena() = default;
  Arena(Arena &&) = default;
  Arena &operator=(Arena &&) = default;
  Arena(const Arena &) = delete;
  Arena &operator=(const Arena &) = delete;
  ~Arena();

  /// Returns \p Size bytes aligned to \p Align (a power of two).
  void *allocate(std::size_t Size, std::size_t Align) {
    char *P = alignPtr(Cur, Align);
    if (P + Size <= End) {
      Cur = P + Size;
      Requested += Size;
      return P;
    }
    return allocateSlow(Size, Align);
  }

  /// Copies \p Bytes into the arena; returns a view of the stable copy.
  std::string_view copy(std::string_view Bytes) {
    if (Bytes.empty())
      return {static_cast<const char *>(nullptr), 0};
    char *Mem = static_cast<char *>(allocate(Bytes.size(), 1));
    std::memcpy(Mem, Bytes.data(), Bytes.size());
    return {Mem, Bytes.size()};
  }

  /// Rewinds to the beginning, retaining every slab for reuse. Contents
  /// become indeterminate; no destructors are run.
  void reset();

  /// Sum of bytes handed out since construction / the last reset()
  /// (excludes alignment padding and unused slab tails).
  std::size_t bytesRequested() const { return Requested; }

  /// Total slab capacity currently held (retained across reset()).
  std::size_t bytesCapacity() const;

  std::size_t slabCount() const { return Slabs.size(); }

private:
  struct Slab {
    char *Mem;
    std::size_t Size;
  };

  static char *alignPtr(char *P, std::size_t Align) {
    return reinterpret_cast<char *>(
        (reinterpret_cast<std::uintptr_t>(P) + Align - 1) & ~(Align - 1));
  }

  void *allocateSlow(std::size_t Size, std::size_t Align);

  std::vector<Slab> Slabs;
  std::size_t CurSlab = 0; ///< Index of the slab Cur points into.
  char *Cur = nullptr;
  char *End = nullptr;
  std::size_t Requested = 0;
};

} // namespace support
} // namespace diffcode

#endif // DIFFCODE_SUPPORT_ARENA_H
