//===- rules/ChangeClassifier.cpp ------------------------------------------===//

#include "rules/ChangeClassifier.h"

using namespace diffcode;
using namespace diffcode::rules;

ChangeClass diffcode::rules::classifyChange(const Rule &R,
                                            const UnitFacts &OldFacts,
                                            const UnitFacts &NewFacts,
                                            const ProjectMetadata &Meta) {
  bool OldTriggers = ruleMatches(R, {OldFacts}, Meta);
  bool NewTriggers = ruleMatches(R, {NewFacts}, Meta);
  // A *fix* repairs a usage that still exists: if the trigger vanished
  // only because the usage itself was deleted, the change is a removal,
  // not a fix (and symmetrically for introductions). Without this
  // refinement every crypto-code deletion would count as a security fix.
  if (OldTriggers && !NewTriggers)
    return ruleApplicable(R, {NewFacts}, Meta) ? ChangeClass::SecurityFix
                                         : ChangeClass::NonSemantic;
  if (!OldTriggers && NewTriggers)
    return ruleApplicable(R, {OldFacts}, Meta) ? ChangeClass::BuggyChange
                                         : ChangeClass::NonSemantic;
  return ChangeClass::NonSemantic;
}

const char *diffcode::rules::changeClassName(ChangeClass C) {
  switch (C) {
  case ChangeClass::SecurityFix:
    return "fix";
  case ChangeClass::BuggyChange:
    return "bug";
  case ChangeClass::NonSemantic:
    return "none";
  }
  return "none";
}
