//===- obs/Metrics.cpp - Thread-safe pipeline metrics registry -------------===//
//
// Part of the DiffCode project, a reproduction of "Inferring Crypto API
// Rules from Code Changes" (PLDI'18).
//
//===----------------------------------------------------------------------===//

#include "obs/Metrics.h"

#include "support/JsonWriter.h"

#include <algorithm>
#include <bit>
#include <mutex>
#include <stdexcept>

namespace diffcode {
namespace obs {

const char *metricKindName(MetricKind Kind) {
  switch (Kind) {
  case MetricKind::Counter:
    return "counter";
  case MetricKind::Gauge:
    return "gauge";
  case MetricKind::Histogram:
    return "histogram";
  }
  return "unknown";
}

const char *unitName(Unit U) {
  switch (U) {
  case Unit::None:
    return "";
  case Unit::Bytes:
    return "bytes";
  case Unit::Nanoseconds:
    return "ns";
  case Unit::Percent:
    return "percent";
  }
  return "";
}

const char *stabilityName(Stability S) {
  return S == Stability::Deterministic ? "deterministic" : "per-run";
}

//===----------------------------------------------------------------------===//
// Histogram
//===----------------------------------------------------------------------===//

unsigned Histogram::bucketFor(std::uint64_t V) {
  return V == 0 ? 0u : unsigned(std::bit_width(V));
}

std::uint64_t Histogram::bucketLo(unsigned Index) {
  if (Index == 0)
    return 0;
  return std::uint64_t(1) << (Index - 1);
}

std::uint64_t Histogram::bucketHi(unsigned Index) {
  if (Index == 0)
    return 0;
  if (Index == NumBuckets - 1)
    return ~std::uint64_t(0);
  return (std::uint64_t(1) << Index) - 1;
}

void Histogram::record(std::uint64_t V) {
  Buckets[bucketFor(V)].fetch_add(1, std::memory_order_relaxed);
  Count.fetch_add(1, std::memory_order_relaxed);

  // Saturating sum, same discipline as Counter::add.
  std::uint64_t Old = Sum.load(std::memory_order_relaxed);
  std::uint64_t Top = ~std::uint64_t(0);
  std::uint64_t New;
  do {
    New = Old > Top - V ? Top : Old + V;
  } while (!Sum.compare_exchange_weak(Old, New, std::memory_order_relaxed));

  std::uint64_t OldMin = Min.load(std::memory_order_relaxed);
  while (V < OldMin &&
         !Min.compare_exchange_weak(OldMin, V, std::memory_order_relaxed)) {
  }
  std::uint64_t OldMax = Max.load(std::memory_order_relaxed);
  while (V > OldMax &&
         !Max.compare_exchange_weak(OldMax, V, std::memory_order_relaxed)) {
  }
}

std::uint64_t Histogram::min() const {
  std::uint64_t M = Min.load(std::memory_order_relaxed);
  return M == ~std::uint64_t(0) ? 0 : M;
}

void Histogram::merge(const Histogram &Other) {
  for (unsigned I = 0; I < NumBuckets; ++I)
    if (std::uint64_t C = Other.Buckets[I].load(std::memory_order_relaxed))
      Buckets[I].fetch_add(C, std::memory_order_relaxed);
  Count.fetch_add(Other.Count.load(std::memory_order_relaxed),
                  std::memory_order_relaxed);

  std::uint64_t Add = Other.Sum.load(std::memory_order_relaxed);
  std::uint64_t Old = Sum.load(std::memory_order_relaxed);
  std::uint64_t New;
  do {
    New = saturatingAdd(Old, Add);
  } while (!Sum.compare_exchange_weak(Old, New, std::memory_order_relaxed));

  // The raw Min sentinel (~0 = empty) folds correctly without a special
  // case: an empty source can never lower the destination.
  std::uint64_t V = Other.Min.load(std::memory_order_relaxed);
  std::uint64_t OldMin = Min.load(std::memory_order_relaxed);
  while (V < OldMin &&
         !Min.compare_exchange_weak(OldMin, V, std::memory_order_relaxed)) {
  }
  std::uint64_t W = Other.Max.load(std::memory_order_relaxed);
  std::uint64_t OldMax = Max.load(std::memory_order_relaxed);
  while (W > OldMax &&
         !Max.compare_exchange_weak(OldMax, W, std::memory_order_relaxed)) {
  }
}

//===----------------------------------------------------------------------===//
// Registry
//===----------------------------------------------------------------------===//

Registry::Entry &Registry::getOrCreate(std::string_view Name, MetricKind Kind,
                                       Unit U, Stability S) {
  {
    std::shared_lock Lock(Mutex);
    auto It = Entries.find(Name);
    if (It != Entries.end()) {
      if (It->second.Kind != Kind)
        throw std::logic_error("obs::Registry: metric '" + std::string(Name) +
                               "' already registered as a different kind");
      return It->second;
    }
  }
  std::unique_lock Lock(Mutex);
  auto It = Entries.find(Name);
  if (It == Entries.end()) {
    Entry E;
    E.Kind = Kind;
    E.U = U;
    E.S = S;
    switch (Kind) {
    case MetricKind::Counter:
      E.C = std::make_unique<Counter>();
      break;
    case MetricKind::Gauge:
      E.G = std::make_unique<Gauge>();
      break;
    case MetricKind::Histogram:
      E.H = std::make_unique<Histogram>();
      break;
    }
    It = Entries.emplace(std::string(Name), std::move(E)).first;
  } else if (It->second.Kind != Kind) {
    throw std::logic_error("obs::Registry: metric '" + std::string(Name) +
                           "' already registered as a different kind");
  }
  return It->second;
}

Counter &Registry::counter(std::string_view Name, Unit U, Stability S) {
  return *getOrCreate(Name, MetricKind::Counter, U, S).C;
}

Gauge &Registry::gauge(std::string_view Name, Unit U, Stability S) {
  return *getOrCreate(Name, MetricKind::Gauge, U, S).G;
}

Histogram &Registry::histogram(std::string_view Name, Unit U, Stability S) {
  return *getOrCreate(Name, MetricKind::Histogram, U, S).H;
}

std::size_t Registry::size() const {
  std::shared_lock Lock(Mutex);
  return Entries.size();
}

Snapshot Registry::snapshot() const {
  Snapshot Snap;
  std::shared_lock Lock(Mutex);
  Snap.Values.reserve(Entries.size());
  for (const auto &[Name, E] : Entries) {
    MetricValue V;
    V.Name = Name;
    V.Kind = E.Kind;
    V.U = E.U;
    V.S = E.S;
    switch (E.Kind) {
    case MetricKind::Counter:
      V.Count = E.C->get();
      break;
    case MetricKind::Gauge:
      V.Value = E.G->get();
      break;
    case MetricKind::Histogram:
      V.Count = E.H->count();
      V.Sum = E.H->sum();
      V.Min = E.H->min();
      V.Max = E.H->max();
      for (unsigned I = 0; I < Histogram::NumBuckets; ++I)
        if (std::uint64_t C = E.H->bucketCount(I))
          V.Buckets.emplace_back(I, C);
      break;
    }
    Snap.Values.push_back(std::move(V));
  }
  return Snap;
}

//===----------------------------------------------------------------------===//
// Snapshot serialization
//===----------------------------------------------------------------------===//

static void emitMetric(JsonWriter &W, const MetricValue &V) {
  W.beginObject();
  W.key("name");
  W.value(V.Name);
  W.key("kind");
  W.value(metricKindName(V.Kind));
  if (V.U != Unit::None) {
    W.key("unit");
    W.value(unitName(V.U));
  }
  if (V.S == Stability::PerRun) {
    W.key("stability");
    W.value(stabilityName(V.S));
  }
  switch (V.Kind) {
  case MetricKind::Counter:
    W.key("value");
    W.value(V.Count);
    break;
  case MetricKind::Gauge:
    W.key("value");
    W.value(V.Value);
    break;
  case MetricKind::Histogram:
    W.key("count");
    W.value(V.Count);
    W.key("sum");
    W.value(V.Sum);
    W.key("min");
    W.value(V.Min);
    W.key("max");
    W.value(V.Max);
    W.key("buckets");
    W.beginArray();
    for (const auto &[Index, C] : V.Buckets) {
      W.beginObject();
      W.key("lo");
      W.value(Histogram::bucketLo(Index));
      W.key("hi");
      W.value(Histogram::bucketHi(Index));
      W.key("count");
      W.value(C);
      W.endObject();
    }
    W.endArray();
    break;
  }
  W.endObject();
}

std::string Snapshot::json(bool DeterministicOnly) const {
  JsonWriter W;
  W.beginArray();
  for (const MetricValue &V : Values) {
    if (DeterministicOnly && V.S == Stability::PerRun)
      continue;
    emitMetric(W, V);
  }
  W.endArray();
  return W.take();
}

//===----------------------------------------------------------------------===//
// Snapshot merging
//===----------------------------------------------------------------------===//

/// Combines \p Src into \p Dst (same name, same kind).
static void mergeValueInto(MetricValue &Dst, const MetricValue &Src) {
  switch (Dst.Kind) {
  case MetricKind::Counter:
    Dst.Count = saturatingAdd(Dst.Count, Src.Count);
    break;
  case MetricKind::Gauge:
    Dst.Value = std::max(Dst.Value, Src.Value);
    break;
  case MetricKind::Histogram: {
    // Min is 0-when-empty at the MetricValue layer, so an empty side
    // must not drag the merged min to 0.
    if (Dst.Count == 0)
      Dst.Min = Src.Min;
    else if (Src.Count != 0)
      Dst.Min = std::min(Dst.Min, Src.Min);
    Dst.Max = std::max(Dst.Max, Src.Max);
    Dst.Count = saturatingAdd(Dst.Count, Src.Count);
    Dst.Sum = saturatingAdd(Dst.Sum, Src.Sum);

    std::vector<std::pair<unsigned, std::uint64_t>> Merged;
    Merged.reserve(Dst.Buckets.size() + Src.Buckets.size());
    std::size_t A = 0, B = 0;
    while (A < Dst.Buckets.size() || B < Src.Buckets.size()) {
      if (B == Src.Buckets.size() || (A < Dst.Buckets.size() &&
                                      Dst.Buckets[A].first <
                                          Src.Buckets[B].first))
        Merged.push_back(Dst.Buckets[A++]);
      else if (A == Dst.Buckets.size() ||
               Src.Buckets[B].first < Dst.Buckets[A].first)
        Merged.push_back(Src.Buckets[B++]);
      else {
        Merged.emplace_back(Dst.Buckets[A].first,
                            saturatingAdd(Dst.Buckets[A].second,
                                          Src.Buckets[B].second));
        ++A;
        ++B;
      }
    }
    Dst.Buckets = std::move(Merged);
    break;
  }
  }
}

bool Snapshot::merge(const Snapshot &Other, std::string_view Prefix) {
  std::vector<MetricValue> In;
  In.reserve(Other.Values.size());
  for (const MetricValue &V : Other.Values) {
    MetricValue C = V;
    C.Name = std::string(Prefix) + C.Name;
    In.push_back(std::move(C));
  }

  // Validate before mutating: a kind mismatch rejects the whole merge.
  {
    std::size_t I = 0, J = 0;
    while (I < Values.size() && J < In.size()) {
      int Cmp = Values[I].Name.compare(In[J].Name);
      if (Cmp < 0)
        ++I;
      else if (Cmp > 0)
        ++J;
      else {
        if (Values[I].Kind != In[J].Kind)
          return false;
        ++I;
        ++J;
      }
    }
  }

  std::vector<MetricValue> Out;
  Out.reserve(Values.size() + In.size());
  std::size_t I = 0, J = 0;
  while (I < Values.size() || J < In.size()) {
    if (J == In.size() ||
        (I < Values.size() && Values[I].Name < In[J].Name)) {
      Out.push_back(std::move(Values[I++]));
    } else if (I == Values.size() || In[J].Name < Values[I].Name) {
      Out.push_back(std::move(In[J++]));
    } else {
      MetricValue M = std::move(Values[I++]);
      mergeValueInto(M, In[J++]);
      Out.push_back(std::move(M));
    }
  }
  Values = std::move(Out);
  return true;
}

void Snapshot::markAllPerRun() {
  for (MetricValue &V : Values)
    V.S = Stability::PerRun;
}

} // namespace obs
} // namespace diffcode
