//===- service/Server.cpp --------------------------------------------------===//

#include "service/Server.h"

#include "exec/Wire.h"
#include "scan/ScanReportWriter.h"
#include "support/JsonWriter.h"
#include "support/Process.h"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace diffcode;
using namespace diffcode::service;

namespace {

bool sendFrame(int Fd, ServiceFrame Type, std::string_view Payload) {
  std::string Bytes =
      exec::encodeFrame(static_cast<std::uint32_t>(Type), Payload);
  return support::writeFull(Fd, Bytes.data(), Bytes.size()) ==
         static_cast<ssize_t>(Bytes.size());
}

/// Blocks until one complete frame arrives (or EOF / stream poison).
enum class RecvResult { Frame, Eof, Error };

RecvResult recvFrame(int Fd, exec::FrameDecoder &Decoder, exec::Frame &Out) {
  for (;;) {
    if (auto F = Decoder.next()) {
      Out = std::move(*F);
      return RecvResult::Frame;
    }
    if (Decoder.bad())
      return RecvResult::Error;
    char Buf[1 << 16];
    ssize_t N = support::readSome(Fd, Buf, sizeof(Buf));
    if (N == 0)
      return RecvResult::Eof;
    if (N < 0)
      return RecvResult::Error;
    Decoder.feed(Buf, static_cast<std::size_t>(N));
  }
}

bool failStr(std::string *Error, std::string Message) {
  if (Error)
    *Error = std::move(Message);
  return false;
}

} // namespace

namespace {

scan::ScanConfig scanConfigFrom(const SessionOptions &Opts) {
  scan::ScanConfig Config;
  Config.Threads = Opts.Config.Threads;
  Config.Limits.Parse = Opts.Config.Limits.Parse;
  Config.Limits.Analysis = Opts.Config.Limits.Analysis;
  return Config;
}

} // namespace

Server::Server(const apimodel::CryptoApiModel &Api, SessionOptions Opts)
    : Api(Api), ScannerConfig(scanConfigFrom(Opts)), Obs(Opts.Metrics),
      Session(Api, std::move(Opts)) {}

scan::Scanner &Server::scanner() {
  if (!RuleScanner)
    RuleScanner = std::make_unique<scan::Scanner>(Api, ScannerConfig);
  return *RuleScanner;
}

std::string Server::handleQuery(const std::string &What, bool &Known) const {
  Known = true;
  const core::CorpusReport &Report = Session.report();
  JsonWriter W;
  if (What == "health") {
    const core::CorpusHealth &H = Report.Health;
    W.beginObject();
    W.key("changes").value(std::uint64_t(Report.Changes.size()));
    W.key("troubled").value(std::uint64_t(H.troubled()));
    W.key("clustering_failures").value(std::uint64_t(H.ClusteringFailures));
    W.key("status").beginObject();
    for (std::size_t I = 0; I < core::NumChangeStatuses; ++I)
      W.key(core::changeStatusName(static_cast<core::ChangeStatus>(I)))
          .value(std::uint64_t(H.StatusCounts[I]));
    W.endObject();
    W.endObject();
    return W.take();
  }
  if (What == "stats") {
    SessionStats S = Session.stats();
    W.beginObject();
    W.key("changes").value(std::uint64_t(S.TotalChanges));
    W.key("ingests").value(std::uint64_t(S.Ingests));
    W.key("cached_records").value(std::uint64_t(S.CachedRecords));
    W.key("cache_hits").value(std::uint64_t(S.Lifetime.CacheHits));
    W.key("cache_misses").value(std::uint64_t(S.Lifetime.CacheMisses));
    W.key("evictions").value(std::uint64_t(S.Lifetime.Evictions));
    W.key("classes_repaired").value(std::uint64_t(S.Lifetime.ClassesRepaired));
    W.key("classes_reused").value(std::uint64_t(S.Lifetime.ClassesReused));
    W.key("pairs_computed").value(std::uint64_t(S.Lifetime.PairsComputed));
    W.key("pairs_reused").value(std::uint64_t(S.Lifetime.PairsReused));
    W.endObject();
    return W.take();
  }
  if (What.rfind("class:", 0) == 0) {
    std::string Name = What.substr(6);
    for (const core::ClassReport &Class : Report.PerClass) {
      if (Class.TargetClass != Name)
        continue;
      W.beginObject();
      W.key("class").value(Class.TargetClass);
      W.key("usages").value(std::uint64_t(Class.Filtered.Total));
      W.key("kept").value(std::uint64_t(Class.Filtered.Kept.size()));
      W.key("leaves").value(std::uint64_t(Class.Tree.leafCount()));
      if (!Class.ClusteringError.empty())
        W.key("clustering_error").value(Class.ClusteringError);
      W.endObject();
      return W.take();
    }
  }
  Known = false;
  return std::string();
}

ServeOutcome Server::serve(int InFd, int OutFd) {
  support::ScopedSigpipeIgnore NoSigpipe;
  exec::FrameDecoder Decoder;
  exec::Frame F;
  for (;;) {
    switch (recvFrame(InFd, Decoder, F)) {
    case RecvResult::Eof:
      return ServeOutcome::Disconnected;
    case RecvResult::Error:
      return ServeOutcome::ProtocolError;
    case RecvResult::Frame:
      break;
    }

    switch (static_cast<ServiceFrame>(F.Type)) {
    case ServiceFrame::IngestReq: {
      std::vector<corpus::CodeChange> Changes;
      std::string Error;
      if (!decodeIngestRequest(F.Payload, Changes, &Error)) {
        if (!sendFrame(OutFd, ServiceFrame::ReplyErr, encodeText(Error)))
          return ServeOutcome::ProtocolError;
        break;
      }
      IngestReply Reply;
      Reply.Stats = Session.ingest(Changes);
      Reply.TotalChanges = Session.size();
      if (!sendFrame(OutFd, ServiceFrame::ReplyOk, encodeIngestReply(Reply)))
        return ServeOutcome::ProtocolError;
      break;
    }
    case ServiceFrame::QueryReq: {
      std::string What;
      if (!decodeQueryRequest(F.Payload, What)) {
        if (!sendFrame(OutFd, ServiceFrame::ReplyErr,
                       encodeText("malformed query payload")))
          return ServeOutcome::ProtocolError;
        break;
      }
      bool Known = false;
      std::string Answer = handleQuery(What, Known);
      if (!Known) {
        if (!sendFrame(OutFd, ServiceFrame::ReplyErr,
                       encodeText("unknown query: " + What)))
          return ServeOutcome::ProtocolError;
        break;
      }
      if (!sendFrame(OutFd, ServiceFrame::ReplyOk, encodeText(Answer)))
        return ServeOutcome::ProtocolError;
      break;
    }
    case ServiceFrame::SnapshotReq: {
      if (!sendFrame(OutFd, ServiceFrame::ReplyOk,
                     encodeText(Session.reportJson())))
        return ServeOutcome::ProtocolError;
      break;
    }
    case ServiceFrame::ScanReq: {
      ScanRequestWire Wire;
      std::string Error;
      if (!decodeScanRequest(F.Payload, Wire, &Error)) {
        if (!sendFrame(OutFd, ServiceFrame::ReplyErr, encodeText(Error)))
          return ServeOutcome::ProtocolError;
        break;
      }
      scan::ScanRequest Request;
      Request.Projects.reserve(Wire.Projects.size());
      for (const corpus::Project &P : Wire.Projects)
        Request.Projects.push_back(&P);
      Request.RuleFilter = std::move(Wire.RuleFilter);
      Request.Refine = Wire.Refine;
      scan::ScanReport Report = scanner().scan(Request);
      if (!sendFrame(OutFd, ServiceFrame::ReplyOk,
                     encodeText(scan::scanReportToJson(Report))))
        return ServeOutcome::ProtocolError;
      break;
    }
    case ServiceFrame::StatsReq: {
      if (!F.Payload.empty()) {
        if (!sendFrame(OutFd, ServiceFrame::ReplyErr,
                       encodeText("malformed stats payload")))
          return ServeOutcome::ProtocolError;
        break;
      }
      if (!Obs) {
        if (!sendFrame(OutFd, ServiceFrame::ReplyErr,
                       encodeText("daemon not observed (start with "
                                  "--metrics or --trace-out)")))
          return ServeOutcome::ProtocolError;
        break;
      }
      // summarize() freezes the live registry + stage table; nothing in
      // the session is touched, so the query never perturbs an ingest.
      if (!sendFrame(OutFd, ServiceFrame::ReplyOk,
                     encodeText(Obs->summarize().json())))
        return ServeOutcome::ProtocolError;
      break;
    }
    case ServiceFrame::ShutdownReq: {
      // Acknowledge first: the client's shutdown() must not race the
      // server's exit.
      sendFrame(OutFd, ServiceFrame::ReplyOk, std::string_view());
      return ServeOutcome::Shutdown;
    }
    default:
      if (!sendFrame(OutFd, ServiceFrame::ReplyErr,
                     encodeText("unknown request frame type")))
        return ServeOutcome::ProtocolError;
      break;
    }
  }
}

int service::listenUnix(const std::string &Path, std::string *Error) {
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  if (Path.size() >= sizeof(Addr.sun_path)) {
    failStr(Error, "socket path too long: " + Path);
    return -1;
  }
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);

  int Fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (Fd < 0) {
    failStr(Error, std::string("socket: ") + std::strerror(errno));
    return -1;
  }
  // A stale socket file from a dead server would make bind fail forever.
  ::unlink(Path.c_str());
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0 ||
      ::listen(Fd, /*backlog=*/8) != 0) {
    failStr(Error, "bind/listen " + Path + ": " + std::strerror(errno));
    ::close(Fd);
    return -1;
  }
  return Fd;
}

int service::connectUnix(const std::string &Path, std::string *Error) {
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  if (Path.size() >= sizeof(Addr.sun_path)) {
    failStr(Error, "socket path too long: " + Path);
    return -1;
  }
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);

  int Fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (Fd < 0) {
    failStr(Error, std::string("socket: ") + std::strerror(errno));
    return -1;
  }
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    failStr(Error, "connect " + Path + ": " + std::strerror(errno));
    ::close(Fd);
    return -1;
  }
  return Fd;
}

int service::serveUnix(Server &S, int ListenFd) {
  for (;;) {
    int Conn;
    do {
      Conn = ::accept(ListenFd, nullptr, nullptr);
    } while (Conn < 0 && errno == EINTR);
    if (Conn < 0)
      return 1;
    ServeOutcome Outcome = S.serve(Conn, Conn);
    ::close(Conn);
    if (Outcome == ServeOutcome::Shutdown)
      return 0;
    // Disconnected / ProtocolError only end this connection; the session
    // (and its caches) lives on for the next client.
  }
}

bool Client::roundTrip(ServiceFrame Type, std::string_view Payload,
                       std::string &ReplyPayload, std::string *Error) {
  support::ScopedSigpipeIgnore NoSigpipe;
  std::string Bytes =
      exec::encodeFrame(static_cast<std::uint32_t>(Type), Payload);
  if (support::writeFull(Fd, Bytes.data(), Bytes.size()) !=
      static_cast<ssize_t>(Bytes.size()))
    return failStr(Error, "short write to server");
  exec::FrameDecoder Decoder;
  exec::Frame F;
  switch (recvFrame(Fd, Decoder, F)) {
  case RecvResult::Eof:
    return failStr(Error, "server closed the connection");
  case RecvResult::Error:
    return failStr(Error, Decoder.bad() ? "poisoned reply stream: " +
                                              Decoder.error()
                                        : "read error from server");
  case RecvResult::Frame:
    break;
  }
  if (static_cast<ServiceFrame>(F.Type) == ServiceFrame::ReplyErr) {
    std::string Message;
    decodeText(F.Payload, Message);
    return failStr(Error, Message.empty() ? "server error" : Message);
  }
  if (static_cast<ServiceFrame>(F.Type) != ServiceFrame::ReplyOk)
    return failStr(Error, "unexpected reply frame type");
  ReplyPayload = std::move(F.Payload);
  return true;
}

bool Client::ingest(const std::vector<corpus::CodeChange> &Changes,
                    IngestReply &Reply, std::string *Error) {
  std::string Payload;
  if (!roundTrip(ServiceFrame::IngestReq, encodeIngestRequest(Changes),
                 Payload, Error))
    return false;
  if (!decodeIngestReply(Payload, Reply))
    return failStr(Error, "malformed ingest reply");
  return true;
}

bool Client::query(const std::string &What, std::string &Answer,
                   std::string *Error) {
  std::string Payload;
  if (!roundTrip(ServiceFrame::QueryReq, encodeQueryRequest(What), Payload,
                 Error))
    return false;
  if (!decodeText(Payload, Answer))
    return failStr(Error, "malformed query reply");
  return true;
}

bool Client::snapshot(std::string &ReportJson, std::string *Error) {
  std::string Payload;
  if (!roundTrip(ServiceFrame::SnapshotReq, std::string_view(), Payload,
                 Error))
    return false;
  if (!decodeText(Payload, ReportJson))
    return failStr(Error, "malformed snapshot reply");
  return true;
}

bool Client::scan(const ScanRequestWire &Request, std::string &ReportJson,
                  std::string *Error) {
  std::string Payload;
  if (!roundTrip(ServiceFrame::ScanReq, encodeScanRequest(Request), Payload,
                 Error))
    return false;
  if (!decodeText(Payload, ReportJson))
    return failStr(Error, "malformed scan reply");
  return true;
}

bool Client::stats(std::string &SummaryJson, std::string *Error) {
  std::string Payload;
  if (!roundTrip(ServiceFrame::StatsReq, std::string_view(), Payload, Error))
    return false;
  if (!decodeText(Payload, SummaryJson))
    return failStr(Error, "malformed stats reply");
  return true;
}

bool Client::shutdown(std::string *Error) {
  std::string Payload;
  return roundTrip(ServiceFrame::ShutdownReq, std::string_view(), Payload,
                   Error);
}
