//===- javaast/AstPrinter.cpp ----------------------------------------------===//

#include "javaast/AstPrinter.h"

#include "support/Casting.h"

#include <cassert>

using namespace diffcode;
using namespace diffcode::java;

std::string AstPrinter::print(const CompilationUnit *Unit) {
  Out.clear();
  emitUnit(Unit);
  return std::move(Out);
}

std::string AstPrinter::printExpr(const Expr *E) {
  Out.clear();
  emitExpr(E);
  return std::move(Out);
}

std::string AstPrinter::printStmt(const Stmt *S) {
  Out.clear();
  emitStmt(S, 0);
  return std::move(Out);
}

void AstPrinter::indent(int Level) { Out.append(Level * 2, ' '); }

void AstPrinter::emitModifiers(unsigned Modifiers) {
  if (Modifiers & ModPublic)
    Out += "public ";
  if (Modifiers & ModProtected)
    Out += "protected ";
  if (Modifiers & ModPrivate)
    Out += "private ";
  if (Modifiers & ModAbstract)
    Out += "abstract ";
  if (Modifiers & ModStatic)
    Out += "static ";
  if (Modifiers & ModFinal)
    Out += "final ";
  if (Modifiers & ModSynchronized)
    Out += "synchronized ";
}

void AstPrinter::emitStringLiteral(const std::string &Value) {
  Out += '"';
  for (char C : Value) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    default:
      Out += C;
    }
  }
  Out += '"';
}

void AstPrinter::emitUnit(const CompilationUnit *Unit) {
  if (!Unit->PackageName.empty())
    Out += "package " + Unit->PackageName + ";\n\n";
  for (const std::string &Import : Unit->Imports)
    Out += "import " + Import + ";\n";
  if (!Unit->Imports.empty())
    Out += '\n';
  for (const ClassDecl *Class : Unit->Types)
    emitClass(Class, 0);
}

void AstPrinter::emitClass(const ClassDecl *Class, int Indent) {
  indent(Indent);
  emitModifiers(Class->Modifiers);
  Out += Class->IsInterface ? "interface " : "class ";
  Out += Class->Name;
  if (!Class->SuperClass.empty())
    Out += " extends " + Class->SuperClass;
  if (!Class->Interfaces.empty()) {
    Out += " implements ";
    for (std::size_t I = 0; I < Class->Interfaces.size(); ++I) {
      if (I != 0)
        Out += ", ";
      Out += Class->Interfaces[I];
    }
  }
  Out += " {\n";
  for (const FieldDecl *Field : Class->Fields)
    emitField(Field, Indent + 1);
  for (const MethodDecl *Method : Class->Methods)
    emitMethod(Method, Indent + 1);
  for (const ClassDecl *Nested : Class->NestedClasses)
    emitClass(Nested, Indent + 1);
  indent(Indent);
  Out += "}\n";
}

void AstPrinter::emitField(const FieldDecl *Field, int Indent) {
  indent(Indent);
  emitModifiers(Field->Modifiers);
  Out += Field->Type.str() + " " + Field->Name;
  if (Field->Init) {
    Out += " = ";
    emitExpr(Field->Init);
  }
  Out += ";\n";
}

void AstPrinter::emitMethod(const MethodDecl *Method, int Indent) {
  Out += '\n';
  indent(Indent);
  emitModifiers(Method->Modifiers);
  if (!Method->IsConstructor)
    Out += Method->ReturnType.str() + " ";
  Out += Method->Name + "(";
  for (std::size_t I = 0; I < Method->Params.size(); ++I) {
    if (I != 0)
      Out += ", ";
    Out += Method->Params[I].Type.str() + " " + Method->Params[I].Name;
  }
  Out += ")";
  if (!Method->Throws.empty()) {
    Out += " throws ";
    for (std::size_t I = 0; I < Method->Throws.size(); ++I) {
      if (I != 0)
        Out += ", ";
      Out += Method->Throws[I].Name;
    }
  }
  if (!Method->Body) {
    Out += ";\n";
    return;
  }
  Out += " ";
  emitBlock(Method->Body, Indent);
  Out += '\n';
}

void AstPrinter::emitBlock(const Block *B, int Indent) {
  Out += "{\n";
  for (const Stmt *S : B->Stmts)
    emitStmt(S, Indent + 1);
  indent(Indent);
  Out += "}";
}

void AstPrinter::emitStmt(const Stmt *S, int Indent) {
  switch (S->getKind()) {
  case NodeKind::BlockStmt:
    indent(Indent);
    emitBlock(cast<Block>(S), Indent);
    Out += '\n';
    return;
  case NodeKind::LocalVarDeclStmt: {
    const auto *D = cast<LocalVarDeclStmt>(S);
    indent(Indent);
    Out += D->Type.str() + " " + D->Name;
    if (D->Init) {
      Out += " = ";
      emitExpr(D->Init);
    }
    Out += ";\n";
    return;
  }
  case NodeKind::ExprStmt: {
    indent(Indent);
    emitExpr(cast<ExprStmt>(S)->E);
    Out += ";\n";
    return;
  }
  case NodeKind::IfStmt: {
    const auto *If = cast<IfStmt>(S);
    indent(Indent);
    Out += "if (";
    emitExpr(If->Cond);
    Out += ")\n";
    emitStmt(If->Then, Indent + 1);
    if (If->Else) {
      indent(Indent);
      Out += "else\n";
      emitStmt(If->Else, Indent + 1);
    }
    return;
  }
  case NodeKind::WhileStmt: {
    const auto *W = cast<WhileStmt>(S);
    indent(Indent);
    Out += "while (";
    emitExpr(W->Cond);
    Out += ")\n";
    emitStmt(W->Body, Indent + 1);
    return;
  }
  case NodeKind::DoStmt: {
    const auto *D = cast<DoStmt>(S);
    indent(Indent);
    Out += "do\n";
    emitStmt(D->Body, Indent + 1);
    indent(Indent);
    Out += "while (";
    emitExpr(D->Cond);
    Out += ");\n";
    return;
  }
  case NodeKind::ForStmt: {
    const auto *F = cast<ForStmt>(S);
    indent(Indent);
    Out += "for (";
    if (F->Init) {
      // Init prints with its own ';' and newline; splice it inline.
      std::size_t Mark = Out.size();
      emitStmt(F->Init, 0);
      // Drop the trailing newline the statement printer added.
      while (Out.size() > Mark && (Out.back() == '\n' || Out.back() == ' '))
        Out.pop_back();
    } else {
      Out += ";";
    }
    Out += " ";
    if (F->Cond)
      emitExpr(F->Cond);
    Out += "; ";
    if (F->Update)
      emitExpr(F->Update);
    Out += ")\n";
    emitStmt(F->Body, Indent + 1);
    return;
  }
  case NodeKind::ReturnStmt: {
    const auto *R = cast<ReturnStmt>(S);
    indent(Indent);
    Out += "return";
    if (R->Value) {
      Out += ' ';
      emitExpr(R->Value);
    }
    Out += ";\n";
    return;
  }
  case NodeKind::TryStmt: {
    const auto *T = cast<TryStmt>(S);
    indent(Indent);
    Out += "try ";
    emitBlock(T->Body, Indent);
    for (const CatchClause &Clause : T->Catches) {
      Out += " catch (";
      for (std::size_t I = 0; I < Clause.Types.size(); ++I) {
        if (I != 0)
          Out += " | ";
        Out += Clause.Types[I].str();
      }
      Out += " " + (Clause.Name.empty() ? std::string("e") : Clause.Name) +
             ") ";
      emitBlock(Clause.Body, Indent);
    }
    if (T->Finally) {
      Out += " finally ";
      emitBlock(T->Finally, Indent);
    }
    Out += '\n';
    return;
  }
  case NodeKind::ThrowStmt: {
    indent(Indent);
    Out += "throw ";
    emitExpr(cast<ThrowStmt>(S)->Value);
    Out += ";\n";
    return;
  }
  case NodeKind::BreakStmt:
    indent(Indent);
    Out += "break;\n";
    return;
  case NodeKind::ContinueStmt:
    indent(Indent);
    Out += "continue;\n";
    return;
  case NodeKind::EmptyStmt:
    indent(Indent);
    Out += ";\n";
    return;
  default:
    assert(false && "not a statement kind");
  }
}

namespace {
const char *binaryOpSpelling(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::Add:
    return "+";
  case BinaryOp::Sub:
    return "-";
  case BinaryOp::Mul:
    return "*";
  case BinaryOp::Div:
    return "/";
  case BinaryOp::Rem:
    return "%";
  case BinaryOp::Lt:
    return "<";
  case BinaryOp::Gt:
    return ">";
  case BinaryOp::Le:
    return "<=";
  case BinaryOp::Ge:
    return ">=";
  case BinaryOp::Eq:
    return "==";
  case BinaryOp::Ne:
    return "!=";
  case BinaryOp::And:
    return "&&";
  case BinaryOp::Or:
    return "||";
  case BinaryOp::BitAnd:
    return "&";
  case BinaryOp::BitOr:
    return "|";
  case BinaryOp::BitXor:
    return "^";
  case BinaryOp::Shl:
    return "<<";
  case BinaryOp::Shr:
    return ">>";
  }
  return "?";
}

/// True if \p E needs parentheses when printed as an operand.
bool needsParens(const Expr *E) {
  switch (E->getKind()) {
  case NodeKind::BinaryExpr:
  case NodeKind::ConditionalExpr:
  case NodeKind::AssignExpr:
  case NodeKind::InstanceofExpr:
  case NodeKind::CastExpr:
    return true;
  default:
    return false;
  }
}
} // namespace

void AstPrinter::emitExpr(const Expr *E) {
  auto EmitOperand = [this](const Expr *Operand) {
    if (needsParens(Operand)) {
      Out += '(';
      emitExpr(Operand);
      Out += ')';
    } else {
      emitExpr(Operand);
    }
  };

  switch (E->getKind()) {
  case NodeKind::IntLiteralExpr:
    Out += cast<IntLiteralExpr>(E)->Spelling;
    return;
  case NodeKind::LongLiteralExpr:
    Out += cast<LongLiteralExpr>(E)->Spelling;
    return;
  case NodeKind::StringLiteralExpr:
    emitStringLiteral(cast<StringLiteralExpr>(E)->Value);
    return;
  case NodeKind::CharLiteralExpr: {
    Out += '\'';
    char C = cast<CharLiteralExpr>(E)->Value;
    if (C == '\'' || C == '\\')
      Out += '\\';
    Out += C;
    Out += '\'';
    return;
  }
  case NodeKind::BoolLiteralExpr:
    Out += cast<BoolLiteralExpr>(E)->Value ? "true" : "false";
    return;
  case NodeKind::NullLiteralExpr:
    Out += "null";
    return;
  case NodeKind::NameExpr:
    Out += cast<NameExpr>(E)->Name;
    return;
  case NodeKind::FieldAccessExpr: {
    const auto *F = cast<FieldAccessExpr>(E);
    EmitOperand(F->Base);
    Out += '.';
    Out += F->Name;
    return;
  }
  case NodeKind::MethodCallExpr: {
    const auto *Call = cast<MethodCallExpr>(E);
    if (Call->Base) {
      EmitOperand(Call->Base);
      Out += '.';
    }
    Out += Call->Name + "(";
    for (std::size_t I = 0; I < Call->Args.size(); ++I) {
      if (I != 0)
        Out += ", ";
      emitExpr(Call->Args[I]);
    }
    Out += ')';
    return;
  }
  case NodeKind::NewObjectExpr: {
    const auto *New = cast<NewObjectExpr>(E);
    Out += "new " + New->Type.Name + "(";
    for (std::size_t I = 0; I < New->Args.size(); ++I) {
      if (I != 0)
        Out += ", ";
      emitExpr(New->Args[I]);
    }
    Out += ')';
    return;
  }
  case NodeKind::NewArrayExpr: {
    const auto *New = cast<NewArrayExpr>(E);
    Out += "new " + New->ElemType.Name;
    unsigned Printed = 0;
    for (const Expr *Dim : New->DimExprs) {
      Out += '[';
      emitExpr(Dim);
      Out += ']';
      ++Printed;
    }
    for (; Printed < New->ElemType.ArrayDims; ++Printed)
      Out += "[]";
    if (New->Init) {
      Out += ' ';
      emitExpr(New->Init);
    }
    return;
  }
  case NodeKind::ArrayInitExpr: {
    const auto *Init = cast<ArrayInitExpr>(E);
    Out += "{ ";
    for (std::size_t I = 0; I < Init->Elements.size(); ++I) {
      if (I != 0)
        Out += ", ";
      emitExpr(Init->Elements[I]);
    }
    Out += " }";
    return;
  }
  case NodeKind::ArrayAccessExpr: {
    const auto *Access = cast<ArrayAccessExpr>(E);
    EmitOperand(Access->Base);
    Out += '[';
    emitExpr(Access->Index);
    Out += ']';
    return;
  }
  case NodeKind::AssignExpr: {
    const auto *Assign = cast<AssignExpr>(E);
    emitExpr(Assign->Lhs);
    switch (Assign->Op) {
    case AssignOp::Assign:
      Out += " = ";
      break;
    case AssignOp::AddAssign:
      Out += " += ";
      break;
    case AssignOp::SubAssign:
      Out += " -= ";
      break;
    }
    emitExpr(Assign->Rhs);
    return;
  }
  case NodeKind::BinaryExpr: {
    const auto *Bin = cast<BinaryExpr>(E);
    EmitOperand(Bin->Lhs);
    Out += ' ';
    Out += binaryOpSpelling(Bin->Op);
    Out += ' ';
    EmitOperand(Bin->Rhs);
    return;
  }
  case NodeKind::UnaryExpr: {
    const auto *Un = cast<UnaryExpr>(E);
    switch (Un->Op) {
    case UnaryOp::Neg:
      Out += '-';
      break;
    case UnaryOp::Not:
      Out += '!';
      break;
    case UnaryOp::BitNot:
      Out += '~';
      break;
    case UnaryOp::PreInc:
      Out += "++";
      break;
    case UnaryOp::PreDec:
      Out += "--";
      break;
    }
    EmitOperand(Un->Operand);
    return;
  }
  case NodeKind::CastExpr: {
    const auto *Cast = cast<CastExpr>(E);
    Out += '(' + Cast->Type.str() + ") ";
    EmitOperand(Cast->Operand);
    return;
  }
  case NodeKind::ConditionalExpr: {
    const auto *Cond = cast<ConditionalExpr>(E);
    EmitOperand(Cond->Cond);
    Out += " ? ";
    EmitOperand(Cond->TrueExpr);
    Out += " : ";
    EmitOperand(Cond->FalseExpr);
    return;
  }
  case NodeKind::ThisExpr:
    Out += "this";
    return;
  case NodeKind::InstanceofExpr: {
    const auto *Inst = cast<InstanceofExpr>(E);
    EmitOperand(Inst->Operand);
    Out += " instanceof " + Inst->Type.str();
    return;
  }
  default:
    assert(false && "not an expression kind");
  }
}
