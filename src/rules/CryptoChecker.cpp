//===- rules/CryptoChecker.cpp ---------------------------------------------===//

#include "rules/CryptoChecker.h"

#include "rules/BuiltinRules.h"

#include <algorithm>
#include <mutex>
#include <stdexcept>

using namespace diffcode;
using namespace diffcode::rules;

support::LabelId ScanSymbols::intern(std::string_view Text) {
  {
    std::shared_lock<std::shared_mutex> Lock(Mutex);
    auto It = Index.find(Text);
    if (It != Index.end())
      return It->second;
  }
  std::unique_lock<std::shared_mutex> Lock(Mutex);
  auto It = Index.find(Text);
  if (It != Index.end())
    return It->second;
  auto Id = static_cast<support::LabelId>(Texts.size());
  Texts.emplace_back(Text);
  Index.emplace(Texts.back(), Id);
  return Id;
}

support::LabelId ScanSymbols::find(std::string_view Text) const {
  std::shared_lock<std::shared_mutex> Lock(Mutex);
  auto It = Index.find(Text);
  return It == Index.end() ? None : It->second;
}

const std::string &ScanSymbols::text(support::LabelId Id) const {
  std::shared_lock<std::shared_mutex> Lock(Mutex);
  if (Id >= Texts.size())
    throw std::out_of_range("ScanSymbols::text: unknown id");
  return Texts[Id];
}

std::size_t ScanSymbols::size() const {
  std::shared_lock<std::shared_mutex> Lock(Mutex);
  return Texts.size();
}

const std::string &ProjectReport::text(support::LabelId Id) const {
  if (!Symbols)
    throw std::logic_error("ProjectReport::text: no symbol table pinned");
  return Symbols->text(Id);
}

void rules::dedupeViolations(std::vector<Violation> &Violations) {
  if (Violations.size() < 2)
    return;
  std::vector<Violation> Seen;
  auto Duplicate = [&Seen](const Violation &V) {
    for (const Violation &S : Seen)
      if (S.Type == V.Type && S.Site == V.Site && S.UnitIndex == V.UnitIndex)
        return true;
    Seen.push_back(V);
    return false;
  };
  Violations.erase(
      std::remove_if(Violations.begin(), Violations.end(), Duplicate),
      Violations.end());
}

CryptoChecker::CryptoChecker() : CryptoChecker(elicitedRules()) {}

CryptoChecker::CryptoChecker(std::vector<Rule> Rules)
    : Rules(std::move(Rules)), Symbols(std::make_shared<ScanSymbols>()) {}

std::vector<Violation>
CryptoChecker::collectViolations(const Rule &R, support::LabelId RuleId,
                                 const std::vector<UnitFacts> &Units) const {
  std::vector<Violation> Out;
  for (const Rule::Clause &Clause : R.Clauses) {
    if (Clause.Negated)
      continue;
    for (unsigned UnitIndex = 0; UnitIndex < Units.size(); ++UnitIndex) {
      const UnitFacts &Facts = Units[UnitIndex];
      for (const auto &[ObjId, Events] : Facts.Merged) {
        const analysis::AbstractObject &Obj = Facts.Objects->get(ObjId);
        if (Obj.TypeName != Clause.TypeName)
          continue;
        if (Clause.Formula.eval(Events))
          Out.push_back({RuleId, Symbols->intern(Obj.TypeName),
                         Symbols->intern(Obj.siteLabel()), UnitIndex});
      }
    }
  }
  dedupeViolations(Out);
  return Out;
}

ProjectReport
CryptoChecker::checkProject(const std::vector<UnitFacts> &Units,
                            const ProjectMetadata &Meta) const {
  ProjectReport Report;
  Report.Symbols = Symbols;
  for (const Rule &R : Rules) {
    RuleVerdict Verdict;
    Verdict.Rule = Symbols->intern(R.Id);
    Verdict.Applicable = ruleApplicable(R, Units, Meta);
    if (Verdict.Applicable && ruleMatches(R, Units, Meta)) {
      Verdict.Matched = true;
      Verdict.Violations = collectViolations(R, Verdict.Rule, Units);
    }
    Report.addVerdict(std::move(Verdict));
  }
  return Report;
}
