//===- apimodel/CryptoApiModel.cpp -----------------------------------------===//

#include "apimodel/CryptoApiModel.h"

#include <cassert>
#include <limits>

using namespace diffcode::apimodel;

std::string ApiMethod::signature() const {
  return ClassName + "." + Name + "/" + std::to_string(arity());
}

void CryptoApiModel::addClass(ApiClass Class) {
  if (Class.IsTarget)
    Targets.push_back(Class.Name);
  Classes.emplace(Class.Name, std::move(Class));
}

const ApiClass *CryptoApiModel::lookupClass(std::string_view Name) const {
  auto It = Classes.find(std::string(Name));
  return It == Classes.end() ? nullptr : &It->second;
}

const ApiMethod *CryptoApiModel::lookupMethod(std::string_view ClassName,
                                              std::string_view MethodName,
                                              unsigned Arity) const {
  const ApiClass *Class = lookupClass(ClassName);
  if (!Class)
    return nullptr;
  const ApiMethod *Best = nullptr;
  unsigned BestGap = std::numeric_limits<unsigned>::max();
  for (const ApiMethod &M : Class->Methods) {
    if (M.Name != MethodName)
      continue;
    unsigned Gap = M.arity() > Arity ? M.arity() - Arity : Arity - M.arity();
    if (Gap < BestGap) {
      BestGap = Gap;
      Best = &M;
    }
  }
  return Best;
}

std::optional<std::int64_t>
CryptoApiModel::lookupConstant(std::string_view ClassName,
                               std::string_view ConstName) const {
  const ApiClass *Class = lookupClass(ClassName);
  if (!Class)
    return std::nullopt;
  auto It = Class->IntConstants.find(std::string(ConstName));
  if (It == Class->IntConstants.end())
    return std::nullopt;
  return It->second;
}

bool CryptoApiModel::isTargetClass(std::string_view Name) const {
  const ApiClass *Class = lookupClass(Name);
  return Class && Class->IsTarget;
}

namespace {

/// Builder shorthand for one method.
ApiMethod method(std::string ClassName, std::string Name,
                 std::vector<std::string> Params, std::string Ret,
                 bool IsStatic, bool IsFactory) {
  ApiMethod M;
  M.ClassName = std::move(ClassName);
  M.Name = std::move(Name);
  M.ParamTypes = std::move(Params);
  M.ReturnType = std::move(Ret);
  M.IsStatic = IsStatic;
  M.IsFactory = IsFactory;
  return M;
}

CryptoApiModel buildJavaCryptoApi() {
  CryptoApiModel Model;

  // --- Cipher (target) ---------------------------------------------------
  {
    ApiClass C;
    C.Name = "Cipher";
    C.IsTarget = true;
    C.Methods = {
        method("Cipher", "getInstance", {"String"}, "Cipher", true, true),
        method("Cipher", "getInstance", {"String", "String"}, "Cipher", true,
               true),
        method("Cipher", "init", {"int", "Key"}, "void", false, false),
        method("Cipher", "init", {"int", "Key", "AlgorithmParameterSpec"},
               "void", false, false),
        method("Cipher", "init",
               {"int", "Key", "AlgorithmParameterSpec", "SecureRandom"},
               "void", false, false),
        method("Cipher", "doFinal", {}, "byte[]", false, false),
        method("Cipher", "doFinal", {"byte[]"}, "byte[]", false, false),
        method("Cipher", "update", {"byte[]"}, "byte[]", false, false),
        method("Cipher", "wrap", {"Key"}, "byte[]", false, false),
        method("Cipher", "unwrap", {"byte[]", "String", "int"}, "Key", false,
               false),
        method("Cipher", "getIV", {}, "byte[]", false, false),
        method("Cipher", "getBlockSize", {}, "int", false, false),
    };
    C.IntConstants = {{"ENCRYPT_MODE", 1},
                      {"DECRYPT_MODE", 2},
                      {"WRAP_MODE", 3},
                      {"UNWRAP_MODE", 4},
                      {"PUBLIC_KEY", 1},
                      {"PRIVATE_KEY", 2},
                      {"SECRET_KEY", 3}};
    Model.addClass(std::move(C));
  }

  // --- IvParameterSpec (target) -------------------------------------------
  {
    ApiClass C;
    C.Name = "IvParameterSpec";
    C.IsTarget = true;
    C.Methods = {
        method("IvParameterSpec", "<init>", {"byte[]"}, "IvParameterSpec",
               false, true),
        method("IvParameterSpec", "<init>", {"byte[]", "int", "int"},
               "IvParameterSpec", false, true),
        method("IvParameterSpec", "getIV", {}, "byte[]", false, false),
    };
    Model.addClass(std::move(C));
  }

  // --- MessageDigest (target) ----------------------------------------------
  {
    ApiClass C;
    C.Name = "MessageDigest";
    C.IsTarget = true;
    C.Methods = {
        method("MessageDigest", "getInstance", {"String"}, "MessageDigest",
               true, true),
        method("MessageDigest", "getInstance", {"String", "String"},
               "MessageDigest", true, true),
        method("MessageDigest", "update", {"byte[]"}, "void", false, false),
        method("MessageDigest", "digest", {}, "byte[]", false, false),
        method("MessageDigest", "digest", {"byte[]"}, "byte[]", false, false),
        method("MessageDigest", "reset", {}, "void", false, false),
    };
    Model.addClass(std::move(C));
  }

  // --- SecretKeySpec (target) ----------------------------------------------
  {
    ApiClass C;
    C.Name = "SecretKeySpec";
    C.IsTarget = true;
    C.Methods = {
        method("SecretKeySpec", "<init>", {"byte[]", "String"},
               "SecretKeySpec", false, true),
        method("SecretKeySpec", "<init>", {"byte[]", "int", "int", "String"},
               "SecretKeySpec", false, true),
        method("SecretKeySpec", "getEncoded", {}, "byte[]", false, false),
        method("SecretKeySpec", "getAlgorithm", {}, "String", false, false),
    };
    Model.addClass(std::move(C));
  }

  // --- SecureRandom (target) -----------------------------------------------
  {
    ApiClass C;
    C.Name = "SecureRandom";
    C.IsTarget = true;
    C.Methods = {
        method("SecureRandom", "<init>", {}, "SecureRandom", false, true),
        method("SecureRandom", "<init>", {"byte[]"}, "SecureRandom", false,
               true),
        method("SecureRandom", "getInstance", {"String"}, "SecureRandom",
               true, true),
        method("SecureRandom", "getInstance", {"String", "String"},
               "SecureRandom", true, true),
        method("SecureRandom", "getInstanceStrong", {}, "SecureRandom", true,
               true),
        method("SecureRandom", "nextBytes", {"byte[]"}, "void", false, false),
        method("SecureRandom", "setSeed", {"byte[]"}, "void", false, false),
        method("SecureRandom", "setSeed", {"long"}, "void", false, false),
        method("SecureRandom", "generateSeed", {"int"}, "byte[]", false,
               false),
        method("SecureRandom", "nextInt", {}, "int", false, false),
        method("SecureRandom", "nextInt", {"int"}, "int", false, false),
    };
    Model.addClass(std::move(C));
  }

  // --- PBEKeySpec (target) -------------------------------------------------
  {
    ApiClass C;
    C.Name = "PBEKeySpec";
    C.IsTarget = true;
    C.Methods = {
        method("PBEKeySpec", "<init>", {"char[]"}, "PBEKeySpec", false, true),
        method("PBEKeySpec", "<init>", {"char[]", "byte[]", "int"},
               "PBEKeySpec", false, true),
        method("PBEKeySpec", "<init>", {"char[]", "byte[]", "int", "int"},
               "PBEKeySpec", false, true),
        method("PBEKeySpec", "getSalt", {}, "byte[]", false, false),
        method("PBEKeySpec", "getIterationCount", {}, "int", false, false),
    };
    Model.addClass(std::move(C));
  }

  // --- Auxiliary classes (not targets, needed by rules & realistic code) ---
  {
    ApiClass C;
    C.Name = "Mac";
    C.Methods = {
        method("Mac", "getInstance", {"String"}, "Mac", true, true),
        method("Mac", "getInstance", {"String", "String"}, "Mac", true, true),
        method("Mac", "init", {"Key"}, "void", false, false),
        method("Mac", "update", {"byte[]"}, "void", false, false),
        method("Mac", "doFinal", {}, "byte[]", false, false),
        method("Mac", "doFinal", {"byte[]"}, "byte[]", false, false),
    };
    Model.addClass(std::move(C));
  }
  {
    ApiClass C;
    C.Name = "KeyGenerator";
    C.Methods = {
        method("KeyGenerator", "getInstance", {"String"}, "KeyGenerator",
               true, true),
        method("KeyGenerator", "init", {"int"}, "void", false, false),
        method("KeyGenerator", "init", {"int", "SecureRandom"}, "void", false,
               false),
        method("KeyGenerator", "generateKey", {}, "SecretKey", false, false),
    };
    Model.addClass(std::move(C));
  }
  {
    ApiClass C;
    C.Name = "SecretKeyFactory";
    C.Methods = {
        method("SecretKeyFactory", "getInstance", {"String"},
               "SecretKeyFactory", true, true),
        method("SecretKeyFactory", "generateSecret", {"KeySpec"}, "SecretKey",
               false, false),
    };
    Model.addClass(std::move(C));
  }
  {
    ApiClass C;
    C.Name = "KeyPairGenerator";
    C.Methods = {
        method("KeyPairGenerator", "getInstance", {"String"},
               "KeyPairGenerator", true, true),
        method("KeyPairGenerator", "initialize", {"int"}, "void", false,
               false),
        method("KeyPairGenerator", "initialize", {"int", "SecureRandom"},
               "void", false, false),
        method("KeyPairGenerator", "generateKeyPair", {}, "KeyPair", false,
               false),
    };
    Model.addClass(std::move(C));
  }
  {
    ApiClass C;
    C.Name = "PBEParameterSpec";
    C.Methods = {
        method("PBEParameterSpec", "<init>", {"byte[]", "int"},
               "PBEParameterSpec", false, true),
    };
    Model.addClass(std::move(C));
  }
  {
    ApiClass C;
    C.Name = "GCMParameterSpec";
    C.Methods = {
        method("GCMParameterSpec", "<init>", {"int", "byte[]"},
               "GCMParameterSpec", false, true),
    };
    Model.addClass(std::move(C));
  }
  // Opaque value classes: known to the model so object labels carry a
  // type, but with no interesting methods.
  for (const char *Name : {"Key", "SecretKey", "KeySpec", "KeyPair",
                           "AlgorithmParameterSpec", "Provider"}) {
    ApiClass C;
    C.Name = Name;
    Model.addClass(std::move(C));
  }

  return Model;
}

} // namespace

const CryptoApiModel &CryptoApiModel::javaCryptoApi() {
  static const CryptoApiModel Model = buildJavaCryptoApi();
  return Model;
}
