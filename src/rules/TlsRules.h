//===- rules/TlsRules.h - TLS security rules (generality) ------------------===//
//
// Part of the DiffCode project, a reproduction of "Inferring Crypto API
// Rules from Code Changes" (PLDI'18).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Rules over the JSSE model (apimodel/TlsApiModel.h), demonstrating that
/// the rule language and CryptoChecker are API-agnostic:
///
///   T1  do not request deprecated protocols (SSL, SSLv3, TLSv1, TLSv1.1)
///   T2  do not use SSLContext.getInstance("SSL"-family) with a null-ish
///       trust configuration — approximated as init with an unknown
///       TrustManager[] argument plus a deprecated protocol
///   T3  SSLSocketFactory.getDefault() should be avoided in favor of a
///       configured SSLContext
///
//===----------------------------------------------------------------------===//

#ifndef DIFFCODE_RULES_TLSRULES_H
#define DIFFCODE_RULES_TLSRULES_H

#include "rules/Rule.h"

#include <vector>

namespace diffcode {
namespace rules {

/// The TLS rule set T1-T3.
const std::vector<Rule> &tlsRules();

} // namespace rules
} // namespace diffcode

#endif // DIFFCODE_RULES_TLSRULES_H
