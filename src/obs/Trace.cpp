//===- obs/Trace.cpp - Span-based tracing --------------------------------===//
//
// Part of the DiffCode project, a reproduction of "Inferring Crypto API
// Rules from Code Changes" (PLDI'18).
//
//===----------------------------------------------------------------------===//

#include "obs/Trace.h"

#include "support/JsonWriter.h"

#include <algorithm>
#include <cstring>
#include <map>

#include <unistd.h>

namespace diffcode {
namespace obs {

Tracer::Tracer()
    : Epoch(std::chrono::steady_clock::now()),
      SelfPid(std::uint32_t(::getpid())) {}

std::uint64_t Tracer::now() const {
  return std::uint64_t(std::chrono::duration_cast<std::chrono::nanoseconds>(
                           std::chrono::steady_clock::now() - Epoch)
                           .count());
}

std::uint64_t Tracer::epochSteadyNs() const {
  return std::uint64_t(std::chrono::duration_cast<std::chrono::nanoseconds>(
                           Epoch.time_since_epoch())
                           .count());
}

std::uint32_t Tracer::tidForThisThread() {
  // Caller holds Mutex. Small ids are assigned in first-record order,
  // which is scheduling-dependent — one reason raw traces are PerRun.
  std::thread::id Self = std::this_thread::get_id();
  for (std::size_t I = 0; I < ThreadIds.size(); ++I)
    if (ThreadIds[I] == Self)
      return std::uint32_t(I);
  ThreadIds.push_back(Self);
  return std::uint32_t(ThreadIds.size() - 1);
}

void Tracer::record(const char *Name, std::uint64_t StartNs,
                    std::uint64_t DurNs) {
  std::lock_guard Lock(Mutex);
  Events.push_back(Event{Name, StartNs, DurNs, tidForThisThread(), SelfPid});
}

void Tracer::recordForeign(std::string_view Name, std::uint64_t StartNs,
                           std::uint64_t DurNs, std::uint32_t Tid,
                           std::uint32_t Pid) {
  std::lock_guard Lock(Mutex);
  const std::string &Owned = *ForeignNames.insert(std::string(Name)).first;
  Events.push_back(Event{Owned.c_str(), StartNs, DurNs, Tid, Pid});
}

std::size_t Tracer::eventCount() const {
  std::lock_guard Lock(Mutex);
  return Events.size();
}

std::vector<Tracer::Event> Tracer::eventsFrom(std::size_t Begin) const {
  std::lock_guard Lock(Mutex);
  if (Begin >= Events.size())
    return {};
  return std::vector<Event>(Events.begin() + std::ptrdiff_t(Begin),
                            Events.end());
}

std::vector<Tracer::StageTotal> Tracer::aggregate() const {
  std::map<std::string_view, StageTotal> Totals;
  {
    std::lock_guard Lock(Mutex);
    for (const Event &E : Events) {
      StageTotal &T = Totals[E.Name];
      T.Spans += 1;
      T.TotalNs += E.DurNs;
    }
  }
  std::vector<StageTotal> Out;
  Out.reserve(Totals.size());
  for (auto &[Name, T] : Totals) {
    T.Name = std::string(Name);
    Out.push_back(std::move(T));
  }
  return Out;
}

std::string Tracer::traceJson() const {
  std::vector<Event> Sorted;
  {
    std::lock_guard Lock(Mutex);
    Sorted = Events;
  }
  std::sort(Sorted.begin(), Sorted.end(), [](const Event &A, const Event &B) {
    if (A.StartNs != B.StartNs)
      return A.StartNs < B.StartNs;
    if (A.Pid != B.Pid)
      return A.Pid < B.Pid;
    if (A.Tid != B.Tid)
      return A.Tid < B.Tid;
    return std::strcmp(A.Name, B.Name) < 0;
  });

  JsonWriter W;
  W.beginObject();
  W.key("traceEvents");
  W.beginArray();
  for (const Event &E : Sorted) {
    W.beginObject();
    W.key("name");
    W.value(E.Name);
    W.key("cat");
    W.value("diffcode");
    W.key("ph");
    W.value("X");
    // trace_event wants microseconds; keep sub-microsecond precision.
    W.key("ts");
    W.value(double(E.StartNs) / 1000.0);
    W.key("dur");
    W.value(double(E.DurNs) / 1000.0);
    W.key("pid");
    W.value(std::uint64_t(E.Pid));
    W.key("tid");
    W.value(std::uint64_t(E.Tid));
    W.endObject();
  }
  W.endArray();
  W.key("displayTimeUnit");
  W.value("ms");
  W.endObject();
  return W.take();
}

} // namespace obs
} // namespace diffcode
