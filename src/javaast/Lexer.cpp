//===- javaast/Lexer.cpp ---------------------------------------------------===//

#include "javaast/Lexer.h"

#include <cctype>

using namespace diffcode::java;

Lexer::Lexer(std::string_view Buffer, DiagnosticsEngine &Diags)
    : Buffer(Buffer), Diags(Diags) {}

char Lexer::peek(std::size_t Ahead) const {
  return Pos + Ahead < Buffer.size() ? Buffer[Pos + Ahead] : '\0';
}

char Lexer::advance() {
  char C = Buffer[Pos++];
  if (C == '\n') {
    ++Line;
    Col = 1;
  } else {
    ++Col;
  }
  return C;
}

bool Lexer::match(char Expected) {
  if (atEnd() || Buffer[Pos] != Expected)
    return false;
  advance();
  return true;
}

SourceLocation Lexer::here() const {
  return {Line, Col, static_cast<std::uint32_t>(Pos)};
}

void Lexer::skipTrivia() {
  while (!atEnd()) {
    char C = peek();
    if (C == ' ' || C == '\t' || C == '\r' || C == '\n') {
      advance();
      continue;
    }
    if (C == '/' && peek(1) == '/') {
      while (!atEnd() && peek() != '\n')
        advance();
      continue;
    }
    if (C == '/' && peek(1) == '*') {
      SourceLocation Start = here();
      advance();
      advance();
      bool Closed = false;
      while (!atEnd()) {
        if (peek() == '*' && peek(1) == '/') {
          advance();
          advance();
          Closed = true;
          break;
        }
        advance();
      }
      if (!Closed)
        Diags.error(Start, "unterminated block comment");
      continue;
    }
    return;
  }
}

Token Lexer::makeToken(TokenKind Kind, SourceLocation Loc, std::string Text) {
  Token T;
  T.Kind = Kind;
  T.Loc = Loc;
  T.Text = std::move(Text);
  return T;
}

Token Lexer::lexIdentifierOrKeyword(SourceLocation Loc) {
  std::size_t Start = Pos;
  while (!atEnd() &&
         (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_' ||
          peek() == '$'))
    advance();
  std::string Text(Buffer.substr(Start, Pos - Start));
  TokenKind Kind = lookupKeyword(Text);
  return makeToken(Kind, Loc, std::move(Text));
}

Token Lexer::lexNumber(SourceLocation Loc) {
  std::size_t Start = Pos;
  bool IsHex = false;
  // Java allows '_' separators inside numeric literals (1_000_000).
  auto IsDigitSep = [this](bool Hex) {
    char C = peek();
    if (C == '_')
      return true;
    return Hex ? std::isxdigit(static_cast<unsigned char>(C)) != 0
               : std::isdigit(static_cast<unsigned char>(C)) != 0;
  };
  if (peek() == '0' && (peek(1) == 'x' || peek(1) == 'X')) {
    advance();
    advance();
    IsHex = true;
    while (!atEnd() && IsDigitSep(true))
      advance();
  } else if (peek() == '0' && (peek(1) == 'b' || peek(1) == 'B')) {
    advance();
    advance();
    IsHex = true; // no fractional part either
    while (!atEnd() && (peek() == '0' || peek() == '1' || peek() == '_'))
      advance();
  } else {
    while (!atEnd() && IsDigitSep(false))
      advance();
  }
  // Fractional part (parsed but treated as an opaque literal; the abstract
  // domains in Figure 3 only track ints, strings, and bytes).
  if (!IsHex && peek() == '.' &&
      std::isdigit(static_cast<unsigned char>(peek(1)))) {
    advance();
    while (!atEnd() && std::isdigit(static_cast<unsigned char>(peek())))
      advance();
  }
  TokenKind Kind = TokenKind::IntLiteral;
  if (peek() == 'L' || peek() == 'l') {
    advance();
    Kind = TokenKind::LongLiteral;
  } else if (peek() == 'f' || peek() == 'F' || peek() == 'd' || peek() == 'D') {
    advance();
  }
  std::string Text(Buffer.substr(Start, Pos - Start));
  return makeToken(Kind, Loc, std::move(Text));
}

char Lexer::lexEscape() {
  if (atEnd())
    return '\\';
  char C = advance();
  switch (C) {
  case 'n':
    return '\n';
  case 't':
    return '\t';
  case 'r':
    return '\r';
  case 'b':
    return '\b';
  case 'f':
    return '\f';
  case '0':
    return '\0';
  case '\'':
  case '"':
  case '\\':
    return C;
  case 'u': {
    // \uXXXX: decode and narrow to one byte (best effort; the corpus is
    // ASCII).
    unsigned Value = 0;
    for (int I = 0; I < 4 && !atEnd() &&
                    std::isxdigit(static_cast<unsigned char>(peek()));
         ++I) {
      char H = advance();
      Value = Value * 16 +
              (std::isdigit(static_cast<unsigned char>(H))
                   ? static_cast<unsigned>(H - '0')
                   : static_cast<unsigned>(std::tolower(H) - 'a') + 10);
    }
    return static_cast<char>(Value & 0xFF);
  }
  default:
    return C;
  }
}

Token Lexer::lexString(SourceLocation Loc) {
  advance(); // opening quote
  std::string Text;
  while (!atEnd() && peek() != '"' && peek() != '\n') {
    char C = advance();
    if (C == '\\')
      C = lexEscape();
    Text += C;
  }
  if (atEnd() || peek() == '\n') {
    Diags.error(Loc, "unterminated string literal");
  } else {
    advance(); // closing quote
  }
  return makeToken(TokenKind::StringLiteral, Loc, std::move(Text));
}

Token Lexer::lexChar(SourceLocation Loc) {
  advance(); // opening quote
  std::string Text;
  if (!atEnd() && peek() != '\'') {
    char C = advance();
    if (C == '\\')
      C = lexEscape();
    Text += C;
  }
  if (!match('\''))
    Diags.error(Loc, "unterminated char literal");
  return makeToken(TokenKind::CharLiteral, Loc, std::move(Text));
}

Token Lexer::next() {
  skipTrivia();
  SourceLocation Loc = here();
  if (atEnd())
    return makeToken(TokenKind::EndOfFile, Loc, "");

  char C = peek();
  if (std::isalpha(static_cast<unsigned char>(C)) || C == '_' || C == '$')
    return lexIdentifierOrKeyword(Loc);
  if (std::isdigit(static_cast<unsigned char>(C)))
    return lexNumber(Loc);
  if (C == '"')
    return lexString(Loc);
  if (C == '\'')
    return lexChar(Loc);

  advance();
  switch (C) {
  case '{':
    return makeToken(TokenKind::LBrace, Loc, "{");
  case '}':
    return makeToken(TokenKind::RBrace, Loc, "}");
  case '(':
    return makeToken(TokenKind::LParen, Loc, "(");
  case ')':
    return makeToken(TokenKind::RParen, Loc, ")");
  case '[':
    return makeToken(TokenKind::LBracket, Loc, "[");
  case ']':
    return makeToken(TokenKind::RBracket, Loc, "]");
  case ';':
    return makeToken(TokenKind::Semi, Loc, ";");
  case ',':
    return makeToken(TokenKind::Comma, Loc, ",");
  case '.':
    if (peek() == '.' && peek(1) == '.') {
      advance();
      advance();
      return makeToken(TokenKind::Ellipsis, Loc, "...");
    }
    return makeToken(TokenKind::Dot, Loc, ".");
  case '@':
    return makeToken(TokenKind::At, Loc, "@");
  case '?':
    return makeToken(TokenKind::Question, Loc, "?");
  case ':':
    if (match(':'))
      return makeToken(TokenKind::ColonColon, Loc, "::");
    return makeToken(TokenKind::Colon, Loc, ":");
  case '=':
    if (match('='))
      return makeToken(TokenKind::EqualEqual, Loc, "==");
    return makeToken(TokenKind::Assign, Loc, "=");
  case '+':
    if (match('='))
      return makeToken(TokenKind::PlusAssign, Loc, "+=");
    if (match('+'))
      return makeToken(TokenKind::PlusPlus, Loc, "++");
    return makeToken(TokenKind::Plus, Loc, "+");
  case '-':
    if (match('='))
      return makeToken(TokenKind::MinusAssign, Loc, "-=");
    if (match('-'))
      return makeToken(TokenKind::MinusMinus, Loc, "--");
    if (match('>'))
      return makeToken(TokenKind::Arrow, Loc, "->");
    return makeToken(TokenKind::Minus, Loc, "-");
  case '*':
    if (match('='))
      return makeToken(TokenKind::StarAssign, Loc, "*=");
    return makeToken(TokenKind::Star, Loc, "*");
  case '/':
    if (match('='))
      return makeToken(TokenKind::SlashAssign, Loc, "/=");
    return makeToken(TokenKind::Slash, Loc, "/");
  case '%':
    return makeToken(TokenKind::Percent, Loc, "%");
  case '!':
    if (match('='))
      return makeToken(TokenKind::NotEqual, Loc, "!=");
    return makeToken(TokenKind::Not, Loc, "!");
  case '~':
    return makeToken(TokenKind::Tilde, Loc, "~");
  case '&':
    if (match('&'))
      return makeToken(TokenKind::AmpAmp, Loc, "&&");
    return makeToken(TokenKind::Amp, Loc, "&");
  case '|':
    if (match('|'))
      return makeToken(TokenKind::PipePipe, Loc, "||");
    return makeToken(TokenKind::Pipe, Loc, "|");
  case '^':
    return makeToken(TokenKind::Caret, Loc, "^");
  case '<':
    if (match('='))
      return makeToken(TokenKind::LessEqual, Loc, "<=");
    if (match('<'))
      return makeToken(TokenKind::Shl, Loc, "<<");
    return makeToken(TokenKind::Less, Loc, "<");
  case '>':
    if (match('='))
      return makeToken(TokenKind::GreaterEqual, Loc, ">=");
    if (match('>'))
      return makeToken(TokenKind::Shr, Loc, ">>");
    return makeToken(TokenKind::Greater, Loc, ">");
  default:
    Diags.error(Loc, std::string("unexpected character '") + C + "'");
    return makeToken(TokenKind::Unknown, Loc, std::string(1, C));
  }
}

std::vector<Token> Lexer::lexAll() {
  std::vector<Token> Tokens;
  while (true) {
    Tokens.push_back(next());
    if (Tokens.back().is(TokenKind::EndOfFile))
      return Tokens;
  }
}
