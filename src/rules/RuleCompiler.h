//===- rules/RuleCompiler.h - Compiled rule evaluation fast path -----------===//
//
// Part of the DiffCode project, a reproduction of "Inferring Crypto API
// Rules from Code Changes" (PLDI'18).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The corpus-scale fast path behind scan/Scanner. CryptoChecker's
/// reference evaluator re-parses every "Class.name/arity" signature and
/// re-allocates two substrings per (pattern, event) probe, and its
/// checkProject walks the full unit set three times per rule
/// (applicability, match, violation collection). At scanner scale that
/// dominates wall clock, so this layer:
///
///  * digests each analyzed unit once into UnitScanFacts — events with
///    pre-parsed, interned (class, method) symbols plus per-type object
///    buckets — so pattern probes become integer compares over exactly
///    the objects that can match;
///  * compiles the rule set once into CompiledRule mirrors whose
///    patterns hold interned symbols;
///  * evaluates each (rule, project) pair in a single early-exiting
///    pass, collecting violation witnesses only for matched rules.
///
/// evaluateProject is semantics-identical to CryptoChecker::checkProject
/// by construction (the scanner differential tests lock the two down
/// byte-for-byte), plus an optional demand-driven refinement pass:
/// because analysis::AnalysisResult::mergedLog unions the usage events
/// of *all* executions of a unit, a merged usage set can satisfy a
/// conjunctive formula that no single execution satisfies (the classic
/// merge artifact CryptoGuard's refinement slicing suppresses). With
/// Refine on, each violation witness of a matched rule is re-checked
/// against the per-execution event lists kept in the digest; witnesses
/// no single execution can reproduce are suppressed (counted in
/// RuleVerdict::Suppressed), and a positive clause that loses every
/// witness demotes the match. Refinement is suppression-only: it never
/// adds a violation, and with Refine off the output is byte-identical
/// to the reference evaluator.
///
//===----------------------------------------------------------------------===//

#ifndef DIFFCODE_RULES_RULECOMPILER_H
#define DIFFCODE_RULES_RULECOMPILER_H

#include "rules/CryptoChecker.h"
#include "rules/Rule.h"

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

namespace diffcode {
namespace rules {

/// One usage event with its signature parsed and interned. Events whose
/// signature does not parse as "Class.name/arity" are dropped at digest
/// time — CallPattern::matchesEvent rejects them unconditionally, so
/// they can never influence any formula.
struct ScanEvent {
  support::LabelId Class = ScanSymbols::None;
  support::LabelId Method = ScanSymbols::None;
  std::vector<analysis::AbstractValue> Args;
};

/// One abstract object of a digested unit.
struct ScanObject {
  support::LabelId Type = ScanSymbols::None;
  support::LabelId Site = ScanSymbols::None; ///< "l<line>" label.
  /// Events of the merged (all-executions) usage log, in log order.
  std::vector<ScanEvent> Merged;
  /// Per-execution event lists for the refinement pass; only populated
  /// when the unit was digested with KeepExecutions, and only for
  /// executions in which this object appears.
  std::vector<std::vector<ScanEvent>> Executions;
};

/// Digest of one analyzed compilation unit: the scanner-side mirror of
/// UnitFacts. Objects keep the merged-log iteration order (ascending
/// object id) so violation emission order matches the reference
/// evaluator exactly.
struct UnitScanFacts {
  std::vector<ScanObject> Objects;

  /// Per-type buckets of indices into Objects (each bucket ascending).
  /// Sorted by type id for lookup only — bucket *order* depends on
  /// interning interleaving and must never reach any output.
  std::vector<std::pair<support::LabelId, std::vector<std::uint32_t>>> Buckets;

  /// Indices of the objects of \p Type; nullptr when none.
  const std::vector<std::uint32_t> *bucket(support::LabelId Type) const;
};

/// Digests \p Result for scanning, interning all symbols into
/// \p Symbols. \p KeepExecutions additionally retains the
/// per-execution event lists the refinement pass needs.
UnitScanFacts digestUnit(const analysis::AnalysisResult &Result,
                         ScanSymbols &Symbols, bool KeepExecutions);

/// CallPattern with interned symbols; Args borrows from the Rule the
/// pattern was compiled from (owned by the enclosing CompiledRuleSet).
struct CompiledPattern {
  support::LabelId Class = ScanSymbols::None; ///< None = any class.
  support::LabelId Method = ScanSymbols::None;
  int Arity = -1; ///< -1 = any arity.
  const std::vector<ArgConstraint> *Args = nullptr;

  bool matches(const ScanEvent &Event) const;
};

/// ObjectFormula mirror over ScanEvent lists.
struct CompiledFormula {
  ObjectFormula::Kind K = ObjectFormula::Kind::Exists;
  CompiledPattern Pattern;
  std::vector<CompiledFormula> Children;

  bool eval(const std::vector<ScanEvent> &Events) const;
};

struct CompiledClause {
  support::LabelId Type = ScanSymbols::None;
  CompiledFormula Formula;
  bool Negated = false;
};

struct CompiledRule {
  const Rule *Source = nullptr;
  support::LabelId Id = ScanSymbols::None;
  std::vector<CompiledClause> Clauses;
  /// Interned Rule::applicableTypes(), preserving its order.
  std::vector<support::LabelId> ApplicableTypes;
  // Metadata guards, copied for locality.
  int MinSdkAtLeast = -1;
  bool RequireNoLprngFix = false;
  bool RequireAndroid = false;
};

/// An owned rule set compiled against one symbol table. Move-only:
/// compiled patterns point into the owned rules' constraint vectors
/// (stable under move of the outer vector, not under copy).
class CompiledRuleSet {
public:
  static CompiledRuleSet compile(std::vector<Rule> Rules,
                                 std::shared_ptr<ScanSymbols> Symbols);

  CompiledRuleSet(CompiledRuleSet &&) = default;
  CompiledRuleSet &operator=(CompiledRuleSet &&) = default;
  CompiledRuleSet(const CompiledRuleSet &) = delete;
  CompiledRuleSet &operator=(const CompiledRuleSet &) = delete;

  const std::vector<Rule> &rules() const { return Owned; }
  const std::vector<CompiledRule> &compiled() const { return Rules; }
  const std::shared_ptr<ScanSymbols> &symbols() const { return Symbols; }

private:
  CompiledRuleSet() = default;

  std::vector<Rule> Owned;
  std::vector<CompiledRule> Rules;
  std::shared_ptr<ScanSymbols> Symbols;
};

/// Evaluates rules of \p RS against one digested project (units are
/// borrowed — the scanner shares cached digests across projects without
/// copying). Semantics-identical to CryptoChecker::checkProject when
/// \p Refine is false; with \p Refine true the demand-driven refinement
/// pass runs on matched rules (units must have been digested with
/// KeepExecutions — a witness without execution data is conservatively
/// kept). \p RuleIndices selects a subset of RS.compiled() by index, in
/// the given order; nullptr evaluates every rule.
ProjectReport
evaluateProject(const CompiledRuleSet &RS,
                const std::vector<const UnitScanFacts *> &Units,
                const ProjectMetadata &Meta, bool Refine,
                const std::vector<std::uint32_t> *RuleIndices = nullptr);

} // namespace rules
} // namespace diffcode

#endif // DIFFCODE_RULES_RULECOMPILER_H
