//===- rules/BuiltinRules.cpp ----------------------------------------------===//

#include "rules/BuiltinRules.h"

using namespace diffcode;
using namespace diffcode::rules;

namespace {

ArgConstraint argAny(unsigned Index) {
  ArgConstraint C;
  C.Index = Index;
  C.K = ArgConstraint::Kind::Any;
  return C;
}

ArgConstraint argEquals(unsigned Index, std::vector<std::string> Values) {
  ArgConstraint C;
  C.Index = Index;
  C.K = ArgConstraint::Kind::StrEquals;
  C.Values = std::move(Values);
  return C;
}

ArgConstraint argNotEquals(unsigned Index, std::vector<std::string> Values) {
  ArgConstraint C;
  C.Index = Index;
  C.K = ArgConstraint::Kind::StrNotEquals;
  C.Values = std::move(Values);
  return C;
}

ArgConstraint argStartsWith(unsigned Index, std::vector<std::string> Values) {
  ArgConstraint C;
  C.Index = Index;
  C.K = ArgConstraint::Kind::StrStartsWith;
  C.Values = std::move(Values);
  return C;
}

ArgConstraint argIntLess(unsigned Index, std::int64_t Bound) {
  ArgConstraint C;
  C.Index = Index;
  C.K = ArgConstraint::Kind::IntLess;
  C.IntBound = Bound;
  return C;
}

ArgConstraint argConst(unsigned Index) {
  ArgConstraint C;
  C.Index = Index;
  C.K = ArgConstraint::Kind::IsConstant;
  return C;
}

CallPattern call(std::string ClassName, std::string MethodName, int Arity,
                 std::vector<ArgConstraint> Args) {
  CallPattern P;
  P.ClassName = std::move(ClassName);
  P.MethodName = std::move(MethodName);
  P.Arity = Arity;
  P.Args = std::move(Args);
  return P;
}

Rule simpleRule(std::string Id, std::string Description, std::string TypeName,
                ObjectFormula Formula) {
  Rule R;
  R.Id = std::move(Id);
  R.Description = std::move(Description);
  R.Clauses.push_back({std::move(TypeName), std::move(Formula), false});
  return R;
}

//===----------------------------------------------------------------------===//
// Shared formula fragments
//===----------------------------------------------------------------------===//

/// Cipher created in ECB mode: getInstance("AES") (ECB is the JCA default)
/// or an explicit ".../ECB..." transform.
ObjectFormula ecbCipherFormula() {
  return ObjectFormula::any({
      ObjectFormula::exists(call("Cipher", "getInstance", -1,
                                 {argEquals(1, {"AES", "DES", "AES/ECB"})})),
      ObjectFormula::exists(call(
          "Cipher", "getInstance", -1,
          {argStartsWith(1, {"AES/ECB/", "DES/ECB/", "AES/ECB",
                             "DES/ECB"})})),
  });
}

/// IvParameterSpec constructed from a program constant.
ObjectFormula staticIvFormula() {
  return ObjectFormula::exists(
      call("IvParameterSpec", "<init>", -1, {argConst(1)}));
}

/// SecretKeySpec built from a hard-coded key.
ObjectFormula staticKeyFormula() {
  return ObjectFormula::exists(
      call("SecretKeySpec", "<init>", -1, {argConst(1)}));
}

/// PBEKeySpec with iteration count below 1000 (arity-4 and arity-3 forms
/// both carry the count as the third argument).
ObjectFormula lowIterationsFormula() {
  return ObjectFormula::exists(
      call("PBEKeySpec", "<init>", -1, {argIntLess(3, 1000)}));
}

/// PBEKeySpec with a constant salt (second argument).
ObjectFormula staticSaltFormula() {
  return ObjectFormula::exists(
      call("PBEKeySpec", "<init>", -1, {argConst(2)}));
}

std::vector<Rule> buildElicited() {
  std::vector<Rule> Rules;

  // R1: Use SHA-256 instead of SHA-1.
  Rules.push_back(simpleRule(
      "R1", "Use SHA-256 instead of SHA-1", "MessageDigest",
      ObjectFormula::exists(
          call("MessageDigest", "getInstance", -1,
               {argEquals(1, {"SHA-1", "SHA1", "MD5", "MD4", "MD2"})}))));

  // R2: PBE iteration count must be >= 1000.
  Rules.push_back(simpleRule(
      "R2", "Do not use password-based encryption with iteration count < 1000",
      "PBEKeySpec", lowIterationsFormula()));

  // R3: SecureRandom should be used with SHA1PRNG: a direct constructor or
  // a getInstance with another algorithm violates.
  Rules.push_back(simpleRule(
      "R3", "SecureRandom should be used with SHA1PRNG", "SecureRandom",
      ObjectFormula::any({
          ObjectFormula::exists(call("SecureRandom", "<init>", -1, {})),
          ObjectFormula::exists(
              call("SecureRandom", "getInstance", -1,
                   {argNotEquals(1, {"SHA1PRNG", "SHA-1PRNG"})})),
      })));

  // R4: getInstanceStrong blocks on server-side Linux — avoid it.
  Rules.push_back(simpleRule(
      "R4", "SecureRandom.getInstanceStrong should be avoided", "SecureRandom",
      ObjectFormula::exists(
          call("SecureRandom", "getInstanceStrong", -1, {}))));

  // R5: Use the BouncyCastle provider for Cipher (no 128-bit key cap).
  Rules.push_back(simpleRule(
      "R5", "Use the BouncyCastle provider for Cipher", "Cipher",
      ObjectFormula::any({
          ObjectFormula::exists(
              call("Cipher", "getInstance", 1, {argAny(1)})),
          ObjectFormula::exists(call("Cipher", "getInstance", 2,
                                     {argNotEquals(2, {"BC"})})),
      })));

  // R6: Android PRNG vulnerability on SDK 16-18 without the LPRNG fix.
  {
    Rule R = simpleRule(
        "R6", "Underlying PRNG is vulnerable on Android v16-18", "SecureRandom",
        ObjectFormula::any({
            ObjectFormula::exists(call("SecureRandom", "<init>", -1, {})),
            ObjectFormula::exists(
                call("SecureRandom", "getInstance", -1, {})),
        }));
    R.RequireAndroid = true;
    R.MinSdkAtLeast = 16;
    R.RequireNoLprngFix = true;
    Rules.push_back(std::move(R));
  }

  // R7: Do not use Cipher in AES/ECB mode.
  Rules.push_back(simpleRule(
      "R7", "Do not use Cipher in AES/ECB mode", "Cipher",
      ObjectFormula::any({
          ObjectFormula::exists(call("Cipher", "getInstance", -1,
                                     {argEquals(1, {"AES", "AES/ECB"})})),
          ObjectFormula::exists(call("Cipher", "getInstance", -1,
                                     {argStartsWith(1, {"AES/ECB/"})})),
      })));

  // R8: Do not use Cipher with DES.
  Rules.push_back(simpleRule(
      "R8", "Do not use Cipher with DES", "Cipher",
      ObjectFormula::any({
          ObjectFormula::exists(call("Cipher", "getInstance", -1,
                                     {argEquals(1, {"DES"})})),
          ObjectFormula::exists(call("Cipher", "getInstance", -1,
                                     {argStartsWith(1, {"DES/"})})),
      })));

  // R9: IvParameterSpec should not be initialized with a static byte array.
  Rules.push_back(simpleRule(
      "R9", "IvParameterSpec should not use a static byte array",
      "IvParameterSpec", staticIvFormula()));

  // R10: SecretKeySpec should not be static.
  Rules.push_back(simpleRule("R10", "SecretKeySpec should not be static",
                             "SecretKeySpec", staticKeyFormula()));

  // R11: Do not use password-based encryption with a static salt.
  Rules.push_back(simpleRule(
      "R11", "Do not use password-based encryption with a static salt",
      "PBEKeySpec", staticSaltFormula()));

  // R12: Do not seed SecureRandom statically.
  Rules.push_back(simpleRule(
      "R12", "Do not use a static SecureRandom seed", "SecureRandom",
      ObjectFormula::exists(
          call("SecureRandom", "setSeed", -1, {argConst(1)}))));

  // R13: Missing integrity check after symmetric key exchange (composite).
  {
    Rule R;
    R.Id = "R13";
    R.Description = "Missing integrity check after symmetric key exchange";
    R.Clauses.push_back(
        {"Cipher",
         ObjectFormula::exists(call("Cipher", "getInstance", -1,
                                    {argStartsWith(1, {"AES/CBC"})})),
         false});
    R.Clauses.push_back(
        {"Cipher",
         ObjectFormula::any({
             ObjectFormula::exists(call("Cipher", "getInstance", -1,
                                        {argEquals(1, {"RSA"})})),
             ObjectFormula::exists(call("Cipher", "getInstance", -1,
                                        {argStartsWith(1, {"RSA/"})})),
         }),
         false});
    R.Clauses.push_back(
        {"Mac",
         ObjectFormula::exists(call("Mac", "getInstance", -1,
                                    {argStartsWith(1, {"Hmac", "HMAC",
                                                       "HMac"})})),
         true});
    Rules.push_back(std::move(R));
  }

  return Rules;
}

std::vector<Rule> buildCryptoLint() {
  std::vector<Rule> Rules;
  Rules.push_back(simpleRule("CL1", "Do not use ECB mode for encryption",
                             "Cipher", ecbCipherFormula()));
  Rules.push_back(simpleRule("CL2",
                             "Do not use a non-random IV for CBC encryption",
                             "IvParameterSpec", staticIvFormula()));
  Rules.push_back(simpleRule("CL3", "Do not use hard-coded encryption keys",
                             "SecretKeySpec", staticKeyFormula()));
  Rules.push_back(simpleRule(
      "CL4", "Do not use fewer than 1000 iterations for PBE", "PBEKeySpec",
      lowIterationsFormula()));
  Rules.push_back(simpleRule("CL5", "Do not use a static salt for PBE",
                             "PBEKeySpec", staticSaltFormula()));
  return Rules;
}

} // namespace

const std::vector<Rule> &diffcode::rules::elicitedRules() {
  static const std::vector<Rule> Rules = buildElicited();
  return Rules;
}

const std::vector<Rule> &diffcode::rules::cryptoLintRules() {
  static const std::vector<Rule> Rules = buildCryptoLint();
  return Rules;
}

const Rule *diffcode::rules::findRule(const std::string &Id) {
  for (const Rule &R : elicitedRules())
    if (R.Id == Id)
      return &R;
  for (const Rule &R : cryptoLintRules())
    if (R.Id == Id)
      return &R;
  return nullptr;
}
