//===- support/ThreadPool.cpp ----------------------------------------------===//

#include "support/ThreadPool.h"

#include <algorithm>

using namespace diffcode;
using namespace diffcode::support;

unsigned support::resolveThreads(unsigned Requested) {
  if (Requested != 0)
    return Requested;
  return std::max(1u, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(unsigned ThreadCount) {
  unsigned Resolved = resolveThreads(ThreadCount);
  Workers.reserve(Resolved - 1);
  for (unsigned I = 1; I < Resolved; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    ShuttingDown = true;
  }
  WakeCV.notify_all();
  for (std::thread &T : Workers)
    T.join();
}

void ThreadPool::runChunks(
    const std::function<void(std::size_t, std::size_t)> &Body) {
  while (!Failed.load(std::memory_order_relaxed)) {
    std::size_t Begin = Cursor.fetch_add(Chunk, std::memory_order_relaxed);
    if (Begin >= End)
      return;
    std::size_t Stop = std::min(End, Begin + Chunk);
    try {
      Body(Begin, Stop);
    } catch (...) {
      std::lock_guard<std::mutex> Lock(Mutex);
      if (!FirstError)
        FirstError = std::current_exception();
      Failed.store(true, std::memory_order_relaxed);
    }
  }
}

void ThreadPool::workerLoop() {
  std::uint64_t SeenGeneration = 0;
  std::unique_lock<std::mutex> Lock(Mutex);
  while (true) {
    WakeCV.wait(Lock, [&] {
      return ShuttingDown || Generation != SeenGeneration;
    });
    if (ShuttingDown)
      return;
    SeenGeneration = Generation;
    const auto *Batch = Body;
    FaultContext Ctx = BatchFaults;
    Lock.unlock();
    {
      // Mirror the caller's fault-injection context so seeded campaigns
      // fire identically whether a chunk runs here or on the caller.
      FaultScope Scope(Ctx);
      runChunks(*Batch);
    }
    Lock.lock();
    if (--Busy == 0)
      DoneCV.notify_all();
  }
}

void ThreadPool::parallelForChunked(
    std::size_t N, std::size_t ChunkSize,
    const std::function<void(std::size_t, std::size_t)> &Fn) {
  if (N == 0)
    return;
  if (ChunkSize == 0)
    ChunkSize = 1;
  if (Workers.empty() || N <= ChunkSize) {
    Fn(0, N);
    return;
  }
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Body = &Fn;
    Cursor.store(0, std::memory_order_relaxed);
    End = N;
    Chunk = ChunkSize;
    Busy = static_cast<unsigned>(Workers.size());
    FirstError = nullptr;
    Failed.store(false, std::memory_order_relaxed);
    BatchFaults = FaultContext::current();
    ++Generation;
  }
  WakeCV.notify_all();
  runChunks(Fn);
  std::unique_lock<std::mutex> Lock(Mutex);
  DoneCV.wait(Lock, [&] { return Busy == 0; });
  Body = nullptr;
  if (FirstError) {
    std::exception_ptr E = FirstError;
    FirstError = nullptr;
    std::rethrow_exception(E);
  }
}

void ThreadPool::parallelFor(std::size_t N,
                             const std::function<void(std::size_t)> &Fn) {
  if (N == 0)
    return;
  std::size_t ChunkSize = std::max<std::size_t>(
      1, N / (static_cast<std::size_t>(threadCount()) * 8));
  parallelForChunked(N, ChunkSize,
                     [&Fn](std::size_t Begin, std::size_t Stop) {
                       for (std::size_t I = Begin; I < Stop; ++I)
                         Fn(I);
                     });
}
