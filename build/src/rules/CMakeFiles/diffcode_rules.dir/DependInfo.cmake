
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rules/BuiltinRules.cpp" "src/rules/CMakeFiles/diffcode_rules.dir/BuiltinRules.cpp.o" "gcc" "src/rules/CMakeFiles/diffcode_rules.dir/BuiltinRules.cpp.o.d"
  "/root/repo/src/rules/ChangeClassifier.cpp" "src/rules/CMakeFiles/diffcode_rules.dir/ChangeClassifier.cpp.o" "gcc" "src/rules/CMakeFiles/diffcode_rules.dir/ChangeClassifier.cpp.o.d"
  "/root/repo/src/rules/CryptoChecker.cpp" "src/rules/CMakeFiles/diffcode_rules.dir/CryptoChecker.cpp.o" "gcc" "src/rules/CMakeFiles/diffcode_rules.dir/CryptoChecker.cpp.o.d"
  "/root/repo/src/rules/Rule.cpp" "src/rules/CMakeFiles/diffcode_rules.dir/Rule.cpp.o" "gcc" "src/rules/CMakeFiles/diffcode_rules.dir/Rule.cpp.o.d"
  "/root/repo/src/rules/RuleSuggestion.cpp" "src/rules/CMakeFiles/diffcode_rules.dir/RuleSuggestion.cpp.o" "gcc" "src/rules/CMakeFiles/diffcode_rules.dir/RuleSuggestion.cpp.o.d"
  "/root/repo/src/rules/TlsRules.cpp" "src/rules/CMakeFiles/diffcode_rules.dir/TlsRules.cpp.o" "gcc" "src/rules/CMakeFiles/diffcode_rules.dir/TlsRules.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/diffcode_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/usage/CMakeFiles/diffcode_usage.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/diffcode_support.dir/DependInfo.cmake"
  "/root/repo/build/src/javaast/CMakeFiles/diffcode_javaast.dir/DependInfo.cmake"
  "/root/repo/build/src/apimodel/CMakeFiles/diffcode_apimodel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
