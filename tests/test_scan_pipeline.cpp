//===- tests/test_scan_pipeline.cpp - Streaming rule scanner --------------===//
//
// Part of the DiffCode project, a reproduction of "Inferring Crypto API
// Rules from Code Changes" (PLDI'18).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The scan/ pipeline against its ground truth, the retained serial
/// CryptoChecker: whole-corpus byte-identity at 1/2/8 threads (streamed
/// and batch-serialized), edge cases (empty project, empty request,
/// applicable-but-unmatched, hostile project names and garbage units),
/// fault-campaign determinism across thread counts, the unit cache's
/// transparency, rule filtering, and the demand-driven refinement
/// semantics on hand-built abstract state where merged-log and
/// per-execution verdicts genuinely diverge.
///
//===----------------------------------------------------------------------===//

#include "scan/ScanReportWriter.h"
#include "scan/Scanner.h"

#include "corpus/CorpusGenerator.h"
#include "rules/BuiltinRules.h"
#include "rules/CryptoChecker.h"
#include "rules/RuleCompiler.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace diffcode;
using namespace diffcode::scan;

namespace {

const apimodel::CryptoApiModel &api() {
  return apimodel::CryptoApiModel::javaCryptoApi();
}

corpus::Corpus smallCorpus(unsigned Projects = 24, std::uint64_t Seed = 7) {
  corpus::CorpusOptions Opts;
  Opts.NumProjects = Projects;
  Opts.Seed = Seed;
  return corpus::CorpusGenerator(Opts).generate();
}

ScanRequest requestOver(const corpus::Corpus &C, bool Refine = false) {
  ScanRequest Request;
  for (const corpus::Project &P : C.Projects)
    Request.Projects.push_back(&P);
  Request.Refine = Refine;
  return Request;
}

/// The ground truth: the serial CryptoChecker loop composed into a
/// ScanReport (the shape bench/micro_scan.cpp gates on).
ScanReport serialReference(const std::vector<const corpus::Project *> &Projects) {
  core::DiffCode System(api());
  rules::CryptoChecker Checker;
  ScanReport Report;
  Report.Symbols = Checker.symbols();
  for (const corpus::Project *P : Projects) {
    ProjectScanRecord Rec;
    Rec.Project = P->Name;
    Rec.Units = static_cast<unsigned>(P->Files.size());
    std::vector<analysis::AnalysisResult> Results;
    for (const corpus::ProjectFile &File : P->Files) {
      core::DiffCode::SourceAnalysis SA = System.analyzeSourceChecked(File.Code);
      if (SA.Status > Rec.Status) {
        Rec.Status = SA.Status;
        Rec.Detail = std::move(SA.Detail);
      }
      Results.push_back(std::move(SA.Result));
    }
    std::vector<rules::UnitFacts> Units;
    for (const analysis::AnalysisResult &Result : Results)
      Units.push_back(rules::UnitFacts::from(Result));
    Rec.Report = Checker.checkProject(Units, P->Meta);
    Report.Projects.push_back(std::move(Rec));
  }
  for (const rules::Rule &R : Checker.rules())
    Report.Rules.push_back({Checker.symbols()->intern(R.Id), 0, 0, 0, 0});
  for (const ProjectScanRecord &Rec : Report.Projects) {
    ++Report.StatusCounts[static_cast<unsigned>(Rec.Status)];
    if (Rec.Report.anyMatch())
      ++Report.ProjectsWithViolation;
    const std::vector<rules::RuleVerdict> &Verdicts = Rec.Report.verdicts();
    for (std::size_t J = 0; J < Verdicts.size(); ++J) {
      RuleTotal &T = Report.Rules[J];
      T.Applicable += Verdicts[J].Applicable ? 1 : 0;
      T.Matched += Verdicts[J].Matched ? 1 : 0;
      T.Violations += Verdicts[J].Violations.size();
      T.Suppressed += Verdicts[J].Suppressed;
    }
  }
  return Report;
}

/// Streams a scan through ScanReportWriter and returns both the streamed
/// bytes and the report.
std::string streamScan(const Scanner &S, const ScanRequest &Request,
                       ScanReport *Out = nullptr) {
  std::ostringstream OS;
  ScanReportWriter Writer(OS);
  ScanReport Report = S.scan(Request, &Writer);
  Writer.finish(Report);
  if (Out)
    *Out = std::move(Report);
  return OS.str();
}

bool balancedJson(const std::string &Json) {
  long Depth = 0;
  bool InString = false, Escaped = false;
  for (char C : Json) {
    if (Escaped) {
      Escaped = false;
      continue;
    }
    if (C == '\\') {
      Escaped = true;
      continue;
    }
    if (C == '"') {
      InString = !InString;
      continue;
    }
    if (InString)
      continue;
    if (C == '{' || C == '[')
      ++Depth;
    if (C == '}' || C == ']')
      if (--Depth < 0)
        return false;
  }
  return Depth == 0 && !InString;
}

corpus::Project projectOf(std::string Name,
                          std::vector<std::pair<std::string, std::string>> Files,
                          rules::ProjectMetadata Meta = {}) {
  corpus::Project P;
  P.Name = std::move(Name);
  P.Meta = Meta;
  for (auto &[FileName, Code] : Files)
    P.Files.push_back({std::move(FileName), std::move(Code)});
  return P;
}

} // namespace

//===----------------------------------------------------------------------===//
// Differential: scanner vs the serial checker, all thread counts
//===----------------------------------------------------------------------===//

TEST(ScanDifferential, ByteIdenticalToSerialCheckerAtAllThreadCounts) {
  corpus::Corpus C = smallCorpus();
  ScanRequest Request = requestOver(C);
  std::string Reference = scanReportToJson(serialReference(Request.Projects));
  ASSERT_FALSE(Reference.empty());
  ASSERT_TRUE(balancedJson(Reference));

  for (unsigned Threads : {1u, 2u, 8u}) {
    ScanConfig Config;
    Config.Threads = Threads;
    Scanner S(api(), Config);
    ScanReport Report;
    std::string Streamed = streamScan(S, Request, &Report);
    EXPECT_EQ(Streamed, Reference) << Threads << " threads (streamed)";
    EXPECT_EQ(scanReportToJson(Report), Reference)
        << Threads << " threads (batch)";
  }
}

TEST(ScanDifferential, SinkSeesStrictlyAscendingIndices) {
  corpus::Corpus C = smallCorpus(16, 3);
  struct OrderSink : ScanSink {
    std::vector<std::size_t> Seen;
    void onProject(std::size_t Index, const ProjectScanRecord &) override {
      Seen.push_back(Index);
    }
  } Sink;
  ScanConfig Config;
  Config.Threads = 8;
  Scanner S(api(), Config);
  ScanReport Report = S.scan(requestOver(C), &Sink);
  ASSERT_EQ(Sink.Seen.size(), C.Projects.size());
  for (std::size_t I = 0; I < Sink.Seen.size(); ++I)
    EXPECT_EQ(Sink.Seen[I], I);
  EXPECT_EQ(Report.Projects.size(), C.Projects.size());
}

//===----------------------------------------------------------------------===//
// Edge cases
//===----------------------------------------------------------------------===//

TEST(ScanEdgeCases, EmptyRequestYieldsEmptyWellFormedReport) {
  Scanner S(api(), ScanConfig());
  ScanReport Report = S.scan(ScanRequest());
  EXPECT_TRUE(Report.Projects.empty());
  EXPECT_EQ(Report.ProjectsWithViolation, 0u);
  ASSERT_EQ(Report.Rules.size(), rules::elicitedRules().size());
  for (const RuleTotal &T : Report.Rules) {
    EXPECT_EQ(T.Applicable, 0u);
    EXPECT_EQ(T.Violations, 0u);
  }
  std::string Json = scanReportToJson(Report);
  EXPECT_TRUE(balancedJson(Json));
  EXPECT_NE(Json.find("\"projects\":["), std::string::npos);
}

TEST(ScanEdgeCases, EmptyProjectIsOkWithEmptyVerdicts) {
  corpus::Project Empty = projectOf("hollow", {});
  ScanRequest Request;
  Request.Projects = {&Empty};
  Scanner S(api(), ScanConfig());
  ScanReport Report = S.scan(Request);
  ASSERT_EQ(Report.Projects.size(), 1u);
  const ProjectScanRecord &Rec = Report.Projects[0];
  EXPECT_EQ(Rec.Status, core::ChangeStatus::Ok);
  EXPECT_EQ(Rec.Units, 0u);
  EXPECT_FALSE(Rec.Report.anyMatch());
  // Every rule still gets a verdict; none applicable on zero units.
  ASSERT_EQ(Rec.Report.verdicts().size(), rules::elicitedRules().size());
  for (const rules::RuleVerdict &V : Rec.Report.verdicts())
    EXPECT_FALSE(V.Applicable);
}

TEST(ScanEdgeCases, ApplicableButUnmatchedEverywhere) {
  // A safe MessageDigest use: R1 (no SHA-1/MD5) is applicable (the type
  // is present) but unmatched (the formula finds no weak algorithm).
  corpus::Project Safe = projectOf(
      "safe",
      {{"Safe.java", "class Safe { void m() throws Exception { MessageDigest "
                     "d = MessageDigest.getInstance(\"SHA-256\"); } }"}});
  ScanRequest Request;
  Request.Projects = {&Safe};
  Scanner S(api(), ScanConfig());
  ScanReport Report = S.scan(Request);
  ASSERT_EQ(Report.Projects.size(), 1u);
  const ProjectScanRecord &Rec = Report.Projects[0];
  bool SawApplicableUnmatched = false;
  for (const rules::RuleVerdict &V : Rec.Report.verdicts())
    if (Rec.Report.text(V.Rule) == "R1") {
      EXPECT_TRUE(V.Applicable);
      EXPECT_FALSE(V.Matched);
      EXPECT_TRUE(V.Violations.empty());
      SawApplicableUnmatched = V.Applicable && !V.Matched;
    }
  EXPECT_TRUE(SawApplicableUnmatched);
  EXPECT_FALSE(Rec.Report.anyMatch());
  EXPECT_EQ(Report.ProjectsWithViolation, 0u);
}

TEST(ScanEdgeCases, HostileNamesAndGarbageUnitsStayContainedAndEscaped) {
  // Adversarial project names (test_adversarial_labels' vocabulary) over
  // garbage units: records must be contained per project and the JSON
  // must stay structurally valid with everything escaped.
  const char *Hostile[] = {
      "proj\"quoted\"", "back\\slash", "{\"json\": [1,2]}",
      "ключ-π-鍵",      "line1\nline2", "tab\there",
  };
  std::vector<corpus::Project> Projects;
  for (const char *Name : Hostile)
    Projects.push_back(projectOf(
        Name, {{"Broken.java", "class { Cipher c = getInstance(\"unterminated"},
               {"Ok.java", "class Ok { void m() { Cipher c = "
                           "Cipher.getInstance(\"DES\"); } }"}}));
  ScanRequest Request;
  for (const corpus::Project &P : Projects)
    Request.Projects.push_back(&P);
  Scanner S(api(), ScanConfig());
  ScanReport Report;
  std::string Json = streamScan(S, Request, &Report);
  EXPECT_TRUE(balancedJson(Json));
  ASSERT_EQ(Report.Projects.size(), std::size(Hostile));
  for (const ProjectScanRecord &Rec : Report.Projects)
    EXPECT_NE(Rec.Status, core::ChangeStatus::Ok) << Rec.Project;
  // The streamed and batch serializations agree even on hostile content.
  EXPECT_EQ(Json, scanReportToJson(Report));
}

TEST(ScanEdgeCases, RuleFilterSelectsSubsetInSetOrder) {
  corpus::Corpus C = smallCorpus(8, 11);
  ScanRequest Request = requestOver(C);
  Request.RuleFilter = {"R5", "R1", "no-such-rule"};
  Scanner S(api(), ScanConfig());
  ScanReport Report = S.scan(Request);
  // Verdicts follow rule-set order (R1 before R5), not filter order;
  // unknown ids select nothing.
  ASSERT_EQ(Report.Rules.size(), 2u);
  EXPECT_EQ(Report.text(Report.Rules[0].Rule), "R1");
  EXPECT_EQ(Report.text(Report.Rules[1].Rule), "R5");
  for (const ProjectScanRecord &Rec : Report.Projects) {
    ASSERT_EQ(Rec.Report.verdicts().size(), 2u);
    EXPECT_EQ(Rec.Report.text(Rec.Report.verdicts()[0].Rule), "R1");
    EXPECT_EQ(Rec.Report.text(Rec.Report.verdicts()[1].Rule), "R5");
  }
}

//===----------------------------------------------------------------------===//
// Unit cache transparency
//===----------------------------------------------------------------------===//

TEST(ScanCache, WarmAndColdAndUncachedReportsAreByteIdentical) {
  corpus::Corpus C = smallCorpus(10, 5);
  ScanRequest Request = requestOver(C);

  Scanner Cached(api(), ScanConfig());
  std::string Cold = scanReportToJson(Cached.scan(Request));
  EXPECT_GT(Cached.cachedUnits(), 0u);
  std::string Warm = scanReportToJson(Cached.scan(Request));
  EXPECT_EQ(Cold, Warm);

  ScanConfig NoCache;
  NoCache.CacheUnits = false;
  Scanner Uncached(api(), NoCache);
  EXPECT_EQ(scanReportToJson(Uncached.scan(Request)), Cold);
  EXPECT_EQ(Uncached.cachedUnits(), 0u);
}

//===----------------------------------------------------------------------===//
// Fault campaigns
//===----------------------------------------------------------------------===//

TEST(ScanFaults, CampaignIsDeterministicAcrossThreadCounts) {
  corpus::Corpus C = smallCorpus(12, 9);
  ScanRequest Request = requestOver(C);
  std::string Baseline;
  for (unsigned Threads : {1u, 2u, 8u}) {
    ScanConfig Config;
    Config.Threads = Threads;
    Config.Faults.Seed = 1234;
    Config.Faults.Rate = 0.5;
    Config.Faults.SiteMask =
        support::faultSiteBit(support::FaultSite::ScanProject);
    Scanner S(api(), Config);
    std::string Json = scanReportToJson(S.scan(Request));
    if (Baseline.empty())
      Baseline = Json;
    else
      EXPECT_EQ(Json, Baseline) << Threads << " threads";
  }
  // The campaign actually bit: some project must be AnalysisThrow.
  EXPECT_NE(Baseline.find("\"status\":\"analysis-throw\""), std::string::npos);
}

TEST(ScanFaults, DisabledPlanMatchesNoPlanByteForByte) {
  corpus::Corpus C = smallCorpus(6, 2);
  ScanRequest Request = requestOver(C);
  Scanner Plain(api(), ScanConfig());
  ScanConfig Disabled;
  Disabled.Faults.Seed = 99; // Rate stays 0: disabled
  Scanner WithPlan(api(), Disabled);
  EXPECT_EQ(scanReportToJson(Plain.scan(Request)),
            scanReportToJson(WithPlan.scan(Request)));
}

//===----------------------------------------------------------------------===//
// Refinement on hand-built abstract state
//===----------------------------------------------------------------------===//

namespace {

/// Builds the divergence refinement exists to catch: one Cipher object
/// whose merged log satisfies getInstance AND init, but whose two
/// executions each carry only one of them — the merged-log match is an
/// artifact no single execution reproduces.
analysis::AnalysisResult splitExecutionResult(bool AlsoSatisfiable) {
  analysis::AnalysisResult Result;
  java::SourceLocation L5;
  L5.Line = 5;
  L5.Column = 1;
  unsigned Obj = Result.Objects.getOrCreate(L5, "Cipher");
  analysis::UsageEvent GetInstance{
      "Cipher.getInstance/1", {analysis::AbstractValue::strConst("DES")}};
  analysis::UsageEvent Init{"Cipher.init/1",
                            {analysis::AbstractValue::intConst(1)}};
  analysis::UsageLog Exec1, Exec2;
  Exec1[Obj] = {GetInstance};
  Exec2[Obj] = {Init};
  Result.Executions.push_back(std::move(Exec1));
  Result.Executions.push_back(std::move(Exec2));
  if (AlsoSatisfiable) {
    // A second object that genuinely does both in one execution.
    java::SourceLocation L9;
    L9.Line = 9;
    L9.Column = 1;
    unsigned Real = Result.Objects.getOrCreate(L9, "Cipher");
    analysis::UsageLog Exec3;
    Exec3[Real] = {GetInstance, Init};
    Result.Executions.push_back(std::move(Exec3));
  }
  return Result;
}

rules::Rule bothCallsRule() {
  rules::CallPattern GetInstance;
  GetInstance.ClassName = "Cipher";
  GetInstance.MethodName = "getInstance";
  rules::CallPattern Init;
  Init.ClassName = "Cipher";
  Init.MethodName = "init";
  rules::Rule R;
  R.Id = "X1";
  R.Description = "getInstance and init on one object";
  rules::Rule::Clause C;
  C.TypeName = "Cipher";
  C.Formula = rules::ObjectFormula::all(
      {rules::ObjectFormula::exists(std::move(GetInstance)),
       rules::ObjectFormula::exists(std::move(Init))});
  R.Clauses.push_back(std::move(C));
  return R;
}

} // namespace

TEST(ScanRefinement, MergedLogArtifactIsDemotedWithRefinementOn) {
  analysis::AnalysisResult Result = splitExecutionResult(false);
  auto Symbols = std::make_shared<rules::ScanSymbols>();
  rules::CompiledRuleSet Set =
      rules::CompiledRuleSet::compile({bothCallsRule()}, Symbols);
  rules::UnitScanFacts Facts =
      rules::digestUnit(Result, *Symbols, /*KeepExecutions=*/true);

  rules::ProjectReport Plain =
      rules::evaluateProject(Set, {&Facts}, {}, /*Refine=*/false);
  ASSERT_EQ(Plain.verdicts().size(), 1u);
  EXPECT_TRUE(Plain.verdicts()[0].Matched);
  EXPECT_EQ(Plain.verdicts()[0].Violations.size(), 1u);

  rules::ProjectReport Refined =
      rules::evaluateProject(Set, {&Facts}, {}, /*Refine=*/true);
  ASSERT_EQ(Refined.verdicts().size(), 1u);
  const rules::RuleVerdict &V = Refined.verdicts()[0];
  EXPECT_TRUE(V.Applicable); // applicability never refines
  EXPECT_FALSE(V.Matched);   // the only witness was a merge artifact
  EXPECT_TRUE(V.Violations.empty());
  EXPECT_EQ(V.Suppressed, 1u);
  EXPECT_FALSE(Refined.anyMatch());
}

TEST(ScanRefinement, ReproducibleWitnessSurvivesNextToSuppressedOne) {
  analysis::AnalysisResult Result = splitExecutionResult(true);
  auto Symbols = std::make_shared<rules::ScanSymbols>();
  rules::CompiledRuleSet Set =
      rules::CompiledRuleSet::compile({bothCallsRule()}, Symbols);
  rules::UnitScanFacts Facts = rules::digestUnit(Result, *Symbols, true);

  rules::ProjectReport Plain =
      rules::evaluateProject(Set, {&Facts}, {}, false);
  ASSERT_EQ(Plain.verdicts()[0].Violations.size(), 2u);

  rules::ProjectReport Refined =
      rules::evaluateProject(Set, {&Facts}, {}, true);
  const rules::RuleVerdict &V = Refined.verdicts()[0];
  EXPECT_TRUE(V.Matched); // one genuine witness keeps the match
  ASSERT_EQ(V.Violations.size(), 1u);
  EXPECT_EQ(Refined.text(V.Violations[0].Site), "l9");
  EXPECT_EQ(V.Suppressed, 1u);
}

TEST(ScanRefinement, ObjectsWithoutExecutionDataAreConservativelyKept) {
  // Digesting with KeepExecutions=false leaves no per-execution lists;
  // refinement cannot disprove anything and must keep every witness.
  analysis::AnalysisResult Result = splitExecutionResult(false);
  auto Symbols = std::make_shared<rules::ScanSymbols>();
  rules::CompiledRuleSet Set =
      rules::CompiledRuleSet::compile({bothCallsRule()}, Symbols);
  rules::UnitScanFacts Facts =
      rules::digestUnit(Result, *Symbols, /*KeepExecutions=*/false);
  rules::ProjectReport Refined =
      rules::evaluateProject(Set, {&Facts}, {}, /*Refine=*/true);
  const rules::RuleVerdict &V = Refined.verdicts()[0];
  EXPECT_TRUE(V.Matched);
  EXPECT_EQ(V.Violations.size(), 1u);
  EXPECT_EQ(V.Suppressed, 0u);
}

TEST(ScanRefinement, RefineOffScanOfRealCorpusIsByteIdenticalToBatch) {
  // End-to-end: a scanner with Refine=false must equal the serial
  // checker (covered above) and a Refine=true scan must only ever
  // shrink violation sets.
  corpus::Corpus C = smallCorpus(10, 21);
  Scanner S(api(), ScanConfig());
  ScanReport Plain = S.scan(requestOver(C, false));
  ScanReport Refined = S.scan(requestOver(C, true));
  ASSERT_EQ(Plain.Projects.size(), Refined.Projects.size());
  for (std::size_t I = 0; I < Plain.Projects.size(); ++I) {
    const auto &Before = Plain.Projects[I].Report.verdicts();
    const auto &After = Refined.Projects[I].Report.verdicts();
    ASSERT_EQ(Before.size(), After.size());
    for (std::size_t J = 0; J < Before.size(); ++J) {
      EXPECT_EQ(After[J].Applicable, Before[J].Applicable);
      EXPECT_EQ(After[J].Violations.size() + After[J].Suppressed,
                Before[J].Violations.size());
    }
  }
}

//===----------------------------------------------------------------------===//
// Metrics
//===----------------------------------------------------------------------===//

TEST(ScanMetrics, ObservedRunCarriesPerRuleCountersAndUnobservedIsPrefix) {
  corpus::Corpus C = smallCorpus(6, 13);
  ScanRequest Request = requestOver(C);

  Scanner Plain(api(), ScanConfig());
  std::string Unobserved = scanReportToJson(Plain.scan(Request));

  obs::Observer Obs;
  ScanConfig Observed;
  Observed.Metrics = &Obs;
  Scanner S(api(), Observed);
  ScanReport Report = S.scan(Request);
  ASSERT_FALSE(Report.Metrics.empty());
  std::string Snapshot = Report.Metrics.json();
  for (const char *Name : {"scan.projects", "scan.units", "scan.rule.R1.applicable",
                           "scan.rule.R13.violations", "threadpool.batches"})
    EXPECT_NE(Snapshot.find(Name), std::string::npos) << Name;

  // The unobserved report is a byte prefix of the observed one: metrics
  // are additive, never reshaping.
  std::string ObservedJson = scanReportToJson(Report);
  ASSERT_GT(ObservedJson.size(), Unobserved.size());
  EXPECT_EQ(ObservedJson.compare(0, Unobserved.size() - 1, Unobserved, 0,
                                 Unobserved.size() - 1),
            0);
}
