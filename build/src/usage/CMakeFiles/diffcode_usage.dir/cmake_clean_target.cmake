file(REMOVE_RECURSE
  "libdiffcode_usage.a"
)
