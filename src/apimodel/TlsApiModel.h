//===- apimodel/TlsApiModel.h - JSSE/TLS API model (generality) ------------===//
//
// Part of the DiffCode project, a reproduction of "Inferring Crypto API
// Rules from Code Changes" (PLDI'18).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper closes with "while we focus on crypto APIs, the approach is
/// general and can be applied to other types of APIs". This model
/// exercises that claim: the JSSE TLS surface (SSLContext,
/// SSLSocketFactory, HostnameVerifier) plugged into the same analyzer,
/// DAG abstraction, filters, and rule language — nothing else changes.
///
//===----------------------------------------------------------------------===//

#ifndef DIFFCODE_APIMODEL_TLSAPIMODEL_H
#define DIFFCODE_APIMODEL_TLSAPIMODEL_H

#include "apimodel/CryptoApiModel.h"

namespace diffcode {
namespace apimodel {

/// The JSSE model. Target classes: SSLContext, SSLSocketFactory.
const CryptoApiModel &javaTlsApi();

} // namespace apimodel
} // namespace diffcode

#endif // DIFFCODE_APIMODEL_TLSAPIMODEL_H
