# Empty compiler generated dependencies file for test_abstract_value.
# This may be replaced when dependencies are built.
