//===- support/Process.h - POSIX subprocess & pipe helpers -----------------===//
//
// Part of the DiffCode project, a reproduction of "Inferring Crypto API
// Rules from Code Changes" (PLDI'18).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Thin, EINTR-correct wrappers around the POSIX process and pipe calls
/// the supervised execution layer (src/exec) is built on. Everything here
/// is policy-free: fork a child that runs a callable and _exits, wait for
/// it with a classified exit status, and move bytes through pipe fds with
/// proper short-read/short-write loops. Signal handling is explicit —
/// SIGPIPE is never a correct way to learn a peer died, so the supervisor
/// installs ScopedSigpipeIgnore and handles EPIPE as a return value.
///
//===----------------------------------------------------------------------===//

#ifndef DIFFCODE_SUPPORT_PROCESS_H
#define DIFFCODE_SUPPORT_PROCESS_H

#include <csignal>
#include <cstddef>
#include <functional>
#include <sys/types.h>

namespace diffcode {
namespace support {

/// One end-pair of a unidirectional pipe. Owns both fds; close-on-destroy
/// unless released. Ends are closed independently (the parent closes the
/// child's end after fork and vice versa).
class Pipe {
public:
  /// Creates the pipe; throws std::runtime_error on resource exhaustion.
  Pipe();
  ~Pipe();
  Pipe(Pipe &&Other) noexcept;
  Pipe &operator=(Pipe &&Other) noexcept;
  Pipe(const Pipe &) = delete;
  Pipe &operator=(const Pipe &) = delete;

  int readFd() const { return ReadFd; }
  int writeFd() const { return WriteFd; }
  void closeRead();
  void closeWrite();
  /// Transfers ownership of an end to the caller (-1 afterwards).
  int releaseRead();
  int releaseWrite();

private:
  int ReadFd = -1;
  int WriteFd = -1;
};

/// Reads exactly \p Size bytes from \p Fd, looping over short reads and
/// retrying EINTR. Returns the byte count actually read: Size on success,
/// less on EOF, and -1 (as ssize_t) on a real error (errno preserved).
ssize_t readFull(int Fd, void *Buf, std::size_t Size);

/// Writes exactly \p Size bytes to \p Fd, looping over short writes and
/// retrying EINTR. Returns Size on success or -1 on error; a closed peer
/// surfaces as -1 with errno == EPIPE (never a SIGPIPE — callers run
/// under ScopedSigpipeIgnore or ignore the signal process-wide).
ssize_t writeFull(int Fd, const void *Buf, std::size_t Size);

/// Reads whatever is available (up to \p Size) — one read(2) with EINTR
/// retry. Returns >0 bytes, 0 on EOF, or -1 with errno (EAGAIN for an
/// empty non-blocking fd).
ssize_t readSome(int Fd, void *Buf, std::size_t Size);

/// Marks \p Fd non-blocking. Returns false on fcntl failure.
bool setNonBlocking(int Fd);

/// RAII: ignores SIGPIPE for the enclosing scope, restoring the previous
/// disposition on exit. Pipe writes then report a dead peer via EPIPE.
class ScopedSigpipeIgnore {
public:
  ScopedSigpipeIgnore();
  ~ScopedSigpipeIgnore();
  ScopedSigpipeIgnore(const ScopedSigpipeIgnore &) = delete;
  ScopedSigpipeIgnore &operator=(const ScopedSigpipeIgnore &) = delete;

private:
  struct sigaction Saved;
  bool Restore = false;
};

/// How a waited-for child ended.
struct ExitStatus {
  enum class Kind {
    Exited,   ///< _exit/main return; Code is the exit code.
    Signaled, ///< killed by a signal; Code is the signal number.
    Error,    ///< waitpid itself failed (errno in Code).
  };
  Kind K = Kind::Exited;
  int Code = 0;

  bool cleanExit() const { return K == Kind::Exited && Code == 0; }
};

/// Forks and runs \p Body in the child, passing its return value to
/// _exit (never exit — the child must not flush the parent's stdio
/// buffers or run atexit handlers). Returns the child pid, or -1 with
/// errno when fork fails. An exception escaping Body becomes _exit(125).
pid_t spawnProcess(const std::function<int()> &Body);

/// Blocking waitpid with EINTR retry; classifies the result.
ExitStatus waitProcess(pid_t Pid);

/// Non-blocking waitpid poll. Returns true (and fills \p Out) when the
/// child has ended; false while it is still running.
bool tryWaitProcess(pid_t Pid, ExitStatus &Out);

/// kill(2) wrapper; true when the signal was delivered (or the process
/// already ended — ESRCH is not an error for supervision purposes).
bool killProcess(pid_t Pid, int Signal);

} // namespace support
} // namespace diffcode

#endif // DIFFCODE_SUPPORT_PROCESS_H
