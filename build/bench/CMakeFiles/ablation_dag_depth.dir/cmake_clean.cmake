file(REMOVE_RECURSE
  "CMakeFiles/ablation_dag_depth.dir/ablation_dag_depth.cpp.o"
  "CMakeFiles/ablation_dag_depth.dir/ablation_dag_depth.cpp.o.d"
  "ablation_dag_depth"
  "ablation_dag_depth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_dag_depth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
