//===- tests/test_metrics_differential.cpp - Observability determinism -----===//
//
// Part of the DiffCode project, a reproduction of "Inferring Crypto API
// Rules from Code Changes" (PLDI'18).
//
// The differential harness for the observability layer:
//
//   * instrumentation never changes what the pipeline computes — a
//     metrics-off report is a byte-for-byte PREFIX of the metrics-on
//     report over the same corpus (the "metrics" block is the last key);
//   * the deterministic metric surface (everything not flagged PerRun)
//     is byte-identical at 1, 2, and 8 analysis/clustering threads;
//   * span aggregation is structurally deterministic: the same stages
//     run the same number of times at every thread count.
//
//===----------------------------------------------------------------------===//

#include "core/DiffCode.h"
#include "core/ReportWriter.h"
#include "corpus/CorpusGenerator.h"
#include "corpus/Miner.h"
#include "obs/Observer.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace diffcode;
using namespace diffcode::core;

namespace {

const apimodel::CryptoApiModel &api() {
  return apimodel::CryptoApiModel::javaCryptoApi();
}

/// Shared corpus, mined once for the whole suite.
struct Env {
  corpus::Corpus C;
  std::vector<const corpus::CodeChange *> Mined;
};

const Env &env() {
  static Env *E = [] {
    Env *Out = new Env;
    corpus::CorpusOptions Opts;
    Opts.Seed = 61;
    Opts.NumProjects = 8;
    Out->C = corpus::CorpusGenerator(Opts).generate();
    corpus::Miner M(api());
    Out->Mined = M.mine(Out->C);
    return Out;
  }();
  return *E;
}

PipelineConfig optionsFor(unsigned Threads, bool Shard = false) {
  PipelineConfig Opts;
  Opts.Threads = Threads;
  Opts.Clustering.Threads = Threads;
  if (Shard) {
    Opts.Sharding.Enabled = true;
    Opts.Sharding.MaxShardSize = 4;
    Opts.Sharding.Threads = Threads;
  }
  return Opts;
}

CorpusReport runObserved(unsigned Threads, obs::Observer &Obs,
                         bool Shard = false) {
  return DiffCode(api(), optionsFor(Threads, Shard))
      .run({.Changes = env().Mined,
                    .TargetClasses = api().targetClasses(),
                    .Metrics = &Obs});
}

CorpusReport runUnobserved(unsigned Threads, bool Shard = false) {
  return DiffCode(api(), optionsFor(Threads, Shard))
      .run({.Changes = env().Mined,
                    .TargetClasses = api().targetClasses()});
}

} // namespace

TEST(MetricsDifferential, OffReportIsBytePrefixOfOnReport) {
  std::string Off = corpusReportToJson(runUnobserved(1));
  obs::Observer Obs;
  std::string On = corpusReportToJson(runObserved(1, Obs));

  // The instrumented run computed exactly the same report; the only
  // difference is the trailing "metrics" object. ReportWriter emits it as
  // the last key, so the off report minus its closing brace must be a
  // byte prefix of the on report.
  ASSERT_FALSE(Off.empty());
  ASSERT_EQ(Off.back(), '}');
  std::string Prefix = Off.substr(0, Off.size() - 1);
  ASSERT_GT(On.size(), Off.size());
  EXPECT_EQ(On.compare(0, Prefix.size(), Prefix), 0)
      << "instrumentation changed the report body";
  EXPECT_EQ(On.compare(Prefix.size(), 12, ",\"metrics\":{"), 0);
  EXPECT_EQ(On.back(), '}');
}

TEST(MetricsDifferential, DeterministicSurfaceIsThreadCountInvariant) {
  obs::Observer Serial;
  CorpusReport Baseline = runObserved(1, Serial);
  std::string BaselineDet = Baseline.Metrics.deterministicJson();
  ASSERT_FALSE(Baseline.Metrics.empty());
  ASSERT_FALSE(BaselineDet.empty());

  for (unsigned Threads : {2u, 8u}) {
    obs::Observer Obs;
    CorpusReport Report = runObserved(Threads, Obs);
    EXPECT_EQ(BaselineDet, Report.Metrics.deterministicJson())
        << "thread count " << Threads;
    // The underlying report body is untouched by threading too.
    EXPECT_EQ(corpusReportToJson(Baseline).substr(0, 64),
              corpusReportToJson(Report).substr(0, 64));
  }
}

TEST(MetricsDifferential, ShardedMetricsAreThreadCountInvariant) {
  obs::Observer Serial;
  CorpusReport Baseline = runObserved(1, Serial, /*Shard=*/true);
  std::string BaselineDet = Baseline.Metrics.deterministicJson();

  // The sharded engine really ran and reported its deterministic shape.
  bool SawShards = false;
  for (const obs::MetricValue &V : Baseline.Metrics.Metrics.Values)
    if (V.Name == "cluster.shards" && V.Count > 0)
      SawShards = true;
  EXPECT_TRUE(SawShards);

  for (unsigned Threads : {2u, 8u}) {
    obs::Observer Obs;
    CorpusReport Report = runObserved(Threads, Obs, /*Shard=*/true);
    EXPECT_EQ(BaselineDet, Report.Metrics.deterministicJson())
        << "thread count " << Threads;
  }
}

TEST(MetricsDifferential, StageSpanCountsAreThreadCountInvariant) {
  obs::Observer Serial;
  CorpusReport Baseline = runObserved(1, Serial);
  ASSERT_FALSE(Baseline.Metrics.Stages.empty());

  for (unsigned Threads : {2u, 8u}) {
    obs::Observer Obs;
    CorpusReport Report = runObserved(Threads, Obs);
    ASSERT_EQ(Report.Metrics.Stages.size(), Baseline.Metrics.Stages.size());
    for (std::size_t I = 0; I < Baseline.Metrics.Stages.size(); ++I) {
      EXPECT_EQ(Report.Metrics.Stages[I].Name, Baseline.Metrics.Stages[I].Name);
      EXPECT_EQ(Report.Metrics.Stages[I].Spans,
                Baseline.Metrics.Stages[I].Spans)
          << Baseline.Metrics.Stages[I].Name << " at " << Threads
          << " threads";
    }
  }
}

TEST(MetricsDifferential, ObservedRunMeasuresWallTimes) {
  obs::Observer Obs;
  CorpusReport Report = runObserved(1, Obs);

  // Every processed change carries a measured wall time, surfaced through
  // the worst-offender rows of the metrics block (and only there — the
  // deterministic health block never sees it).
  ASSERT_FALSE(Report.Changes.empty());
  for (const ChangeRecord &Record : Report.Changes)
    EXPECT_GT(Record.WallNanos, 0u) << Record.Origin;
  ASSERT_FALSE(Report.Health.WorstOffenders.empty());
  for (const WorstOffender &O : Report.Health.WorstOffenders)
    EXPECT_GT(O.WallNanos, 0u) << O.Origin;

  // An unobserved run leaves them untouched.
  CorpusReport Plain = runUnobserved(1);
  for (const ChangeRecord &Record : Plain.Changes)
    EXPECT_EQ(Record.WallNanos, 0u) << Record.Origin;
}

TEST(MetricsDifferential, FaultCountersAreObservedWithoutChangingDecisions) {
  support::FaultPlan Plan;
  Plan.Seed = 77;
  Plan.Rate = 0.001;

  // Reference: the armed campaign without stats.
  PipelineConfig Opts = optionsFor(2);
  Opts.Faults = Plan;
  std::string Reference = corpusReportToJson(
      DiffCode(api(), Opts).run(
          {.Changes = env().Mined, .TargetClasses = api().targetClasses()}));

  // Same campaign with FaultStats wired through an observer: the fault
  // decisions (and therefore the report body) must be unchanged, and the
  // stats must have seen at least as many evaluations as firings.
  support::FaultStats Stats;
  PipelineConfig ObsOpts = optionsFor(2);
  ObsOpts.Faults = Plan;
  ObsOpts.Faults.Stats = &Stats;
  obs::Observer Obs;
  std::string Observed = corpusReportToJson(
      DiffCode(api(), ObsOpts)
          .run({.Changes = env().Mined,
                        .TargetClasses = api().targetClasses(),
                        .Metrics = &Obs}));

  ASSERT_FALSE(Reference.empty());
  EXPECT_EQ(Observed.compare(0, Reference.size() - 1,
                             Reference.substr(0, Reference.size() - 1)),
            0)
      << "counting faults changed fault decisions";
  EXPECT_GT(Stats.totalFired(), 0u);
  std::uint64_t Evaluated = 0;
  for (unsigned Site = 0; Site < support::NumFaultSites; ++Site) {
    Evaluated += Stats.Evaluated[Site].load();
    EXPECT_LE(Stats.Fired[Site].load(), Stats.Evaluated[Site].load());
  }
  EXPECT_GT(Evaluated, Stats.totalFired());
}
