//===- javaast/SourceLocation.h - Source positions ------------------------===//
//
// Part of the DiffCode project, a reproduction of "Inferring Crypto API
// Rules from Code Changes" (PLDI'18).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Line/column positions for tokens, AST nodes, and diagnostics. Offsets
/// are byte offsets into the file buffer; lines and columns are 1-based.
///
//===----------------------------------------------------------------------===//

#ifndef DIFFCODE_JAVAAST_SOURCELOCATION_H
#define DIFFCODE_JAVAAST_SOURCELOCATION_H

#include <cstdint>
#include <string>

namespace diffcode {
namespace java {

/// A position in a source buffer. Line 0 denotes an invalid/unknown
/// location (e.g., synthesized nodes).
struct SourceLocation {
  std::uint32_t Line = 0;
  std::uint32_t Column = 0;
  std::uint32_t Offset = 0;

  bool isValid() const { return Line != 0; }

  /// Renders as "line:column" for diagnostics.
  std::string str() const {
    return std::to_string(Line) + ":" + std::to_string(Column);
  }

  bool operator==(const SourceLocation &Other) const {
    return Line == Other.Line && Column == Other.Column;
  }
};

} // namespace java
} // namespace diffcode

#endif // DIFFCODE_JAVAAST_SOURCELOCATION_H
