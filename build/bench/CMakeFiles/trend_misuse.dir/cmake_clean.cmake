file(REMOVE_RECURSE
  "CMakeFiles/trend_misuse.dir/trend_misuse.cpp.o"
  "CMakeFiles/trend_misuse.dir/trend_misuse.cpp.o.d"
  "trend_misuse"
  "trend_misuse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trend_misuse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
