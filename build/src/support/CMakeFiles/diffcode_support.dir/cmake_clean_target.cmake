file(REMOVE_RECURSE
  "libdiffcode_support.a"
)
