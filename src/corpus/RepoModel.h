//===- corpus/RepoModel.h - Projects, commits, code changes ----------------===//
//
// Part of the DiffCode project, a reproduction of "Inferring Crypto API
// Rules from Code Changes" (PLDI'18).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The repository model the mining stage produces: projects with commit
/// histories, where each commit contributes a CodeChange — the (old
/// version, new version) source pair of one Java file (Section 6.1 fetches
/// exactly these pairs from GitHub).
///
/// Synthetic provenance: each change carries the generator's ground-truth
/// kind ("refactor", "fix:R7", ...). The DiffCode pipeline never reads it;
/// benchmarks use it to score filter precision/recall against the ground
/// truth — something the paper could only approximate by manual
/// inspection.
///
//===----------------------------------------------------------------------===//

#ifndef DIFFCODE_CORPUS_REPOMODEL_H
#define DIFFCODE_CORPUS_REPOMODEL_H

#include "rules/Rule.h"

#include <string>
#include <vector>

namespace diffcode {
namespace corpus {

/// One commit's effect on one file.
struct CodeChange {
  std::string ProjectName;
  unsigned CommitIndex = 0;
  std::string FileName;
  std::string OldCode;
  std::string NewCode;
  /// Generator ground truth: "refactor", "fix:<RuleId>", "bug:<RuleId>",
  /// "add", "remove". Empty for mined (non-synthetic) changes.
  std::string Kind;

  std::string origin() const {
    return ProjectName + "@c" + std::to_string(CommitIndex);
  }
  bool isGroundTruthFix() const { return Kind.rfind("fix:", 0) == 0; }
  bool isGroundTruthBug() const { return Kind.rfind("bug:", 0) == 0; }
};

/// A file at HEAD.
struct ProjectFile {
  std::string Name;
  std::string Code;
};

/// One repository.
struct Project {
  std::string Name;
  rules::ProjectMetadata Meta;
  std::vector<ProjectFile> Files;   ///< Final (HEAD) state.
  std::vector<CodeChange> History;  ///< All commits, oldest first.
};

/// A mined corpus.
struct Corpus {
  std::vector<Project> Projects;

  std::size_t totalChanges() const {
    std::size_t N = 0;
    for (const Project &P : Projects)
      N += P.History.size();
    return N;
  }
};

} // namespace corpus
} // namespace diffcode

#endif // DIFFCODE_CORPUS_REPOMODEL_H
