//===- bench/micro_lexer.cpp - Table-driven lexer corpus benchmark ---------===//
//
// Part of the DiffCode project, a reproduction of "Inferring Crypto API
// Rules from Code Changes" (PLDI'18).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Whole-corpus front-end benchmark behind the table-driven lexer
/// rewrite. Over every distinct source text in the standard mined corpus
/// it
///
///   * first proves byte-identical behavior: the production Lexer and the
///     retained seed scanner (javaast/ReferenceLexer) must agree on every
///     token (kind, spelling, line/column/offset) and every diagnostic of
///     every source — a bench that got faster by lexing differently must
///     fail, not report a speedup;
///   * then times both scanners (best-of-N rounds) in two modes fed the
///     exact same bytes: the headline corpus-stream mode (the whole
///     corpus lexed as one buffer — raw scanner throughput at corpus
///     scale, where the seed's per-token arena interning and unreserved
///     token vector dominate) and a per-file sweep (one lexer per source,
///     so per-file setup costs — token vector, line table, diagnostics —
///     are charged to both scanners on every ~1 KB source). Each timing
///     runs in its own forked child process (JMH-style isolation):
///     in-process ordering otherwise leaks heap state — the seed's
///     unreserved token vector grows almost for free once earlier phases
///     have adapted glibc's mmap threshold, flattering whichever scanner
///     runs later;
///   * and reports the arena-reuse parse pass (one recycled AstContext,
///     processChange's steady state) with its slab statistics as info.
///
/// Self-verifying: exits non-zero unless the streams are byte-identical
/// and the corpus-stream speedup is at least 5.0x (the ISSUE's
/// acceptance bar).
///
///   micro_lexer [projects] [seed] [out.json]   (defaults: 120 42
///                                               BENCH_lexer.json)
///
//===----------------------------------------------------------------------===//

#include "bench_common.h"
#include "javaast/Lexer.h"
#include "javaast/Parser.h"
#include "javaast/ReferenceLexer.h"
#include "support/JsonWriter.h"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <functional>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

using namespace diffcode;

namespace {

std::uint64_t nanosSince(std::chrono::steady_clock::time_point Start) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - Start)
          .count());
}

/// Every distinct source text in the mined corpus (old + new sides).
std::vector<std::string> distinctSources(const bench::MinedCorpus &Mined) {
  std::vector<std::string> Out;
  std::set<std::string> Seen;
  for (const corpus::CodeChange *Change : Mined.Changes)
    for (const std::string *Code : {&Change->OldCode, &Change->NewCode})
      if (!Code->empty() && Seen.insert(*Code).second)
        Out.push_back(*Code);
  return Out;
}

std::string diagsKey(const java::DiagnosticsEngine &Diags) {
  std::ostringstream Os;
  for (const java::Diagnostic &D : Diags.all())
    Os << (D.Level == java::DiagLevel::Error ? "E|" : "W|") << D.str() << "\n";
  return Os.str();
}

/// Byte-identity pass: every token and diagnostic of every source must
/// match between the two scanners. Returns false (and reports to stderr)
/// on the first divergence.
bool verifyByteIdentical(const std::vector<std::string> &Sources) {
  for (std::size_t S = 0; S < Sources.size(); ++S) {
    const std::string &Source = Sources[S];
    java::DiagnosticsEngine NewDiags, RefDiags;
    java::Lexer NewLex(Source, NewDiags);
    java::ReferenceLexer RefLex(Source, RefDiags);
    java::TokenStream NewStream = NewLex.lexAll();
    java::TokenStream RefStream = RefLex.lexAll();
    if (NewStream.size() != RefStream.size()) {
      std::fprintf(stderr, "FAIL: source %zu: %zu vs %zu tokens\n", S,
                   NewStream.size(), RefStream.size());
      return false;
    }
    for (std::size_t I = 0; I < NewStream.size(); ++I) {
      const java::Token &A = NewStream[I];
      const java::Token &B = RefStream[I];
      if (A.Kind != B.Kind || A.Text != B.Text || A.Loc.Line != B.Loc.Line ||
          A.Loc.Column != B.Loc.Column || A.Loc.Offset != B.Loc.Offset) {
        std::fprintf(stderr,
                     "FAIL: source %zu token %zu diverges "
                     "(line %u col %u vs line %u col %u)\n",
                     S, I, A.Loc.Line, A.Loc.Column, B.Loc.Line, B.Loc.Column);
        return false;
      }
    }
    if (diagsKey(NewDiags) != diagsKey(RefDiags) ||
        NewDiags.budgetExceeded() != RefDiags.budgetExceeded()) {
      std::fprintf(stderr, "FAIL: source %zu diagnostics diverge\n", S);
      return false;
    }
  }
  return true;
}

struct LexTiming {
  std::uint64_t BestNs = ~std::uint64_t(0);
  std::uint64_t Tokens = 0;
  std::uint64_t Bytes = 0;

  double tokensPerSec() const {
    return BestNs ? static_cast<double>(Tokens) * 1e9 /
                        static_cast<double>(BestNs)
                  : 0.0;
  }
  double mbPerSec() const {
    return BestNs ? static_cast<double>(Bytes) * 1e9 /
                        (static_cast<double>(BestNs) * 1024.0 * 1024.0)
                  : 0.0;
  }
};

/// Times \p Rounds full-corpus sweeps of one scanner; keeps the best.
template <typename LexerT>
LexTiming timeLexer(const std::vector<std::string> &Sources, int Rounds) {
  LexTiming T;
  for (const std::string &S : Sources)
    T.Bytes += S.size();
  for (int Round = 0; Round < Rounds; ++Round) {
    std::uint64_t Tokens = 0;
    auto Start = std::chrono::steady_clock::now();
    for (const std::string &Source : Sources) {
      java::DiagnosticsEngine Diags;
      LexerT Lex(Source, Diags);
      java::TokenStream Stream = Lex.lexAll();
      Tokens += Stream.size();
    }
    std::uint64_t Ns = nanosSince(Start);
    if (Ns < T.BestNs)
      T.BestNs = Ns;
    T.Tokens = Tokens;
  }
  return T;
}

/// Runs \p Fn in a forked child and returns its result through a pipe.
/// Every timing below is isolated this way so both scanners start from
/// the same allocator state — the state at this fork point — instead of
/// whatever the previously timed scanner left behind. Falls back to an
/// in-process call if fork is unavailable.
LexTiming runIsolated(const std::function<LexTiming()> &Fn) {
  int Fds[2];
  if (pipe(Fds) != 0)
    return Fn();
  pid_t Pid = fork();
  if (Pid < 0) {
    close(Fds[0]);
    close(Fds[1]);
    return Fn();
  }
  if (Pid == 0) {
    close(Fds[0]);
    LexTiming T = Fn();
    ssize_t W = write(Fds[1], &T, sizeof T);
    _exit(W == static_cast<ssize_t>(sizeof T) ? 0 : 1);
  }
  close(Fds[1]);
  LexTiming T;
  ssize_t R = read(Fds[0], &T, sizeof T);
  close(Fds[0]);
  int Status = 0;
  waitpid(Pid, &Status, 0);
  if (R != static_cast<ssize_t>(sizeof T) || !WIFEXITED(Status) ||
      WEXITSTATUS(Status) != 0) {
    std::fprintf(stderr, "FAIL: isolated timing child died\n");
    std::exit(1);
  }
  return T;
}

struct ParseTiming {
  std::uint64_t BestNs = ~std::uint64_t(0);
  std::size_t ArenaCapacity = 0;
  std::size_t ArenaSlabs = 0;
};

/// Arena-reuse parse over the corpus: one AstContext recycled per file,
/// processChange's steady state.
ParseTiming timeArenaParse(const std::vector<std::string> &Sources,
                           int Rounds) {
  ParseTiming T;
  java::AstContext Ctx;
  for (int Round = 0; Round < Rounds; ++Round) {
    auto Start = std::chrono::steady_clock::now();
    for (const std::string &Source : Sources) {
      Ctx.reset();
      java::DiagnosticsEngine Diags;
      java::CompilationUnit *Unit = java::parseJava(Source, Ctx, Diags);
      if (Unit == nullptr) {
        std::fprintf(stderr, "FAIL: corpus source failed to parse\n");
        std::exit(1);
      }
    }
    std::uint64_t Ns = nanosSince(Start);
    if (Ns < T.BestNs)
      T.BestNs = Ns;
  }
  T.ArenaCapacity = Ctx.arenaCapacity();
  T.ArenaSlabs = Ctx.arenaSlabs();
  return T;
}

} // namespace

int main(int argc, char **argv) {
  const char *OutPath = argc > 3 ? argv[3] : "BENCH_lexer.json";
  constexpr double SpeedupBar = 5.0;
  constexpr int Rounds = 5;

  bench::MinedCorpus Mined = bench::mineStandardCorpus(argc, argv);
  std::vector<std::string> Sources = distinctSources(Mined);
  std::printf("lexing %zu distinct sources, best of %d rounds\n\n",
              Sources.size(), Rounds);
  if (Sources.empty()) {
    std::fprintf(stderr, "FAIL: corpus produced no sources\n");
    return 1;
  }

  // Corpus-stream mode: the whole corpus as one buffer. Both scanners
  // see the exact same bytes; the stream itself also passes the
  // byte-identity gate below via its own verify call.
  std::string Stream;
  Stream.reserve(Sources.size() * 900);
  for (const std::string &S : Sources) {
    Stream += S;
    Stream += '\n';
  }
  std::vector<std::string> StreamV{Stream};

  // All four timings fork from this same point, before the verify pass
  // or any other timing has touched the heap.
  LexTiming Ref = runIsolated(
      [&] { return timeLexer<java::ReferenceLexer>(StreamV, Rounds); });
  LexTiming New =
      runIsolated([&] { return timeLexer<java::Lexer>(StreamV, Rounds); });
  LexTiming RefFile = runIsolated(
      [&] { return timeLexer<java::ReferenceLexer>(Sources, Rounds); });
  LexTiming NewFile =
      runIsolated([&] { return timeLexer<java::Lexer>(Sources, Rounds); });

  bool Identical = verifyByteIdentical(Sources);
  if (!Identical)
    std::fprintf(stderr,
                 "FAIL: production lexer diverges from reference scanner\n");
  if (!verifyByteIdentical(StreamV)) {
    std::fprintf(stderr, "FAIL: scanners diverge on the corpus stream\n");
    Identical = false;
  }
  double Speedup = New.BestNs
                       ? static_cast<double>(Ref.BestNs) /
                             static_cast<double>(New.BestNs)
                       : 0.0;
  double FileSpeedup = NewFile.BestNs
                           ? static_cast<double>(RefFile.BestNs) /
                                 static_cast<double>(NewFile.BestNs)
                           : 0.0;
  ParseTiming Parse = timeArenaParse(Sources, Rounds);

  std::printf("corpus stream (%zu KiB):\n", Stream.size() / 1024);
  std::printf("  reference: %8.2f ms  %10.0f tokens/s  %7.1f MB/s\n",
              Ref.BestNs / 1e6, Ref.tokensPerSec(), Ref.mbPerSec());
  std::printf("  table:     %8.2f ms  %10.0f tokens/s  %7.1f MB/s\n",
              New.BestNs / 1e6, New.tokensPerSec(), New.mbPerSec());
  std::printf("  speedup:   %.2fx (bar %.1fx)\n", Speedup, SpeedupBar);
  std::printf("per-file sweep:\n");
  std::printf("  reference: %8.2f ms  %10.0f tokens/s\n", RefFile.BestNs / 1e6,
              RefFile.tokensPerSec());
  std::printf("  table:     %8.2f ms  %10.0f tokens/s  (%.2fx)\n",
              NewFile.BestNs / 1e6, NewFile.tokensPerSec(), FileSpeedup);
  std::printf("arena parse: %8.2f ms/corpus, %zu slabs, %zu KiB capacity\n\n",
              Parse.BestNs / 1e6, Parse.ArenaSlabs,
              Parse.ArenaCapacity / 1024);

  bool SpeedupPass = Speedup >= SpeedupBar;
  bool Pass = Identical && SpeedupPass;

  JsonWriter W;
  W.beginObject();
  W.key("bench").value("micro_lexer");
  W.key("sources").value(static_cast<std::uint64_t>(Sources.size()));
  W.key("bytes").value(New.Bytes);
  W.key("tokens").value(New.Tokens);
  W.key("rounds").value(static_cast<std::uint64_t>(Rounds));
  W.key("byte_identical").value(Identical);
  W.key("reference_ns").value(Ref.BestNs);
  W.key("table_ns").value(New.BestNs);
  W.key("reference_tokens_per_sec").value(Ref.tokensPerSec());
  W.key("table_tokens_per_sec").value(New.tokensPerSec());
  W.key("reference_mb_per_sec").value(Ref.mbPerSec());
  W.key("table_mb_per_sec").value(New.mbPerSec());
  W.key("speedup").value(Speedup);
  W.key("speedup_bar").value(SpeedupBar);
  W.key("speedup_pass").value(SpeedupPass);
  W.key("per_file_reference_ns").value(RefFile.BestNs);
  W.key("per_file_table_ns").value(NewFile.BestNs);
  W.key("per_file_speedup").value(FileSpeedup);
  W.key("arena_parse_ns").value(Parse.BestNs);
  W.key("arena_slabs").value(static_cast<std::uint64_t>(Parse.ArenaSlabs));
  W.key("arena_capacity_bytes")
      .value(static_cast<std::uint64_t>(Parse.ArenaCapacity));
  W.key("pass").value(Pass);
  W.endObject();
  std::string Json = W.take();
  std::printf("%s\n", Json.c_str());
  std::ofstream(OutPath) << Json << "\n";

  if (!SpeedupPass)
    std::fprintf(stderr, "FAIL: corpus-stream speedup %.2fx below the %.1fx bar\n",
                 Speedup, SpeedupBar);
  return Pass ? 0 : 1;
}
