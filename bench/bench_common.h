//===- bench/bench_common.h - Shared benchmark harness helpers -------------===//
//
// Part of the DiffCode project, a reproduction of "Inferring Crypto API
// Rules from Code Changes" (PLDI'18).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared setup for the figure-reproduction benchmarks: a standard corpus
/// configuration (overridable via argv) and the mined change list. Every
/// figure benchmark prints our measured numbers next to the paper's
/// reported ones; absolute values differ (synthetic corpus vs 461 mined
/// GitHub repos) — the *shape* is the reproduction target.
///
//===----------------------------------------------------------------------===//

#ifndef DIFFCODE_BENCH_BENCH_COMMON_H
#define DIFFCODE_BENCH_BENCH_COMMON_H

#include "core/DiffCode.h"
#include "corpus/CorpusGenerator.h"
#include "corpus/Miner.h"

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

namespace diffcode {
namespace bench {

/// Standard corpus for the figure benchmarks; argv[1] overrides the
/// project count, argv[2] the seed.
inline corpus::CorpusOptions standardCorpus(int argc, char **argv) {
  corpus::CorpusOptions Opts;
  Opts.NumProjects = 120;
  Opts.Seed = 42;
  if (argc > 1)
    Opts.NumProjects = static_cast<unsigned>(std::atoi(argv[1]));
  if (argc > 2)
    Opts.Seed = std::strtoull(argv[2], nullptr, 10);
  return Opts;
}

/// Generates, mines, and reports corpus-level stats.
struct MinedCorpus {
  corpus::Corpus Corpus;
  std::vector<const corpus::CodeChange *> Changes;
};

inline MinedCorpus mineStandardCorpus(int argc, char **argv) {
  corpus::CorpusOptions Opts = standardCorpus(argc, argv);
  std::printf("corpus: %u synthetic projects (seed %llu)\n",
              Opts.NumProjects,
              static_cast<unsigned long long>(Opts.Seed));
  MinedCorpus Out;
  Out.Corpus = corpus::CorpusGenerator(Opts).generate();
  corpus::Miner M(apimodel::CryptoApiModel::javaCryptoApi());
  Out.Changes = M.mine(Out.Corpus);
  std::printf("mined %zu crypto-touching code changes from %zu commits\n\n",
              Out.Changes.size(), Out.Corpus.totalChanges());
  return Out;
}

} // namespace bench
} // namespace diffcode

#endif // DIFFCODE_BENCH_BENCH_COMMON_H
